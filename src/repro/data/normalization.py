"""Feature normalisation.

The paper normalises every channel to [-1, 1] using the minimum and maximum
of each sensor's training data "ensuring that all the features have equal
importance".  :class:`MinMaxScaler` implements exactly that; a standard-score
scaler is provided for ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["MinMaxScaler", "StandardScaler"]


class MinMaxScaler:
    """Scale each channel linearly so the training data spans [low, high]."""

    def __init__(self, feature_range: tuple[float, float] = (-1.0, 1.0)) -> None:
        low, high = feature_range
        if high <= low:
            raise ValueError("feature_range must satisfy high > low")
        self.low = low
        self.high = high
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        """Record per-channel minima and maxima of the training data."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array (n_samples, n_channels)")
        if data.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty array")
        self.data_min_ = data.min(axis=0)
        self.data_max_ = data.max(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Apply the fitted scaling; constant channels map to the range midpoint."""
        if self.data_min_ is None:
            raise RuntimeError("transform() called before fit()")
        data = np.asarray(data, dtype=np.float64)
        span = self.data_max_ - self.data_min_
        safe_span = np.where(span > 0, span, 1.0)
        unit = (data - self.data_min_) / safe_span
        unit = np.where(span > 0, unit, 0.5)
        return self.low + unit * (self.high - self.low)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original units."""
        if self.data_min_ is None:
            raise RuntimeError("inverse_transform() called before fit()")
        data = np.asarray(data, dtype=np.float64)
        unit = (data - self.low) / (self.high - self.low)
        span = self.data_max_ - self.data_min_
        return self.data_min_ + unit * span


class StandardScaler:
    """Zero-mean unit-variance scaling (ablation alternative to min-max)."""

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = eps
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array (n_samples, n_channels)")
        if data.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty array")
        self.mean_ = data.mean(axis=0)
        self.std_ = data.std(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("transform() called before fit()")
        data = np.asarray(data, dtype=np.float64)
        return (data - self.mean_) / np.maximum(self.std_, self.eps)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("inverse_transform() called before fit()")
        data = np.asarray(data, dtype=np.float64)
        return data * np.maximum(self.std_, self.eps) + self.mean_
