"""Streaming access to a recording.

On the edge device the paper's test script "continuously reads data from the
sensors, prepares the data by applying a preprocessing function, and calls
the inference function".  :class:`StreamReader` reproduces that access
pattern: it replays a recording sample by sample and maintains the rolling
context window a forecasting detector needs, so the same detector code runs
both in batch evaluation and in the streaming runtime of :mod:`repro.edge`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["StreamReader", "RollingWindow", "StreamSample"]


@dataclass(frozen=True)
class StreamSample:
    """One sample read from the stream."""

    index: int
    timestamp: float
    values: np.ndarray  # (n_channels,)
    label: int


class RollingWindow:
    """Fixed-length rolling context window over streamed samples."""

    def __init__(self, window: int, n_channels: int) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        self.window = window
        self.n_channels = n_channels
        self._buffer: deque[np.ndarray] = deque(maxlen=window)

    def push(self, sample: np.ndarray) -> None:
        sample = np.asarray(sample, dtype=np.float64).ravel()
        if sample.shape[0] != self.n_channels:
            raise ValueError(f"expected {self.n_channels} channels, got {sample.shape[0]}")
        self._buffer.append(sample)

    @property
    def is_full(self) -> bool:
        return len(self._buffer) == self.window

    def __len__(self) -> int:
        return len(self._buffer)

    def as_array(self) -> np.ndarray:
        """Materialise the window as a (window, n_channels) array (oldest first)."""
        if not self.is_full:
            raise RuntimeError("rolling window is not full yet")
        return np.stack(list(self._buffer))

    def clear(self) -> None:
        self._buffer.clear()


class StreamReader:
    """Replay a (normalised) recording as a sample stream."""

    def __init__(self, data: np.ndarray, labels: Optional[np.ndarray] = None,
                 sample_rate: float = 200.0) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array (n_samples, n_channels)")
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if labels is None:
            labels = np.zeros(data.shape[0], dtype=np.int64)
        labels = np.asarray(labels)
        if labels.shape[0] != data.shape[0]:
            raise ValueError("labels must have one entry per sample")
        self.data = data
        self.labels = labels
        self.sample_rate = sample_rate

    @property
    def n_samples(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_channels(self) -> int:
        return int(self.data.shape[1])

    def __iter__(self) -> Iterator[StreamSample]:
        for index in range(self.n_samples):
            yield StreamSample(
                index=index,
                timestamp=index / self.sample_rate,
                values=self.data[index],
                label=int(self.labels[index]),
            )

    def windows(self, window: int, stride: int = 1
                ) -> Iterator[Tuple[np.ndarray, StreamSample]]:
        """Yield ``(context_window, next_sample)`` pairs in stream order.

        The context window holds the ``window`` samples preceding the yielded
        sample, which is what a one-step-ahead forecaster scores.
        """
        rolling = RollingWindow(window, self.n_channels)
        emitted = 0
        for sample in self:
            if rolling.is_full and (sample.index - window) % stride == 0:
                yield rolling.as_array(), sample
                emitted += 1
            rolling.push(sample.values)
