"""Dataset layer: channel schema, normalisation, windowing, the benchmark
train/test builder and streaming replay of recordings.
"""

from .dataset import (
    BenchmarkDataset,
    DatasetConfig,
    SyntheticAnomalyDataset,
    build_benchmark_dataset,
    build_synthetic_anomaly_dataset,
)
from .normalization import MinMaxScaler, StandardScaler
from .schema import ChannelGroup, ChannelSpec, StreamSchema, build_default_schema
from .streaming import RollingWindow, StreamReader, StreamSample
from .windowing import WindowDataset, forecast_pairs, sliding_windows

__all__ = [
    "BenchmarkDataset",
    "DatasetConfig",
    "SyntheticAnomalyDataset",
    "build_benchmark_dataset",
    "build_synthetic_anomaly_dataset",
    "MinMaxScaler",
    "StandardScaler",
    "ChannelGroup",
    "ChannelSpec",
    "StreamSchema",
    "build_default_schema",
    "RollingWindow",
    "StreamReader",
    "StreamSample",
    "WindowDataset",
    "forecast_pairs",
    "sliding_windows",
]
