"""Dataset layer: channel schema, normalisation, windowing, the benchmark
train/test builder, streaming replay of recordings and concept-drift
scenario generation.
"""

from .dataset import (
    BenchmarkDataset,
    DatasetConfig,
    SyntheticAnomalyDataset,
    build_benchmark_dataset,
    build_synthetic_anomaly_dataset,
)
from .drift import (
    DRIFT_KINDS,
    DriftScenario,
    build_drift_scenario,
    inject_channel_dropout,
    inject_gradual_ramp,
    inject_mean_shift,
    inject_sensor_gain,
)
from .normalization import MinMaxScaler, StandardScaler
from .schema import ChannelGroup, ChannelSpec, StreamSchema, build_default_schema
from .streaming import RollingWindow, StreamReader, StreamSample
from .windowing import WindowDataset, forecast_pairs, sliding_windows

__all__ = [
    "BenchmarkDataset",
    "DatasetConfig",
    "SyntheticAnomalyDataset",
    "build_benchmark_dataset",
    "build_synthetic_anomaly_dataset",
    "DRIFT_KINDS",
    "DriftScenario",
    "build_drift_scenario",
    "inject_channel_dropout",
    "inject_gradual_ramp",
    "inject_mean_shift",
    "inject_sensor_gain",
    "MinMaxScaler",
    "StandardScaler",
    "ChannelGroup",
    "ChannelSpec",
    "StreamSchema",
    "build_default_schema",
    "RollingWindow",
    "StreamReader",
    "StreamSample",
    "WindowDataset",
    "forecast_pairs",
    "sliding_windows",
]
