"""Sliding-window extraction for forecasting-style detectors.

The autoregressive detectors (VARADE, AR-LSTM, GBRF) consume a context window
of ``T`` past samples and predict the next sample; the reconstruction and
outlier detectors consume either windows or single samples.  This module
turns a ``(n_samples, n_channels)`` stream into the ``(window, target)``
pairs those models train on, using stride tricks so no data is copied until
the caller materialises a batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["WindowDataset", "sliding_windows", "forecast_pairs"]


def sliding_windows(data: np.ndarray, window: int, stride: int = 1) -> np.ndarray:
    """View of shape ``(n_windows, window, n_channels)`` over ``data``.

    The result shares memory with ``data``; copy before mutating.
    """
    data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array (n_samples, n_channels)")
    if window < 1:
        raise ValueError("window must be at least 1")
    if stride < 1:
        raise ValueError("stride must be at least 1")
    n_samples = data.shape[0]
    if n_samples < window:
        raise ValueError(f"stream of {n_samples} samples is shorter than window {window}")
    n_windows = (n_samples - window) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(data, window, axis=0)
    # sliding_window_view puts the window axis last: (n, channels, window)
    windows = windows[::stride][:n_windows]
    return np.transpose(windows, (0, 2, 1))


def forecast_pairs(data: np.ndarray, window: int, horizon: int = 1,
                   stride: int = 1) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Context/target pairs for one-step-ahead forecasting.

    Returns ``(contexts, targets, target_indices)`` where ``contexts`` has
    shape ``(n_pairs, window, n_channels)``, ``targets`` has shape
    ``(n_pairs, n_channels)`` (the sample ``horizon`` steps after the window)
    and ``target_indices`` gives the position of each target in the original
    stream -- needed to align anomaly scores with ground-truth labels.
    """
    data = np.asarray(data, dtype=np.float64)
    if horizon < 1:
        raise ValueError("horizon must be at least 1")
    if data.shape[0] < window + horizon:
        raise ValueError("stream too short for the requested window and horizon")
    usable = data.shape[0] - horizon
    contexts = sliding_windows(data[:usable], window, stride=stride)
    n_pairs = contexts.shape[0]
    target_indices = np.arange(n_pairs) * stride + window + horizon - 1
    targets = data[target_indices]
    return contexts, targets, target_indices


@dataclass
class WindowDataset:
    """Materialised forecasting dataset with deterministic shuffling and batching."""

    contexts: np.ndarray        # (n_pairs, window, n_channels)
    targets: np.ndarray         # (n_pairs, n_channels)
    target_indices: np.ndarray  # (n_pairs,)

    @classmethod
    def from_stream(cls, data: np.ndarray, window: int, horizon: int = 1,
                    stride: int = 1) -> "WindowDataset":
        contexts, targets, indices = forecast_pairs(data, window, horizon=horizon,
                                                    stride=stride)
        return cls(contexts=contexts, targets=targets, target_indices=indices)

    def __len__(self) -> int:
        return int(self.contexts.shape[0])

    @property
    def window(self) -> int:
        return int(self.contexts.shape[1])

    @property
    def n_channels(self) -> int:
        return int(self.contexts.shape[2])

    def subsample(self, max_pairs: int, rng: Optional[np.random.Generator] = None
                  ) -> "WindowDataset":
        """Randomly keep at most ``max_pairs`` pairs (used by the slow tree/kNN models)."""
        if max_pairs < 1:
            raise ValueError("max_pairs must be at least 1")
        if len(self) <= max_pairs:
            return self
        rng = rng if rng is not None else np.random.default_rng()
        keep = np.sort(rng.choice(len(self), size=max_pairs, replace=False))
        return WindowDataset(
            contexts=self.contexts[keep],
            targets=self.targets[keep],
            target_indices=self.target_indices[keep],
        )

    def batches(self, batch_size: int, shuffle: bool = True,
                rng: Optional[np.random.Generator] = None
                ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(context_batch, target_batch)`` pairs."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        order = np.arange(len(self))
        if shuffle:
            rng = rng if rng is not None else np.random.default_rng()
            rng.shuffle(order)
        for start in range(0, len(self), batch_size):
            index = order[start:start + batch_size]
            yield self.contexts[index], self.targets[index]
