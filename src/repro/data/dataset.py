"""Train/test dataset construction following the paper's protocol.

The paper records a long anomaly-free training run (30 actions cycled for
390 minutes) and a separate 82-minute collision experiment with 125 injected
anomalies.  :func:`build_benchmark_dataset` reproduces that protocol at a
configurable (much smaller) scale using the robot-cell simulator, normalises
every channel to [-1, 1] with the training minima/maxima, and returns the
pieces every detector needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..robot.plant import RobotCellConfig, RobotCellSimulator, RobotRecording
from .normalization import MinMaxScaler
from .schema import StreamSchema, build_default_schema

__all__ = ["BenchmarkDataset", "DatasetConfig", "build_benchmark_dataset"]


@dataclass(frozen=True)
class DatasetConfig:
    """Scaled-down version of the paper's recording protocol.

    The defaults generate roughly a minute of training data and a comparable
    collision experiment so the full benchmark suite runs on a CPU-only
    machine; raise the durations (the paper used 390 and 82 minutes) for a
    full-scale run.
    """

    train_duration_s: float = 90.0
    test_duration_s: float = 60.0
    n_collisions: int = 20
    sample_rate: float = 50.0
    num_actions: int = 30
    seed: int = 0
    exclude_action_id: bool = False


@dataclass
class BenchmarkDataset:
    """Normalised train/test streams plus metadata."""

    train: np.ndarray                 # (n_train, n_channels) in [-1, 1]
    test: np.ndarray                  # (n_test, n_channels) in [-1, 1]
    test_labels: np.ndarray           # (n_test,)
    scaler: MinMaxScaler
    schema: StreamSchema
    train_recording: RobotRecording
    test_recording: RobotRecording
    config: DatasetConfig

    @property
    def n_channels(self) -> int:
        return int(self.train.shape[1])

    @property
    def anomaly_fraction(self) -> float:
        return float(self.test_labels.mean()) if self.test_labels.size else 0.0

    def summary(self) -> str:
        """One-line description used by examples and benchmarks."""
        return (f"train={self.train.shape[0]} samples, test={self.test.shape[0]} samples, "
                f"channels={self.n_channels}, collisions={len(self.test_recording.events)}, "
                f"anomaly fraction={self.anomaly_fraction:.3f}")


def build_benchmark_dataset(config: Optional[DatasetConfig] = None) -> BenchmarkDataset:
    """Generate, normalise and package the train/test streams."""
    config = config if config is not None else DatasetConfig()
    cell_config = RobotCellConfig(sample_rate=config.sample_rate,
                                  num_actions=config.num_actions)
    simulator = RobotCellSimulator(config=cell_config, seed=config.seed)

    train_recording = simulator.record_normal(config.train_duration_s)
    test_recording = simulator.record_collision_experiment(
        config.test_duration_s, n_collisions=config.n_collisions
    )

    schema = build_default_schema()
    train_data = train_recording.data
    test_data = test_recording.data
    if config.exclude_action_id:
        train_data = train_data[:, 1:]
        test_data = test_data[:, 1:]

    scaler = MinMaxScaler(feature_range=(-1.0, 1.0))
    train_scaled = scaler.fit_transform(train_data)
    test_scaled = scaler.transform(test_data)

    return BenchmarkDataset(
        train=train_scaled,
        test=test_scaled,
        test_labels=test_recording.labels.copy(),
        scaler=scaler,
        schema=schema,
        train_recording=train_recording,
        test_recording=test_recording,
        config=config,
    )
