"""Train/test dataset construction following the paper's protocol.

The paper records a long anomaly-free training run (30 actions cycled for
390 minutes) and a separate 82-minute collision experiment with 125 injected
anomalies.  :func:`build_benchmark_dataset` reproduces that protocol at a
configurable (much smaller) scale using the robot-cell simulator, normalises
every channel to [-1, 1] with the training minima/maxima, and returns the
pieces every detector needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..robot.plant import RobotCellConfig, RobotCellSimulator, RobotRecording
from .normalization import MinMaxScaler
from .schema import StreamSchema, build_default_schema

__all__ = [
    "BenchmarkDataset",
    "DatasetConfig",
    "build_benchmark_dataset",
    "SyntheticAnomalyDataset",
    "build_synthetic_anomaly_dataset",
]


@dataclass(frozen=True)
class DatasetConfig:
    """Scaled-down version of the paper's recording protocol.

    The defaults generate roughly a minute of training data and a comparable
    collision experiment so the full benchmark suite runs on a CPU-only
    machine; raise the durations (the paper used 390 and 82 minutes) for a
    full-scale run.
    """

    train_duration_s: float = 90.0
    test_duration_s: float = 60.0
    n_collisions: int = 20
    sample_rate: float = 50.0
    num_actions: int = 30
    seed: int = 0
    exclude_action_id: bool = False


@dataclass
class BenchmarkDataset:
    """Normalised train/test streams plus metadata."""

    train: np.ndarray                 # (n_train, n_channels) in [-1, 1]
    test: np.ndarray                  # (n_test, n_channels) in [-1, 1]
    test_labels: np.ndarray           # (n_test,)
    scaler: MinMaxScaler
    schema: StreamSchema
    train_recording: RobotRecording
    test_recording: RobotRecording
    config: DatasetConfig

    @property
    def n_channels(self) -> int:
        return int(self.train.shape[1])

    @property
    def anomaly_fraction(self) -> float:
        return float(self.test_labels.mean()) if self.test_labels.size else 0.0

    def summary(self) -> str:
        """One-line description used by examples and benchmarks."""
        return (f"train={self.train.shape[0]} samples, test={self.test.shape[0]} samples, "
                f"channels={self.n_channels}, collisions={len(self.test_recording.events)}, "
                f"anomaly fraction={self.anomaly_fraction:.3f}")


def build_benchmark_dataset(config: Optional[DatasetConfig] = None) -> BenchmarkDataset:
    """Generate, normalise and package the train/test streams."""
    config = config if config is not None else DatasetConfig()
    cell_config = RobotCellConfig(sample_rate=config.sample_rate,
                                  num_actions=config.num_actions)
    simulator = RobotCellSimulator(config=cell_config, seed=config.seed)

    train_recording = simulator.record_normal(config.train_duration_s)
    test_recording = simulator.record_collision_experiment(
        config.test_duration_s, n_collisions=config.n_collisions
    )

    schema = build_default_schema()
    train_data = train_recording.data
    test_data = test_recording.data
    if config.exclude_action_id:
        train_data = train_data[:, 1:]
        test_data = test_data[:, 1:]

    scaler = MinMaxScaler(feature_range=(-1.0, 1.0))
    train_scaled = scaler.fit_transform(train_data)
    test_scaled = scaler.transform(test_data)

    return BenchmarkDataset(
        train=train_scaled,
        test=test_scaled,
        test_labels=test_recording.labels.copy(),
        scaler=scaler,
        schema=schema,
        train_recording=train_recording,
        test_recording=test_recording,
        config=config,
    )


# --------------------------------------------------------------------------- #
# Lightweight synthetic benchmark (no robot simulation)
# --------------------------------------------------------------------------- #
@dataclass
class SyntheticAnomalyDataset:
    """A seeded heteroscedastic stream with labelled noise-burst anomalies.

    The cheap counterpart of :class:`BenchmarkDataset` for tests and
    micro-benchmarks that need labelled anomalies but not the robot cell.
    Channels are sinusoids with motion-dependent (envelope-modulated)
    measurement noise -- the structure a variational forecaster's variance
    head can actually learn -- and anomalies are additive Gaussian noise
    bursts, the collision-like signature the paper's detectors rank on.
    The streams are emitted at roughly unit scale by construction, so no
    normalisation step is applied (or needed).  Deterministic in ``seed``.
    """

    train: np.ndarray        # (n_train, n_channels)
    test: np.ndarray         # (n_test, n_channels)
    test_labels: np.ndarray  # (n_test,) 0/1
    seed: int

    @property
    def n_channels(self) -> int:
        return int(self.train.shape[1])

    @property
    def anomaly_fraction(self) -> float:
        return float(self.test_labels.mean()) if self.test_labels.size else 0.0


def build_synthetic_anomaly_dataset(n_channels: int = 5, train_samples: int = 600,
                                    test_samples: int = 600, n_anomalies: int = 3,
                                    anomaly_length: int = 30,
                                    anomaly_magnitude: float = 1.5,
                                    sample_rate: float = 50.0,
                                    seed: int = 0) -> SyntheticAnomalyDataset:
    """Build a labelled synthetic stream pair (train clean, test with bursts).

    Anomaly bursts are additive Gaussian noise of standard deviation
    ``anomaly_magnitude`` across all channels, each ``anomaly_length``
    samples long (longer than the usual context windows, so fully anomalous
    windows exist), centred at evenly spaced positions in the middle of the
    test split.

    This is the library promotion of the signal structure the unit suites
    grew around (``tests/test_core/test_detector.py``); the generator in
    ``tests/golden/golden_harness.py`` deliberately keeps its own frozen
    copy -- the golden fixture must not move when this builder evolves.
    """
    if n_channels < 1:
        raise ValueError("n_channels must be at least 1")
    if n_anomalies < 1 or anomaly_length < 1:
        raise ValueError("need at least one anomaly of at least one sample")
    if test_samples < 2 * anomaly_length:
        raise ValueError("test split too short for the requested anomaly length")
    rng = np.random.default_rng(seed)

    def _stream(n_samples: int) -> np.ndarray:
        t = np.arange(n_samples) / sample_rate
        envelope = 0.03 + 0.25 * np.abs(np.sin(2.0 * np.pi * 0.08 * t))
        return np.stack([
            np.sin(2.0 * np.pi * (0.4 + 0.2 * channel) * t + channel)
            + envelope * rng.normal(0.0, 1.0, n_samples)
            for channel in range(n_channels)
        ], axis=1)

    train = _stream(train_samples)
    test = _stream(test_samples)
    labels = np.zeros(test_samples, dtype=np.int64)

    fractions = np.linspace(0.25, 0.75, n_anomalies)
    for start in np.round(fractions * (test_samples - anomaly_length)).astype(int):
        stop = start + anomaly_length
        test[start:stop] += rng.normal(0.0, anomaly_magnitude,
                                       size=(stop - start, n_channels))
        labels[start:stop] = 1

    return SyntheticAnomalyDataset(train=train, test=test, test_labels=labels,
                                   seed=seed)
