"""Channel schema of the robot data stream (paper Table 1).

The stream has 86 channels: an action-ID channel, 77 joint channels
(7 IMUs x 11 components) and 8 power channels.  This module describes each
channel (name, unit, description, group) and renders the schema as the table
the paper prints, which the Table-1 benchmark regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

__all__ = ["ChannelGroup", "ChannelSpec", "StreamSchema", "build_default_schema"]


class ChannelGroup(str, Enum):
    """Table-1 channel groups."""

    ACTION = "action"
    JOINT = "joint"
    POWER = "power"


@dataclass(frozen=True)
class ChannelSpec:
    """Description of one channel."""

    name: str
    unit: str
    description: str
    group: ChannelGroup
    joint_index: int = -1  # only meaningful for joint channels


_JOINT_COMPONENTS: Tuple[Tuple[str, str, str], ...] = (
    ("AccX", "m/s^2", "X-axis acceleration"),
    ("AccY", "m/s^2", "Y-axis acceleration"),
    ("AccZ", "m/s^2", "Z-axis acceleration"),
    ("GyroX", "deg/s", "X-axis angular velocity"),
    ("GyroY", "deg/s", "Y-axis angular velocity"),
    ("GyroZ", "deg/s", "Z-axis angular velocity"),
    ("q1", "-", "Quaternion orient. comp. 1"),
    ("q2", "-", "Quaternion orient. comp. 2"),
    ("q3", "-", "Quaternion orient. comp. 3"),
    ("q4", "-", "Quaternion orient. comp. 4"),
    ("temp", "degC", "Temperature"),
)

_POWER_CHANNELS: Tuple[Tuple[str, str, str], ...] = (
    ("current", "A", "Current"),
    ("frequency", "Hz", "Frequency"),
    ("phase_angle", "degree", "Phase angle"),
    ("power", "W", "Power"),
    ("power_factor", "-", "Power factor"),
    ("reactive_power", "VAr", "Reactive power"),
    ("voltage", "V", "Voltage"),
    ("import_energy", "kWh", "Imported energy"),
)


class StreamSchema:
    """Ordered collection of :class:`ChannelSpec` entries."""

    def __init__(self, channels: List[ChannelSpec]) -> None:
        if not channels:
            raise ValueError("schema must contain at least one channel")
        self.channels = list(channels)
        self._index: Dict[str, int] = {spec.name: i for i, spec in enumerate(self.channels)}
        if len(self._index) != len(self.channels):
            raise ValueError("duplicate channel names in schema")

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self):
        return iter(self.channels)

    def index_of(self, name: str) -> int:
        """Column index of a channel name."""
        if name not in self._index:
            raise KeyError(f"unknown channel {name!r}")
        return self._index[name]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.channels)

    def group_indices(self, group: ChannelGroup) -> List[int]:
        """Column indices of all channels in ``group``."""
        return [i for i, spec in enumerate(self.channels) if spec.group == group]

    def joint_indices(self, joint: int) -> List[int]:
        """Column indices of the 11 channels of one joint's IMU."""
        return [i for i, spec in enumerate(self.channels)
                if spec.group == ChannelGroup.JOINT and spec.joint_index == joint]

    def counts(self) -> Dict[str, int]:
        """Channel counts per group (used by the Table-1 benchmark)."""
        return {
            "action": len(self.group_indices(ChannelGroup.ACTION)),
            "joint": len(self.group_indices(ChannelGroup.JOINT)),
            "power": len(self.group_indices(ChannelGroup.POWER)),
            "total": len(self),
        }

    def as_table(self) -> List[str]:
        """Render the schema as Table-1 style text rows."""
        lines = [f"{'Channel name':<26}{'Unit':<10}Description"]
        lines.append("-" * 70)
        for spec in self.channels:
            lines.append(f"{spec.name:<26}{spec.unit:<10}{spec.description}")
        return lines


def build_default_schema(n_joints: int = 7) -> StreamSchema:
    """Build the 86-channel schema used by the simulator and the paper."""
    if n_joints < 1:
        raise ValueError("n_joints must be at least 1")
    channels: List[ChannelSpec] = [
        ChannelSpec(name="action_id", unit="-", description="Robot action ID",
                    group=ChannelGroup.ACTION)
    ]
    for joint in range(n_joints):
        for suffix, unit, description in _JOINT_COMPONENTS:
            channels.append(ChannelSpec(
                name=f"sensor_id_{joint}_{suffix}",
                unit=unit,
                description=description,
                group=ChannelGroup.JOINT,
                joint_index=joint,
            ))
    for name, unit, description in _POWER_CHANNELS:
        channels.append(ChannelSpec(name=name, unit=unit, description=description,
                                    group=ChannelGroup.POWER))
    return StreamSchema(channels)
