"""Quickstart: train VARADE on the simulated robot cell and detect collisions.

Generates a short normal recording and a collision experiment, trains the
VARADE detector on the normal data, scores the collision stream and reports
AUC-ROC plus a calibrated alarm threshold.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ThresholdCalibrator, TrainingConfig, VaradeConfig, VaradeDetector
from repro.data import DatasetConfig, build_benchmark_dataset
from repro.eval import roc_auc_score


def main() -> None:
    # 1. Build the benchmark dataset: a normal (training) recording and a
    #    collision experiment, both normalised to [-1, 1] per channel.
    dataset = build_benchmark_dataset(DatasetConfig(
        train_duration_s=60.0,
        test_duration_s=45.0,
        n_collisions=12,
        sample_rate=50.0,
        seed=0,
    ))
    print(f"dataset: {dataset.summary()}")

    # 2. Configure VARADE.  The paper's full configuration is
    #    VaradeConfig.paper(); here we use a CPU-friendly scaled version.
    config = VaradeConfig(
        n_channels=dataset.n_channels,
        window=32,
        base_feature_maps=16,
        kl_weight=0.1,
    )
    training = TrainingConfig(
        learning_rate=3e-3,
        epochs=16,
        mean_warmup_epochs=4,
        variance_finetune_epochs=12,
        max_train_windows=1200,
        seed=0,
    )
    detector = VaradeDetector(config, training)
    print(f"VARADE: {config.n_layers} conv layers, "
          f"{detector.network.num_parameters():,} parameters")

    # 3. Train on normal data only (no anomaly labels are ever used).
    detector.fit(dataset.train)
    print(f"trained in {detector.history.wall_time_s:.1f} s, "
          f"final loss {detector.history.final_loss:.3f}")

    # 4. Score the collision experiment: the predicted variance is the score.
    result = detector.score_stream(dataset.test)
    scores, labels = result.aligned(dataset.test_labels)
    auc = roc_auc_score(scores, labels)
    print(f"AUC-ROC on the collision experiment: {auc:.3f}")

    # 5. Calibrate an operating threshold on normal scores and count alarms.
    normal_scores = detector.score_stream(dataset.train).valid_scores()
    threshold = ThresholdCalibrator(method="quantile", quantile=0.995).calibrate(normal_scores)
    alarms = threshold.classify(scores)
    detected_events = int(np.sum(alarms[labels == 1]))
    false_alarms = int(np.sum(alarms[labels == 0]))
    print(f"threshold={threshold.threshold:.4f}: "
          f"{detected_events} anomalous samples flagged, {false_alarms} false alarms "
          f"over {int((labels == 0).sum())} normal samples")


if __name__ == "__main__":
    main()
