"""Quickstart: train VARADE on the simulated robot cell and detect collisions.

One declarative :class:`~repro.pipeline.DeploymentSpec` describes the whole
deployment -- detector + hyper-parameters, training settings and the
threshold calibration rule -- and one :meth:`Pipeline.run` call trains on
the normal recording, scores the collision stream and calibrates the alarm
threshold.  The same spec, saved to JSON, reproduces this run through the
CLI: ``python -m repro train --spec spec.json``.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import DatasetConfig, build_benchmark_dataset
from repro.pipeline import (CalibrationSpec, DeploymentSpec, DetectorSpec,
                            Pipeline)


def main() -> None:
    # 1. Build the benchmark dataset: a normal (training) recording and a
    #    collision experiment, both normalised to [-1, 1] per channel.
    dataset = build_benchmark_dataset(DatasetConfig(
        train_duration_s=60.0,
        test_duration_s=45.0,
        n_collisions=12,
        sample_rate=50.0,
        seed=0,
    ))
    print(f"dataset: {dataset.summary()}")

    # 2. Describe the deployment declaratively.  The paper's full VARADE
    #    configuration is VaradeConfig.paper(); this is a CPU-friendly
    #    scaled version.  The master seed reaches every stage.
    spec = DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": dataset.n_channels, "window": 32,
                    "base_feature_maps": 16, "kl_weight": 0.1},
            training={"learning_rate": 3e-3, "epochs": 16,
                      "mean_warmup_epochs": 4, "variance_finetune_epochs": 12,
                      "max_train_windows": 1200},
        ),
        calibration=CalibrationSpec(method="quantile", quantile=0.995),
        seed=0,
    )

    # 3. One shot: fit on normal data, score the collision experiment,
    #    calibrate the operating threshold -- all per the spec.
    pipeline = Pipeline.from_spec(spec)
    report = pipeline.run(dataset)
    detector = pipeline.detector
    print(f"VARADE: {detector.config.n_layers} conv layers, "
          f"{detector.network.num_parameters():,} parameters")
    print(f"trained in {report.train_time_s:.1f} s, "
          f"final loss {detector.history.final_loss:.3f}")
    print(f"AUC-ROC on the collision experiment: {report.float_report.auc_roc:.3f}")

    # 4. The calibrated threshold is attached to the detector; count alarms.
    scores, labels = report.float_report.score_result.aligned(dataset.test_labels)
    alarms = report.threshold.classify(scores)
    detected_events = int(np.sum(alarms[labels == 1]))
    false_alarms = int(np.sum(alarms[labels == 0]))
    print(f"threshold={report.threshold.threshold:.4f}: "
          f"{detected_events} anomalous samples flagged, {false_alarms} false alarms "
          f"over {int((labels == 0).sum())} normal samples")


if __name__ == "__main__":
    main()
