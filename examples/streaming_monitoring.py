"""Real-time streaming monitoring of the robot cell.

Mimics the paper's deployment loop ("continuously reads data from the
sensors, prepares the data, and calls the inference function"): a VARADE
detector trained on normal operation watches a replayed collision
experiment sample by sample, raises alarms against a calibrated threshold,
and reports per-event detection latency -- the quantity that matters for
the paper's stated goal of reacting to hazardous situations in real time.

Run with:  python examples/streaming_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.data import DatasetConfig, build_benchmark_dataset
from repro.pipeline import (CalibrationSpec, DeploymentSpec, DetectorSpec,
                            Pipeline, RuntimeSpec)


def main() -> None:
    dataset = build_benchmark_dataset(DatasetConfig(
        train_duration_s=75.0,
        test_duration_s=50.0,
        n_collisions=10,
        sample_rate=50.0,
        seed=3,
    ))
    print(f"dataset: {dataset.summary()}")

    # The whole deployment -- detector, training, calibration rule and
    # stream-replay settings -- in one declarative spec.
    spec = DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": dataset.n_channels, "window": 32,
                    "base_feature_maps": 16},
            training={"epochs": 14, "mean_warmup_epochs": 4,
                      "variance_finetune_epochs": 12, "learning_rate": 3e-3,
                      "max_train_windows": 1000},
        ),
        calibration=CalibrationSpec(method="quantile", quantile=0.997),
        runtime=RuntimeSpec(sample_rate_hz=dataset.config.sample_rate),
        seed=0,
    )
    pipeline = Pipeline.from_spec(spec).fit(dataset.train).calibrate()
    threshold = pipeline.detector.threshold
    print(f"calibrated alarm threshold: {threshold.threshold:.4f} "
          f"({threshold.method}, {threshold.parameter})")

    result = pipeline.deploy_stream(dataset.test, labels=dataset.test_labels)

    print(f"streamed {result.scores.shape[0]} samples, scored {result.samples_scored}, "
          f"host inference rate {result.host_inference_hz:.1f} Hz "
          f"(mean latency {result.mean_latency_s * 1e3:.2f} ms)")

    # Per-event detection latency: time from collision onset to first alarm.
    sample_period = 1.0 / dataset.config.sample_rate
    detected, missed = 0, 0
    latencies = []
    for event in dataset.test_recording.events:
        window = slice(event.start_index, event.end_index + int(0.5 / sample_period))
        alarm_indices = np.nonzero(result.alarms[window])[0]
        if alarm_indices.size:
            detected += 1
            latencies.append(alarm_indices[0] * sample_period)
        else:
            missed += 1
    false_alarms = int(result.alarms[(dataset.test_labels == 0)].sum())
    print(f"collisions detected: {detected}/{detected + missed}, "
          f"false alarm samples: {false_alarms}")
    if latencies:
        print(f"median detection latency: {np.median(latencies) * 1e3:.0f} ms "
              f"(max {np.max(latencies) * 1e3:.0f} ms)")


if __name__ == "__main__":
    main()
