"""Edge deployment study: estimate Table-2 style metrics on both Jetson boards.

Takes the paper-scale configuration of every detector (T = 512 window,
128-1024 feature maps, 5x256 LSTM, 6 ResNet blocks, 30 boosted trees, kNN
over the full training set, 100 isolation trees), derives their
per-inference cost profiles, and runs them through the analytical edge
device models to produce the deployment metrics of Table 2, plus a
jetson-stats style monitoring trace for VARADE.

Run with:  python examples/edge_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro.edge import BoardMonitor, EdgeEstimator, JETSON_AGX_ORIN, JETSON_XAVIER_NX
from repro.eval import paper_scale_costs
from repro.eval.reporting import PAPER_TABLE2, format_table2


def main() -> None:
    costs = paper_scale_costs(n_channels=86)

    for device in (JETSON_XAVIER_NX, JETSON_AGX_ORIN):
        estimator = EdgeEstimator(device)
        print(device.describe())
        rows = [{
            "board": device.name, "model": "Idle",
            "cpu_percent": device.idle_cpu_percent, "gpu_percent": device.idle_gpu_percent,
            "ram_mb": device.idle_ram_mb, "gpu_ram_mb": device.idle_gpu_ram_mb,
            "power_w": device.idle_power_w, "auc_roc": None, "inference_hz": None,
        }]
        for name, cost in costs.items():
            metrics = estimator.estimate(cost, name, max_rate_hz=200.0)
            row = metrics.as_row()
            row["auc_roc"] = PAPER_TABLE2[device.name][name]["auc_roc"]
            rows.append(row)
        print(format_table2(rows))
        print()

    # Monitor the board (jetson-stats substitute) while VARADE streams.
    xavier = EdgeEstimator(JETSON_XAVIER_NX)
    operating_point = xavier.estimate(costs["VARADE"], "VARADE", max_rate_hz=200.0)
    monitor = BoardMonitor(JETSON_XAVIER_NX, poll_rate_hz=1.0, rng=np.random.default_rng(0))
    idle = monitor.observe_idle(duration_s=360.0).mean()
    run = monitor.observe_run(operating_point, duration_s=120.0).mean()
    print("VARADE on the Xavier NX -- monitored means (idle -> running):")
    for key in ("power_w", "cpu_percent", "gpu_percent", "ram_mb", "gpu_ram_mb"):
        print(f"  {key:<12} {idle[key]:10.2f} -> {run[key]:10.2f}")
    print(f"  estimated inference frequency: {operating_point.inference_frequency_hz:.1f} Hz "
          f"(paper: {PAPER_TABLE2['Jetson Xavier NX']['VARADE']['inference_hz']:.1f} Hz)")


if __name__ == "__main__":
    main()
