"""Compare VARADE against the paper's five baselines on the collision task.

Reproduces the accuracy side of the paper's evaluation (Section 4.4): every
detector is trained on the same normal recording, scored on the same
collision experiment, and ranked by AUC-ROC.  This is the workload the
paper's introduction motivates: detecting human/robot collisions from the
86-channel sensor stream of a production cell.

Run with:  python examples/collision_detection_comparison.py
"""

from __future__ import annotations

import time

from repro.baselines import DetectorRegistry
from repro.baselines.registry import DETECTOR_NAMES
from repro.data import DatasetConfig, build_benchmark_dataset
from repro.eval import PAPER_AUC, evaluate_detector, format_comparison
from repro.pipeline import Pipeline


def main() -> None:
    dataset = build_benchmark_dataset(DatasetConfig(
        train_duration_s=90.0,
        test_duration_s=60.0,
        n_collisions=20,
        sample_rate=50.0,
        seed=0,
    ))
    print(f"dataset: {dataset.summary()}\n")

    registry = DetectorRegistry(
        n_channels=dataset.n_channels,
        window=32,
        neural_epochs=4,
        max_train_windows=600,
        varade_feature_maps=16,
        seed=0,
    )

    rows = []
    # Each study entry becomes a declarative DeploymentSpec; the pipeline
    # builds a bit-identical detector to the legacy registry constructor.
    for name in DETECTOR_NAMES:
        detector = Pipeline.from_spec(registry.deployment_spec(name)).build_detector()
        start = time.perf_counter()
        evaluation = evaluate_detector(detector, dataset)
        rows.append(evaluation)
        print(f"{evaluation.name:<18} AUC-ROC={evaluation.auc_roc:.3f}  "
              f"AP={evaluation.average_precision:.3f}  best-F1={evaluation.best_f1:.3f}  "
              f"train={evaluation.train_time_s:5.1f}s  "
              f"host scoring rate={evaluation.host_score_hz:8.1f} Hz  "
              f"(total {time.perf_counter() - start:.1f}s)")

    print()
    ranked = sorted(rows, key=lambda e: -e.auc_roc)
    print("ranking by AUC-ROC: " + " > ".join(e.name for e in ranked))
    print()
    print(format_comparison({e.name: e.auc_roc for e in rows}, PAPER_AUC, "AUC-ROC",
                            title="paper vs reproduction -- AUC-ROC"))


if __name__ == "__main__":
    main()
