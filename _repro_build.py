"""Minimal, dependency-free PEP 517 build backend for offline installs.

The reproduction environment has no network access and no ``wheel`` package,
so the standard setuptools editable-install path (which builds a wheel via
``bdist_wheel``) cannot run.  This backend implements just enough of PEP 517
/ PEP 660 with the standard library: it assembles the wheel archive (a zip
file with the package tree or, for editable installs, a ``.pth`` pointing at
``src/``) and the dist-info metadata by hand.

It is intentionally specific to this project layout (a single package under
``src/``) and is not a general-purpose build tool.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

_NAME = "repro"
_VERSION = "0.1.0"
_TAG = "py3-none-any"
_SUMMARY = ("Reproduction of VARADE: a Variational-based AutoRegressive model "
            "for Anomaly Detection on the Edge (DAC 2024)")
_ROOT = os.path.abspath(os.path.dirname(__file__))


# --------------------------------------------------------------------------- #
# PEP 517 hooks
# --------------------------------------------------------------------------- #
def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    return _write_dist_info(metadata_directory)


def prepare_metadata_for_build_editable(metadata_directory, config_settings=None):
    return _write_dist_info(metadata_directory)


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    wheel_name = f"{_NAME}-{_VERSION}-{_TAG}.whl"
    wheel_path = os.path.join(wheel_directory, wheel_name)
    records = []
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as archive:
        package_root = os.path.join(_ROOT, "src", _NAME)
        for directory, _, filenames in os.walk(package_root):
            for filename in sorted(filenames):
                if filename.endswith(".pyc"):
                    continue
                full_path = os.path.join(directory, filename)
                relative = os.path.relpath(full_path, os.path.join(_ROOT, "src"))
                arcname = relative.replace(os.sep, "/")
                with open(full_path, "rb") as handle:
                    data = handle.read()
                archive.writestr(arcname, data)
                records.append(_record_entry(arcname, data))
        _add_dist_info(archive, records)
    return wheel_name


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    wheel_name = f"{_NAME}-{_VERSION}-{_TAG}.whl"
    wheel_path = os.path.join(wheel_directory, wheel_name)
    records = []
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as archive:
        pth_name = f"__editable__.{_NAME}-{_VERSION}.pth"
        pth_content = (os.path.join(_ROOT, "src") + "\n").encode()
        archive.writestr(pth_name, pth_content)
        records.append(_record_entry(pth_name, pth_content))
        _add_dist_info(archive, records)
    return wheel_name


def build_sdist(sdist_directory, config_settings=None):
    import tarfile

    sdist_name = f"{_NAME}-{_VERSION}.tar.gz"
    sdist_path = os.path.join(sdist_directory, sdist_name)
    base = f"{_NAME}-{_VERSION}"
    with tarfile.open(sdist_path, "w:gz") as archive:
        for entry in ("pyproject.toml", "README.md", "_repro_build.py", "src"):
            full_path = os.path.join(_ROOT, entry)
            if os.path.exists(full_path):
                archive.add(full_path, arcname=f"{base}/{entry}")
    return sdist_name


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _metadata_text() -> str:
    return (
        "Metadata-Version: 2.1\n"
        f"Name: {_NAME}\n"
        f"Version: {_VERSION}\n"
        f"Summary: {_SUMMARY}\n"
        "Requires-Python: >=3.10\n"
        "Requires-Dist: numpy>=1.24\n"
        "Requires-Dist: scipy>=1.10\n"
    )


def _wheel_text() -> str:
    return (
        "Wheel-Version: 1.0\n"
        "Generator: repro-build 0.1\n"
        "Root-Is-Purelib: true\n"
        f"Tag: {_TAG}\n"
    )


def _record_entry(arcname: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=").decode()
    return f"{arcname},sha256={digest},{len(data)}"


def _dist_info_name() -> str:
    return f"{_NAME}-{_VERSION}.dist-info"


def _add_dist_info(archive: zipfile.ZipFile, records: list[str]) -> None:
    dist_info = _dist_info_name()
    metadata = _metadata_text().encode()
    wheel_meta = _wheel_text().encode()
    archive.writestr(f"{dist_info}/METADATA", metadata)
    records.append(_record_entry(f"{dist_info}/METADATA", metadata))
    archive.writestr(f"{dist_info}/WHEEL", wheel_meta)
    records.append(_record_entry(f"{dist_info}/WHEEL", wheel_meta))
    records.append(f"{dist_info}/RECORD,,")
    archive.writestr(f"{dist_info}/RECORD", "\n".join(records) + "\n")


def _write_dist_info(metadata_directory: str) -> str:
    dist_info = _dist_info_name()
    target = os.path.join(metadata_directory, dist_info)
    os.makedirs(target, exist_ok=True)
    with open(os.path.join(target, "METADATA"), "w", encoding="utf-8") as handle:
        handle.write(_metadata_text())
    with open(os.path.join(target, "WHEEL"), "w", encoding="utf-8") as handle:
        handle.write(_wheel_text())
    return dist_info
