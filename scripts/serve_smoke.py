#!/usr/bin/env python
"""End-to-end serving smoke: package an artifact, serve it, alarm over the wire.

The flow CI's ``serve-smoke`` job runs on every push (and ``scripts/
verify.sh`` runs locally), once per (transport, protocol) combination --
JSON over TCP, binary over TCP, and binary over a Unix-domain socket where
the platform offers one:

1. ``repro train --fast`` + ``repro package`` build a tiny deployable
   artifact in a scratch workdir (once);
2. ``repro serve`` starts the wire server on an ephemeral endpoint with the
   combination's ``--transport``/``--protocol`` knobs (the bound endpoint
   lands in a port file -- a race-free handshake);
3. the matching client (:class:`repro.serve.TCPClient` or
   :class:`repro.serve.BinaryClient`) opens a session, replays the spec's
   own synthetic test split (which contains seeded anomalies), and asserts
   that at least one alarm comes back over the wire;
4. the ``--metrics-port`` scrape endpoint is polled over plain HTTP and the
   Prometheus page must agree with the wire-level session summary;
5. the client asks the server to shut down and the script asserts a clean
   exit.

Run directly::

    PYTHONPATH=src python scripts/serve_smoke.py [workdir]
"""

import os
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
SERVER_STARTUP_TIMEOUT_S = 60.0
SERVER_EXIT_TIMEOUT_S = 30.0


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing \
        else src + os.pathsep + existing
    return env


def run_cli(*args: str) -> None:
    subprocess.run([sys.executable, "-m", "repro", *args], check=True,
                   cwd=REPO, env=_env())


def _combinations(workdir: Path):
    """(label, extra serve args, client factory) per smoke leg."""
    from repro.serve import HAS_UNIX_SOCKETS, BinaryClient, TCPClient

    combos = [
        ("tcp/json", [], lambda endpoint: TCPClient(port=int(endpoint))),
        ("tcp/binary", ["--protocol", "binary"],
         lambda endpoint: BinaryClient(port=int(endpoint))),
    ]
    if HAS_UNIX_SOCKETS:
        uds = workdir / "serve.sock"
        combos.append(
            ("uds/binary",
             ["--transport", "uds", "--uds-path", str(uds),
              "--protocol", "binary"],
             lambda endpoint: BinaryClient(uds_path=endpoint)))
    else:
        print("serve-smoke: no AF_UNIX on this platform; skipping uds leg")
    return combos


def _scrape_metrics(metrics_port_file: Path) -> str:
    """Fetch the Prometheus page once the ephemeral port is handshaken."""
    deadline = time.monotonic() + SERVER_STARTUP_TIMEOUT_S
    while not metrics_port_file.is_file():
        if time.monotonic() > deadline:
            raise RuntimeError("metrics port file never appeared")
        time.sleep(0.1)
    port = int(metrics_port_file.read_text().strip())
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                                timeout=10.0) as response:
        return response.read().decode("utf-8")


def _metric_value(page: str, name: str) -> float:
    """The value of an unlabelled series on a Prometheus text page."""
    for line in page.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    raise AssertionError(f"metric {name} missing from scrape page")


def _smoke_one(workdir: Path, label: str, serve_args, make_client,
               stream: np.ndarray) -> None:
    port_file = workdir / f"endpoint-{label.replace('/', '-')}"
    port_file.unlink(missing_ok=True)
    metrics_port_file = workdir / f"metrics-{label.replace('/', '-')}"
    metrics_port_file.unlink(missing_ok=True)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workdir", str(workdir),
         "--port", "0", "--port-file", str(port_file),
         "--metrics-port", "0",
         "--metrics-port-file", str(metrics_port_file),
         "--max-delay-ms", "2", "--max-seconds", "120", *serve_args],
        cwd=REPO, env=_env(),
    )
    try:
        deadline = time.monotonic() + SERVER_STARTUP_TIMEOUT_S
        while not port_file.is_file():
            if server.poll() is not None:
                raise RuntimeError(
                    f"[{label}] server exited early with code "
                    f"{server.returncode}")
            if time.monotonic() > deadline:
                raise RuntimeError(f"[{label}] server did not come up in time")
            time.sleep(0.2)
        endpoint = port_file.read_text().strip()
        print(f"serve-smoke: [{label}] server listening on {endpoint}")

        with make_client(endpoint) as client:
            assert client.ping()["ok"]
            opened = client.open("smoke-1")
            assert opened["threshold"] is not None, \
                "packaged artifact should carry a calibrated threshold"
            assert opened["incremental"], \
                "VARADE sessions should engage the incremental scoring lane"
            client.push_stream("smoke-1", stream)
            summary = client.close_stream("smoke-1")
            print(f"serve-smoke: [{label}] pushed {summary['samples_pushed']}, "
                  f"scored {summary['samples_scored']}, "
                  f"{len(client.alarms)} alarms")
            assert summary["samples_pushed"] == stream.shape[0]
            assert summary["samples_scored"] > 0, "nothing was scored"
            assert summary["samples_dropped"] == 0, "windows were dropped"
            assert client.alarms, \
                "expected at least one alarm from the seeded anomalies"
            stats = client.stats()
            assert stats["live_sessions"] == 0
            page = _scrape_metrics(metrics_port_file)
            pushed = _metric_value(page, "repro_service_samples_pushed_total")
            assert pushed == summary["samples_pushed"], \
                f"scrape page says {pushed} pushed, wire says " \
                f"{summary['samples_pushed']}"
            # wire alarm frames race the op acks, so only a floor is exact
            assert _metric_value(page, "repro_service_alarms_total") >= 1
            print(f"serve-smoke: [{label}] metrics scrape reconciles "
                  f"({summary['samples_pushed']} pushed)")
            assert client.shutdown()["ok"]

        code = server.wait(timeout=SERVER_EXIT_TIMEOUT_S)
        assert code == 0, f"[{label}] server exited with {code}"
        print(f"serve-smoke: [{label}] clean shutdown, OK")
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                server.kill()


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.cli import fast_spec

    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    print(f"serve-smoke: workdir {workdir}")
    run_cli("train", "--fast", "--workdir", str(workdir))
    run_cli("package", "--workdir", str(workdir))

    spec = fast_spec()
    dataset = spec.data.build(spec.seed)
    stream = np.asarray(dataset.test)[:250]
    for label, serve_args, make_client in _combinations(workdir):
        _smoke_one(workdir, label, serve_args, make_client, stream)
    print("serve-smoke: all transport/protocol combinations OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
