#!/usr/bin/env python
"""End-to-end lifecycle smoke: canary, gated promotion, watcher rollback.

The flow CI's ``lifecycle-smoke`` job runs on every push (and
``scripts/verify.sh`` runs locally) against the real artifacts and
serving entry points:

1. ``repro train --fast`` + ``repro package`` build the incumbent
   artifact A; a second workdir (seed 7) builds candidate B and
   ``repro baseline`` records B's golden baseline sidecar;
2. **in-process leg** -- serve A, attach a canary for B on every stream,
   and walk the whole lifecycle: the promotion is *gated* while the
   canary is undecided, passes once B has shadow-scored its baseline
   traffic, the hot swap drops no sample and scores bit-identically to a
   fresh service started on B, and a forced regression (alarm storm)
   after promotion makes the armed meta-watcher roll back to A;
3. **wire leg** -- ``repro serve`` on artifact A, driven end to end with
   the ``repro canary`` / ``repro promote`` CLI: status is undecided
   under the default gates, bare ``promote`` exits 1 with the --force
   hint, ``promote --force`` swaps, ``promote --rollback`` restores A;
4. **cluster leg** -- ``repro serve --workers 2``: fleet-wide canary
   attach, per-worker status, forced promotion on every shard, rollback.

Run directly::

    PYTHONPATH=src python scripts/lifecycle_smoke.py [workdir]
"""

import asyncio
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
SERVER_STARTUP_TIMEOUT_S = 60.0
SERVER_EXIT_TIMEOUT_S = 30.0
ROLLBACK_TIMEOUT_S = 30.0
CANDIDATE_SEED = 7


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing \
        else src + os.pathsep + existing
    return env


def run_cli(*args: str) -> int:
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          cwd=REPO, env=_env()).returncode


def check_cli(*args: str) -> None:
    code = run_cli(*args)
    assert code == 0, f"repro {' '.join(args)} exited {code}"


def _await_file(path: Path, server: subprocess.Popen, what: str) -> None:
    deadline = time.monotonic() + SERVER_STARTUP_TIMEOUT_S
    while not path.is_file():
        if server.poll() is not None:
            raise RuntimeError(f"server exited early with code "
                               f"{server.returncode} before {what}")
        if time.monotonic() > deadline:
            raise RuntimeError(f"{what} never appeared")
        time.sleep(0.2)


def build_artifacts(workdir: Path):
    """Artifact A (incumbent) and artifact B (candidate + baseline)."""
    candidate_workdir = workdir / "candidate"
    check_cli("train", "--fast", "--workdir", str(workdir))
    check_cli("package", "--workdir", str(workdir))
    check_cli("train", "--fast", "--seed", str(CANDIDATE_SEED),
              "--workdir", str(candidate_workdir))
    check_cli("package", "--workdir", str(candidate_workdir))
    check_cli("baseline", "--workdir", str(candidate_workdir))
    return workdir / "package", candidate_workdir / "package"


def in_process_leg(artifact_a: Path, artifact_b: Path,
                   baseline_traffic: np.ndarray) -> None:
    """Gated promotion, zero-drop bit-exact swap, watcher auto-rollback."""
    from repro.lifecycle import (CanaryController, MetaWatcher, WatchPolicy,
                                 load_baseline)
    from repro.pipeline import Pipeline
    from repro.serialize import artifact_fingerprint, load_detector
    from repro.serve import AnomalyService, ServiceConfig

    fp_a = artifact_fingerprint(artifact_a)
    fp_b = artifact_fingerprint(artifact_b)
    detector_b = load_detector(artifact_b)
    window = detector_b.window
    swap_at = 300    # promote mid-stream, after the 256-sample gate can pass
    config = ServiceConfig(max_batch=16, max_delay_ms=2.0,
                           record_sessions=True)

    async def settle(service, scored):
        deadline = time.monotonic() + 10.0
        while service.stats().samples_scored < scored:
            assert time.monotonic() < deadline, "scheduler never drained"
            await asyncio.sleep(0.02)

    async def main():
        service = Pipeline.load(artifact_a).deploy_service(config=config)
        await service.start()
        watcher = MetaWatcher(WatchPolicy(interval_s=0.05, patience=1,
                                          max_alarm_rate=0.5))
        service.attach_watcher(watcher)
        controller = CanaryController(
            detector_b, baseline=load_baseline(artifact_b),
            fraction=1.0, fingerprint=fp_b)
        service.attach_canary(controller)

        # -- gated: an undecided canary holds the promotion back -------- #
        for row in baseline_traffic[:64]:
            await service.push("cell-0", row)
        gated = await service.promote()
        assert not gated["promoted"], gated
        assert gated["report"]["verdict"] == "undecided"
        print("lifecycle-smoke: promotion gated while the canary is "
              f"undecided ({gated['report']['samples']} samples)")

        # -- gates pass once B shadow-scores its own baseline traffic --- #
        for row in baseline_traffic[64:swap_at]:
            await service.push("cell-0", row)
        await settle(service, swap_at - window + 1)
        report = controller.evaluate()
        assert report.verdict == "promote", report.to_dict()
        promoted = await service.promote()
        assert promoted["promoted"]
        assert promoted["fingerprint"] == fp_b
        assert promoted["previous_fingerprint"] == fp_a
        assert promoted["migrated_sessions"] == 1
        assert watcher.armed
        print(f"lifecycle-smoke: gates passed, promoted {fp_b[:12]}… "
              f"(migrated {promoted['migrated_sessions']} session)")

        # -- zero drops across the swap ---------------------------------- #
        for row in baseline_traffic[swap_at:]:
            await service.push("cell-0", row)
        scorable = len(baseline_traffic) - window + 1
        await settle(service, scorable)
        stats = service.stats()
        assert stats.samples_dropped == 0
        assert stats.samples_scored == scorable, \
            (stats.samples_scored, scorable)

        # -- post-swap scores bit-identical to a fresh service on B ------ #
        # result() covers every pushed sample (scores[j] is the window
        # ending at sample j), so the post-swap tail starts at swap_at.
        post_swap = service.sessions["cell-0"].result().scores[swap_at:]
        fresh_service = Pipeline.load(artifact_b).deploy_service(
            config=config)
        await fresh_service.start()
        for row in baseline_traffic:
            await fresh_service.push("cell-0", row)
        await fresh_service.stop()
        fresh = fresh_service.sessions["cell-0"].result().scores
        np.testing.assert_allclose(post_swap, fresh[swap_at:],
                                   rtol=0.0, atol=0.0, equal_nan=True)
        print(f"lifecycle-smoke: {post_swap.size} post-swap scores "
              "bit-identical to a fresh service on the candidate")

        # -- forced regression: the armed watcher rolls back ------------- #
        storm = baseline_traffic[:80] + 40.0
        deadline = time.monotonic() + ROLLBACK_TIMEOUT_S
        while service.artifact_fingerprint != fp_a:
            assert time.monotonic() < deadline, "watcher never rolled back"
            for row in storm:
                await service.push("cell-0", row)
            await asyncio.sleep(0.1)
        assert watcher.rollbacks == 1
        assert not watcher.armed
        print(f"lifecycle-smoke: regression storm rolled back to "
              f"{fp_a[:12]}… automatically")
        await service.stop()

    asyncio.run(main())


def wire_leg(artifact_a: Path, artifact_b: Path, workdir: Path,
             baseline_traffic: np.ndarray) -> None:
    """The CLI flow against ``repro serve``: gated, forced, rolled back."""
    from repro.serve import TCPClient

    port_file = workdir / "wire-endpoint"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workdir", str(workdir),
         "--port", "0", "--port-file", str(port_file),
         "--max-delay-ms", "2", "--max-seconds", "120"],
        cwd=REPO, env=_env(),
    )
    try:
        _await_file(port_file, server, "server port file")
        endpoint = f"127.0.0.1:{int(port_file.read_text().strip())}"
        check_cli("canary", "--connect", endpoint,
                  "--artifact", str(artifact_b), "--fraction", "1.0")
        with TCPClient(port=int(endpoint.rsplit(":", 1)[1])) as client:
            client.open("wire-0")
            client.push_stream("wire-0", baseline_traffic[:120])
            client.close_stream("wire-0")
            check_cli("canary", "--connect", endpoint, "--status")
            # Default gates need 256 samples; 113 windows hold it back.
            code = run_cli("promote", "--connect", endpoint)
            assert code == 1, f"gated promote should exit 1, got {code}"
            print("lifecycle-smoke: wire promotion gated (exit 1)")
            check_cli("promote", "--connect", endpoint, "--force")
            check_cli("promote", "--connect", endpoint, "--rollback",
                      "--reason", "smoke")
            print("lifecycle-smoke: wire force-promote and rollback OK")
            assert client.shutdown()["ok"]
        code = server.wait(timeout=SERVER_EXIT_TIMEOUT_S)
        assert code == 0, f"server exited with {code}"
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                server.kill()


def cluster_leg(artifact_a: Path, artifact_b: Path, workdir: Path,
                baseline_traffic: np.ndarray) -> None:
    """Fleet-wide canary and swap through the shard router."""
    from repro.serve import TCPClient

    port_file = workdir / "cluster-endpoint"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workdir", str(workdir),
         "--workers", "2", "--port", "0", "--port-file", str(port_file),
         "--max-delay-ms", "2", "--max-seconds", "120"],
        cwd=REPO, env=_env(),
    )
    try:
        _await_file(port_file, server, "router port file")
        port = int(port_file.read_text().strip())
        with TCPClient(port=port) as client:
            attached = client.canary(
                str(artifact_b), fraction=1.0,
                gates={"min_samples": 32, "alarm_rate_slack": 0.05})
            workers = sorted(attached["workers"])
            assert len(workers) == 2, attached
            for index in range(4):
                stream = f"shard-{index}"
                client.open(stream)
                client.push_stream(stream, baseline_traffic[:150])
                client.close_stream(stream)
            status = client.canary_status()
            assert sorted(status["workers"]) == workers
            # Each worker judges only its own traffic slice; force makes
            # the fleet swap deterministic for the smoke.
            promoted = client.promote(force=True)
            assert promoted["promoted"], promoted
            assert all(entry["promoted"]
                       for entry in promoted["workers"].values())
            rolled = client.rollback(reason="smoke")
            assert rolled["ok"], rolled
            print(f"lifecycle-smoke: fleet of {len(workers)} promoted and "
                  "rolled back through the router")
            assert client.shutdown()["ok"]
        code = server.wait(timeout=SERVER_EXIT_TIMEOUT_S)
        assert code == 0, f"server exited with {code}"
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                server.kill()


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.cli import fast_spec

    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path(tempfile.mkdtemp(prefix="repro-lifecycle-smoke-"))
    print(f"lifecycle-smoke: workdir {workdir}")
    artifact_a, artifact_b = build_artifacts(workdir)

    # The exact traffic `repro baseline` recorded B's golden baseline on.
    baseline_traffic = np.asarray(
        fast_spec().data.build(CANDIDATE_SEED).test)

    in_process_leg(artifact_a, artifact_b, baseline_traffic)
    wire_leg(artifact_a, artifact_b, workdir, baseline_traffic)
    cluster_leg(artifact_a, artifact_b, workdir, baseline_traffic)
    print("lifecycle-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
