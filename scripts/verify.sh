#!/usr/bin/env bash
# Repo verification: tier-1 test suite + the fast benchmark tier.
#
#   scripts/verify.sh                   tier-1 tests, then benchmarks -m "not slow"
#   scripts/verify.sh --tier1-only      tier-1 tests only (the CI matrix legs)
#   scripts/verify.sh --fast            alias of --tier1-only
#   scripts/verify.sh --benchmarks-only fast benchmark tier only (CI runs this
#                                       after the tier-1 matrix has gated)
#
# Tier 1 is the full default pytest run (the bar every PR must keep green),
# followed by the CLI/serve smokes and the docs leg (runnable docstring
# examples via --doctest-modules, plus the Markdown link checker).
# The benchmark tier regenerates the paper's tables at reproduction scale
# and takes a few minutes; the "slow" marker gates the long scaling sweeps.
#
# CI-safe: strict mode, no interactive assumptions, and any tier failing
# fails the script (set -e propagates the benchmark tier's exit status too).

set -euo pipefail

mode="${1:-}"
case "$mode" in
    ""|--tier1-only|--fast|--benchmarks-only) ;;
    *)
        echo "usage: scripts/verify.sh [--tier1-only|--fast|--benchmarks-only]" >&2
        exit 2
        ;;
esac

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "$mode" != "--benchmarks-only" ]]; then
    echo "== tier 1: full test suite =="
    python -m pytest -x -q

    echo
    echo "== CLI smoke: train --fast -> quantize -> package -> stream =="
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    python -m repro train --fast --workdir "$smoke_dir" >/dev/null
    python -m repro quantize --workdir "$smoke_dir" >/dev/null
    python -m repro package --workdir "$smoke_dir" >/dev/null
    python -m repro stream --workdir "$smoke_dir" >/dev/null
    echo "CLI smoke: OK"

    echo
    echo "== serve smoke: package -> repro serve -> alarm over each transport/protocol =="
    python scripts/serve_smoke.py >/dev/null
    echo "serve smoke: OK"

    echo
    echo "== cluster smoke: repro serve --workers 2, two tenants, worker kill =="
    python scripts/cluster_smoke.py >/dev/null
    echo "cluster smoke: OK"

    echo
    echo "== lifecycle smoke: canary -> gated promote -> hot-swap -> watcher rollback =="
    python scripts/lifecycle_smoke.py >/dev/null
    echo "lifecycle smoke: OK"

    echo
    echo "== docs: runnable docstring examples + Markdown links =="
    python -m pytest --doctest-modules src/repro/obs src/repro/serve src/repro/cluster -q
    python scripts/check_links.py
fi

if [[ "$mode" != "--tier1-only" && "$mode" != "--fast" ]]; then
    echo
    echo '== benchmarks (-m "not slow") =='
    # bench_*.py files must be named explicitly: pytest's default collection
    # pattern (test_*.py) deliberately keeps them out of the tier-1 run.
    python -m pytest benchmarks/bench_*.py -m "not slow" -q
fi

echo
echo "verify: OK"
