#!/usr/bin/env bash
# Repo verification: tier-1 test suite + the fast benchmark tier.
#
#   scripts/verify.sh          tier-1 tests, then benchmarks -m "not slow"
#   scripts/verify.sh --fast   tier-1 tests only
#
# Tier 1 is the full default pytest run (the bar every PR must keep green).
# The benchmark tier regenerates the paper's tables at reproduction scale
# and takes a few minutes; the "slow" marker gates the long scaling sweeps.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier 1: full test suite =="
python -m pytest -x -q

if [[ "${1:-}" != "--fast" ]]; then
    echo
    echo '== benchmarks (-m "not slow") =='
    # bench_*.py files must be named explicitly: pytest's default collection
    # pattern (test_*.py) deliberately keeps them out of the tier-1 run.
    python -m pytest benchmarks/bench_*.py -m "not slow" -q
fi

echo
echo "verify: OK"
