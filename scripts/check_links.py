#!/usr/bin/env python
"""Check Markdown links in README.md and docs/ (stdlib only; CI `docs` job).

Validates, for every ``*.md`` file under the repo root and ``docs/``:

* relative links and images resolve to an existing file or directory
  (anchors are stripped; a ``#heading`` anchor into another file checks
  the file only);
* in-page ``#anchor`` links match a heading in the same file (GitHub
  slugification: lowercase, spaces to dashes, punctuation dropped);
* reference-style links (``[text][ref]``) have a matching
  ``[ref]: target`` definition.

External ``http(s)://`` and ``mailto:`` links are *not* fetched — CI must
not flake on third-party outages — but a malformed scheme (``htp://``)
still fails.  Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: markdown files checked: the repo-root pages and everything under docs/
MD_FILES = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("**/*.md"))

_INLINE_LINK = re.compile(r"!?\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFERENCE_USE = re.compile(r"\[([^\]]+)\]\[([^\]]*)\]")
_REFERENCE_DEF = re.compile(r"^\s{0,3}\[([^\]]+)\]:\s*(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_KNOWN_SCHEME = re.compile(r"^(https?|mailto):")
_SCHEME_LIKE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def _strip_code(text: str) -> str:
    """Drop fenced and inline code spans: links inside them are examples."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: inline markup stripped, punctuation dropped."""
    heading = re.sub(r"[*_`]|\[|\]|\(([^)]*)\)", "", heading)
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(text: str) -> set:
    return {_slugify(match.group(1)) for match in _HEADING.finditer(text)}


def check_file(path: Path) -> list:
    raw = path.read_text(encoding="utf-8")
    text = _strip_code(raw)
    errors = []

    targets = [match.group(2) for match in _INLINE_LINK.finditer(text)]
    definitions = {name.lower(): target
                   for name, target in _REFERENCE_DEF.findall(text)}
    targets.extend(definitions.values())
    for match in _REFERENCE_USE.finditer(text):
        reference = (match.group(2) or match.group(1)).lower()
        if reference not in definitions:
            errors.append(f"undefined reference [{reference}]")

    own_anchors = _anchors(raw)
    for target in targets:
        if _KNOWN_SCHEME.match(target):
            continue
        if _SCHEME_LIKE.match(target):
            errors.append(f"unknown URL scheme: {target}")
            continue
        if target.startswith("#"):
            if _slugify(target[1:]) not in own_anchors:
                errors.append(f"broken in-page anchor: {target}")
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"broken relative link: {target}")
    return errors


def main() -> int:
    broken = 0
    for path in MD_FILES:
        for error in check_file(path):
            print(f"{path.relative_to(REPO)}: {error}")
            broken += 1
    if broken:
        print(f"check-links: {broken} broken link(s) "
              f"in {len(MD_FILES)} file(s)")
        return 1
    print(f"check-links: {len(MD_FILES)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
