#!/usr/bin/env python
"""End-to-end cluster smoke: two tenants, two workers, one survives a kill.

The flow CI's ``cluster-smoke`` job runs on every push (and ``scripts/
verify.sh`` runs locally) against the real ``repro serve --workers N``
entry point -- worker subprocesses, shard router, the lot:

1. ``repro train --fast`` + ``repro package`` build the default-tenant
   artifact; a second workdir (seed 7) builds the ``beta`` tenant's;
2. ``repro serve --workers 2 --tenant beta=...`` starts the fleet on an
   ephemeral endpoint (port file handshake), printing one
   ``serve: worker <name> pid <pid>`` line per shard;
3. one binary client opens a stream per tenant through the single front
   door, replays each spec's own seeded-anomaly test split, and asserts
   alarms come back for both tenants;
4. a worker is SIGKILLed mid-stream; pushes must keep succeeding (the
   router respawns the shard and re-opens its sessions) and the fleet
   snapshot must show the restart with both workers live again;
5. the fleet ``/metrics`` page is polled (scrapes are at most one health
   interval stale) until it agrees, then the client asks the router to
   shut the whole fleet down and the script asserts a clean exit.

Run directly::

    PYTHONPATH=src python scripts/cluster_smoke.py [workdir]
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
SERVER_STARTUP_TIMEOUT_S = 60.0
SERVER_EXIT_TIMEOUT_S = 30.0
SCRAPE_SETTLE_TIMEOUT_S = 30.0
BETA_SEED = 7

WORKER_LINE = re.compile(r"serve: worker (\S+) pid (\d+) on")


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing \
        else src + os.pathsep + existing
    return env


def run_cli(*args: str) -> None:
    subprocess.run([sys.executable, "-m", "repro", *args], check=True,
                   cwd=REPO, env=_env())


def _tee_stdout(server: subprocess.Popen, lines: list) -> threading.Thread:
    """Mirror the server's stdout while recording it for pid parsing."""
    def pump() -> None:
        for line in server.stdout:
            print(line, end="", flush=True)
            lines.append(line)

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    return thread


def _worker_pids(lines: list) -> dict:
    pids = {}
    for line in lines:
        match = WORKER_LINE.search(line)
        if match:
            pids[match.group(1)] = int(match.group(2))
    return pids


def _scrape(metrics_port_file: Path) -> str:
    port = int(metrics_port_file.read_text().strip())
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                                timeout=10.0) as response:
        return response.read().decode("utf-8")


def _metric_value(page: str, name: str) -> float:
    for line in page.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    raise AssertionError(f"metric {name} missing from scrape page")


def _await_file(path: Path, server: subprocess.Popen, what: str) -> None:
    deadline = time.monotonic() + SERVER_STARTUP_TIMEOUT_S
    while not path.is_file():
        if server.poll() is not None:
            raise RuntimeError(f"server exited early with code "
                               f"{server.returncode} before {what}")
        if time.monotonic() > deadline:
            raise RuntimeError(f"{what} never appeared")
        time.sleep(0.2)


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.cli import fast_spec
    from repro.serve import BinaryClient

    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path(tempfile.mkdtemp(prefix="repro-cluster-smoke-"))
    beta_workdir = workdir / "tenant-beta"
    print(f"cluster-smoke: workdir {workdir}")
    run_cli("train", "--fast", "--workdir", str(workdir))
    run_cli("package", "--workdir", str(workdir))
    run_cli("train", "--fast", "--seed", str(BETA_SEED),
            "--workdir", str(beta_workdir))
    run_cli("package", "--workdir", str(beta_workdir))
    beta_artifact = beta_workdir / "package"

    default_stream = np.asarray(
        fast_spec().data.build(0).test)[:250]
    beta_stream = np.asarray(
        fast_spec().data.build(BETA_SEED).test)[:250]

    port_file = workdir / "cluster-endpoint"
    metrics_port_file = workdir / "cluster-metrics"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workdir", str(workdir),
         "--workers", "2", "--tenant", f"beta={beta_artifact}",
         "--port", "0", "--port-file", str(port_file),
         "--metrics-port", "0",
         "--metrics-port-file", str(metrics_port_file),
         "--max-delay-ms", "2", "--max-seconds", "180"],
        cwd=REPO, env=_env(), stdout=subprocess.PIPE, text=True,
    )
    lines: list = []
    pump = _tee_stdout(server, lines)
    try:
        _await_file(port_file, server, "router port file")
        port = int(port_file.read_text().strip())
        pids = _worker_pids(lines)
        assert len(pids) == 2, f"expected 2 worker pid lines, saw {pids}"
        print(f"cluster-smoke: router on 127.0.0.1:{port}, workers {pids}")

        with BinaryClient(port=port) as client:
            assert client.ping()["ok"]

            # -- both tenants through the one front door ------------------- #
            opened = client.open("a-1")
            assert opened["threshold"] is not None
            opened = client.open("b-1", tenant="beta")
            assert opened["threshold"] is not None
            client.push_stream("a-1", default_stream)
            client.push_stream("b-1", beta_stream)
            summaries = {sid: client.close_stream(sid)
                         for sid in ("a-1", "b-1")}
            time.sleep(0.3)
            client.ping()       # flush buffered alarm events
            alarmed = {event["stream"] for event in client.alarms}
            assert summaries["a-1"]["samples_pushed"] == len(default_stream)
            assert summaries["b-1"]["samples_pushed"] == len(beta_stream)
            assert "a-1" in alarmed, "no alarms from the default tenant"
            assert "b-1" in alarmed, "no alarms from the beta tenant"
            print(f"cluster-smoke: both tenants alarmed "
                  f"({len(client.alarms)} events)")

            # -- kill a shard mid-stream; serving must continue ------------ #
            victims = _worker_pids(lines)
            victim = victims["w1"]
            crash_streams = {f"c{i}": default_stream for i in range(4)}
            for sid in crash_streams:
                client.open(sid)
            for sid, data in crash_streams.items():
                client.push_stream(sid, data[:100])
            os.kill(victim, signal.SIGKILL)
            print(f"cluster-smoke: SIGKILLed worker w1 (pid {victim})")
            # these pushes either route to the survivor or block in the
            # router until w1's replacement answers -- never an error
            for sid, data in crash_streams.items():
                client.push_stream(sid, data[100:])
            summaries = {sid: client.close_stream(sid)
                         for sid in crash_streams}
            for sid, summary in summaries.items():
                assert summary["samples_pushed"] in (250, 150), \
                    (sid, summary)
            snapshot = client.snapshot()
            assert snapshot["cluster"]["worker_restarts"] >= 1
            assert snapshot["cluster"]["workers_live"] == 2
            print(f"cluster-smoke: worker respawned, fleet of "
                  f"{snapshot['cluster']['workers_live']} serving again")

            # -- fleet metrics page (polled: scrapes lag one interval) ----- #
            _await_file(metrics_port_file, server, "metrics port file")
            deadline = time.monotonic() + SCRAPE_SETTLE_TIMEOUT_S
            while True:
                page = _scrape(metrics_port_file)
                try:
                    assert _metric_value(
                        page, "repro_cluster_workers_live") == 2
                    assert _metric_value(
                        page, "repro_cluster_worker_restarts_total") >= 1
                    assert _metric_value(
                        page, "repro_service_samples_pushed_total") > 0
                    break
                except AssertionError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.5)
            print("cluster-smoke: fleet metrics scrape reconciles")

            assert client.shutdown()["ok"]

        code = server.wait(timeout=SERVER_EXIT_TIMEOUT_S)
        assert code == 0, f"server exited with {code}"
        print("cluster-smoke: clean shutdown, OK")
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                server.kill()
        pump.join(5.0)
    return 0


if __name__ == "__main__":
    sys.exit(main())
