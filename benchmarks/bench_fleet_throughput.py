"""Experiment F1 -- fleet serving throughput: samples/sec vs stream count.

Compares the batched :class:`repro.edge.MultiStreamRuntime` against running
the sequential :class:`repro.edge.StreamingRuntime` once per stream, for a
growing number of concurrent streams.  On small edge-sized models the
per-call overhead (Python dispatch, buffer staging) dominates the
arithmetic, so batching one window per stream into a single
``score_windows_batch`` call is where multi-tenant throughput comes from.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_throughput.py -q -s
"""

import time

import pytest

from repro.data import StreamReader
from repro.edge import MultiStreamRuntime, StreamingRuntime

STREAM_COUNTS = (1, 2, 4, 8, 16)
STREAM_SAMPLES = 400
TIMING_REPEATS = 3


def _make_readers(fleet_stream_factory, n_streams):
    return [
        StreamReader(fleet_stream_factory(STREAM_SAMPLES, seed=100 + index))
        for index in range(n_streams)
    ]


def _best_of(repeats, run):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fleet_throughput_scaling(benchmark, fleet_varade, fleet_stream_factory):
    detector = fleet_varade
    rows = []
    speedups = {}
    for n_streams in STREAM_COUNTS:
        readers = _make_readers(fleet_stream_factory, n_streams)

        def run_sequential():
            # Pin the incremental lane off: this benchmark isolates what
            # cross-stream micro-batching buys over one-window batch calls
            # (bench_incremental_scoring.py gates the incremental lane).
            return [StreamingRuntime(detector, incremental=False).run(reader)
                    for reader in readers]

        def run_fleet():
            return MultiStreamRuntime(detector).run(readers)

        seq_time, seq_results = _best_of(TIMING_REPEATS, run_sequential)
        fleet_time, fleet_result = _best_of(TIMING_REPEATS, run_fleet)

        scored = sum(result.samples_scored for result in seq_results)
        assert scored == fleet_result.stats.samples_scored
        seq_sps = scored / seq_time
        fleet_sps = scored / fleet_time
        speedups[n_streams] = fleet_sps / seq_sps
        rows.append((n_streams, scored, seq_sps, fleet_sps, fleet_sps / seq_sps,
                     fleet_result.stats.mean_batch_size))

    print()
    print("fleet throughput -- VARADE, window "
          f"{detector.window}, {STREAM_SAMPLES} samples/stream")
    print(f"{'streams':>8} {'scored':>8} {'seq sps':>12} {'fleet sps':>12} "
          f"{'speedup':>8} {'mean batch':>11}")
    for n_streams, scored, seq_sps, fleet_sps, speedup, mean_batch in rows:
        print(f"{n_streams:>8} {scored:>8} {seq_sps:>12.0f} {fleet_sps:>12.0f} "
              f"{speedup:>7.2f}x {mean_batch:>11.2f}")

    # Record the batched engine at the acceptance operating point.
    readers_8 = _make_readers(fleet_stream_factory, 8)
    benchmark(lambda: MultiStreamRuntime(detector).run(readers_8))

    # Acceptance: >= 3x the sequential per-stream throughput at 8 streams.
    assert speedups[8] >= 3.0, f"8-stream fleet speedup only {speedups[8]:.2f}x"
    # Amortisation should keep improving as the fleet grows (with slack, since
    # this compares two noise-affected timing ratios).
    assert speedups[16] >= 0.8 * speedups[2], speedups


@pytest.mark.slow
def test_fleet_throughput_wide(fleet_varade, fleet_stream_factory):
    """Wider sweep (up to 64 streams) for the scaling curve; slow tier only."""
    detector = fleet_varade
    previous_sps = 0.0
    for n_streams in (16, 32, 64):
        readers = _make_readers(fleet_stream_factory, n_streams)
        fleet_time, result = _best_of(2, lambda: MultiStreamRuntime(detector).run(readers))
        sps = result.stats.samples_scored / fleet_time
        print(f"{n_streams} streams: {sps:,.0f} samples/sec")
        assert sps > 0.5 * previous_sps  # throughput must not collapse
        previous_sps = sps
