"""Experiment E1 -- paper Table 1: the 86-channel stream schema.

Regenerates the channel description table from the simulator's schema and
checks it against the simulated stream, then benchmarks how fast the
simulator produces the 86-channel data (samples generated per second).
"""

import numpy as np

from repro.data import build_default_schema
from repro.eval.reporting import PAPER_TABLE2  # noqa: F401  (import keeps reporting warm)
from repro.robot import RobotCellConfig, RobotCellSimulator


def test_table1_channel_schema(benchmark):
    schema = build_default_schema()

    def render():
        return schema.as_table()

    table = benchmark(render)
    counts = schema.counts()

    print()
    print("Table 1 -- Channels description (reproduced)")
    print("\n".join(table[:16]))
    print(f"... ({len(table) - 18} joint rows elided) ...")
    print("\n".join(table[-8:]))
    print(f"channel counts: {counts}")
    assert counts["total"] == 86
    assert counts["joint"] == 7 * 11
    assert counts["power"] == 8


def test_table1_schema_matches_simulated_stream(benchmark):
    simulator = RobotCellSimulator(RobotCellConfig(sample_rate=50.0, num_actions=5), seed=0)

    def record():
        return simulator.record_normal(duration_s=10.0)

    recording = benchmark(record)
    schema = build_default_schema()
    assert recording.channel_names == schema.names
    assert recording.data.shape[1] == len(schema)
    rate = recording.n_samples / max(recording.duration_s, 1e-9)
    print(f"\nsimulated {recording.n_samples} samples x {recording.n_channels} channels "
          f"({rate:.0f} samples/s of stream time); action ids observed: "
          f"{sorted(set(np.unique(recording.channel('action_id')).astype(int)))}")
