"""Experiment F2 -- incremental O(1)-per-sample scoring vs the batch fastpath.

Single-stream serving used to re-run the full ``FastForwardPlan`` forward for
every arriving sample -- O(window) work per sample at window 64.  The
incremental plans (:class:`repro.nn.IncrementalForwardPlan` and its int8
twin) compute only each layer's newest activation column per sample, and
their chunked ``push_many`` amortises the per-push Python dispatch on replay
and micro-batched ingestion.  Both are bit-identical to the batch plan (the
parity suites in ``tests/test_nn/test_incremental.py`` and
``tests/test_serve/test_incremental_serving.py`` enforce exact equality);
this benchmark gates the speed claim: **>= 5x single-stream samples/sec over
the per-window batch path at window 64** on the chunked path.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental_scoring.py -q -s
"""

import time

import numpy as np
import pytest

from repro.pipeline import DeploymentSpec, DetectorSpec, Pipeline

N_CHANNELS = 6
WINDOW = 64
STREAM_SAMPLES = 2_000
CHUNK = 64
TIMING_REPEATS = 3


@pytest.fixture(scope="module")
def incremental_varade(fleet_stream_factory):
    """A trained VARADE at the acceptance operating point (window 64)."""
    spec = DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": N_CHANNELS, "window": WINDOW,
                    "base_feature_maps": 8},
            training={"learning_rate": 3e-3, "epochs": 2,
                      "mean_warmup_epochs": 1, "variance_finetune_epochs": 1,
                      "max_train_windows": 200},
        ),
        seed=0,
    )
    return Pipeline.from_spec(spec).fit(
        fleet_stream_factory(600, seed=3)).detector


@pytest.fixture(scope="module")
def bench_stream(fleet_stream_factory):
    return fleet_stream_factory(STREAM_SAMPLES, seed=11)


def _best_of(repeats, run):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def _batch_per_window(detector, stream):
    """The pre-incremental hot path: one-row batch call per sample."""
    scores = np.full(stream.shape[0], np.nan)
    window = detector.window
    for t in range(window - 1, stream.shape[0]):
        scores[t] = detector.score_windows_batch(
            stream[t - window + 1:t + 1][None, ...], stream[t][None, :])[0]
    return scores


def _push_single(detector, stream):
    scorer = detector.incremental_scorer()
    scores = np.full(stream.shape[0], np.nan)
    for t in range(stream.shape[0]):
        score = scorer.push(stream[t])
        if score is not None:
            scores[t] = score
    return scores


def _push_chunked(detector, stream):
    scorer = detector.incremental_scorer()
    scores = np.empty(stream.shape[0])
    for offset in range(0, stream.shape[0], CHUNK):
        block = stream[offset:offset + CHUNK]
        scores[offset:offset + block.shape[0]] = scorer.push_many(block)
    return scores


def _measure(detector, stream, label, rows):
    scored = stream.shape[0] - detector.window + 1
    batch_time, batch_scores = _best_of(
        TIMING_REPEATS, lambda: _batch_per_window(detector, stream))
    single_time, single_scores = _best_of(
        TIMING_REPEATS, lambda: _push_single(detector, stream))
    chunk_time, chunk_scores = _best_of(
        TIMING_REPEATS, lambda: _push_chunked(detector, stream))
    # The speedup claim is only meaningful because the bits are identical.
    np.testing.assert_array_equal(single_scores, batch_scores)
    np.testing.assert_array_equal(chunk_scores, batch_scores)
    batch_sps = scored / batch_time
    single_sps = scored / single_time
    chunk_sps = scored / chunk_time
    rows.append((label, batch_sps, single_sps, single_sps / batch_sps,
                 chunk_sps, chunk_sps / batch_sps))
    return single_sps / batch_sps, chunk_sps / batch_sps


def test_incremental_scoring_speedup(benchmark, incremental_varade,
                                     bench_stream):
    detector = incremental_varade
    assert detector.incremental_scorer() is not None
    rows = []
    _, float_chunk_speedup = _measure(detector, bench_stream, "float64", rows)
    int8 = detector.quantize(bench_stream[:600])
    assert int8.incremental_scorer() is not None
    _, int8_chunk_speedup = _measure(int8, bench_stream, "int8", rows)

    print()
    print(f"incremental scoring -- VARADE, window {WINDOW}, "
          f"{N_CHANNELS} channels, {STREAM_SAMPLES} samples, chunk {CHUNK}")
    print(f"{'plan':>8} {'batch sps':>12} {'push sps':>12} {'speedup':>8} "
          f"{'chunked sps':>12} {'speedup':>8}")
    for label, batch_sps, single_sps, single_x, chunk_sps, chunk_x in rows:
        print(f"{label:>8} {batch_sps:>12,.0f} {single_sps:>12,.0f} "
              f"{single_x:>7.2f}x {chunk_sps:>12,.0f} {chunk_x:>7.2f}x")

    # Record the chunked float path at the acceptance operating point.
    benchmark(lambda: _push_chunked(detector, bench_stream))

    # Acceptance: >= 5x the per-window batch path at window 64 (chunked).
    assert float_chunk_speedup >= 5.0, \
        f"float chunked speedup only {float_chunk_speedup:.2f}x"
    assert int8_chunk_speedup >= 3.0, \
        f"int8 chunked speedup only {int8_chunk_speedup:.2f}x"
