"""Experiment Q1 -- int8 post-training quantization: throughput and drift.

Measures what the edge deployment subsystem buys and what it costs:

* **Throughput** -- batched ``score_windows_batch`` wall-clock of a
  float VARADE (the :class:`repro.nn.FastForwardPlan` float64 fast path)
  versus its int8 drop-in (:class:`repro.nn.QuantizedForwardPlan`) at equal
  batch sizes.  Acceptance: >= 1.5x at the largest batch.
* **Accuracy** -- AUC-ROC of float vs int8 on the labelled synthetic anomaly
  benchmark (:func:`repro.data.build_synthetic_anomaly_dataset`), plus the
  in-distribution score drift.  Acceptance: AUC within 2 points.
* **Edge estimates** -- the analytical Jetson metrics for the float and int8
  cost profiles side by side.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_quantized_inference.py -q -s
"""

import time

import numpy as np
import pytest

from repro.core import VaradeConfig, VaradeDetector
from repro.data import build_synthetic_anomaly_dataset
from repro.data.windowing import sliding_windows
from repro.edge import DEVICES, EdgeEstimator
from repro.eval import roc_auc_score
from repro.pipeline import (DeploymentSpec, DetectorSpec, Pipeline,
                            QuantizationSpec)

BATCH_SIZES = (64, 256, 512)
TIMING_REPEATS = 30
REQUIRED_SPEEDUP = 1.5
AUC_TOLERANCE = 0.02


def _best_of(repeats, run):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _training_stream(n_samples, n_channels, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / 50.0
    return np.stack([
        np.sin(2 * np.pi * (0.4 + 0.1 * c) * t + c) + 0.05 * rng.normal(size=n_samples)
        for c in range(n_channels)
    ], axis=1)


@pytest.fixture(scope="module")
def throughput_detectors():
    """A GEMM-dominated VARADE (8 channels, window 64, 32+ feature maps).

    The weights only need to be realistic enough for representative
    activation ranges, so training is minimal.
    """
    n_channels, window = 8, 64
    stream = _training_stream(1200, n_channels)
    spec = DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": n_channels, "window": window,
                    "base_feature_maps": 48},
            training={"learning_rate": 3e-3, "epochs": 1, "mean_warmup_epochs": 1,
                      "variance_finetune_epochs": 1, "max_train_windows": 100},
        ),
        quantization=QuantizationSpec(),
        seed=0,
    )
    pipeline = Pipeline.from_spec(spec).fit(stream).quantize()
    return pipeline.detector, pipeline.quantized, stream


def test_quantized_batched_throughput(benchmark, throughput_detectors):
    detector, quantized, stream = throughput_detectors
    window = detector.window
    windows_all = sliding_windows(stream, window, stride=1)
    rows = []
    speedups = {}
    for batch in BATCH_SIZES:
        windows = np.ascontiguousarray(windows_all[:batch])
        targets = stream[window - 1:window - 1 + batch]
        # Warm both plans' buffers before timing.
        float_scores = detector.score_windows_batch(windows, targets)
        int8_scores = quantized.score_windows_batch(windows, targets)
        float_s = _best_of(TIMING_REPEATS,
                           lambda: detector.score_windows_batch(windows, targets))
        int8_s = _best_of(TIMING_REPEATS,
                          lambda: quantized.score_windows_batch(windows, targets))
        drift = float(np.max(np.abs(int8_scores - float_scores)
                             / np.abs(float_scores)))
        speedups[batch] = float_s / int8_s
        rows.append((batch, batch / float_s, batch / int8_s, float_s / int8_s, drift))

    print()
    print(f"quantized inference -- VARADE {detector.config.n_channels} channels, "
          f"window {detector.window}, "
          f"{detector.network.num_parameters():,} parameters "
          f"({detector.inference_cost().parameter_bytes / 1e3:.0f} KB float, "
          f"{quantized.inference_cost().parameter_bytes / 1e3:.0f} KB int8)")
    print(f"{'batch':>6} {'float sps':>12} {'int8 sps':>12} {'speedup':>8} "
          f"{'max drift':>10}")
    for batch, float_sps, int8_sps, speedup, drift in rows:
        print(f"{batch:>6} {float_sps:>12.0f} {int8_sps:>12.0f} {speedup:>7.2f}x "
              f"{drift:>10.4f}")

    # Record the int8 engine at the acceptance operating point.
    windows = np.ascontiguousarray(windows_all[:BATCH_SIZES[-1]])
    targets = stream[window - 1:window - 1 + BATCH_SIZES[-1]]
    benchmark(lambda: quantized.score_windows_batch(windows, targets))

    top_batch = BATCH_SIZES[-1]
    assert speedups[top_batch] >= REQUIRED_SPEEDUP, (
        f"int8 speedup at batch {top_batch} is only {speedups[top_batch]:.2f}x "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


def test_quantized_accuracy_on_synthetic_benchmark():
    """Int8 AUC within 2 points of float on the labelled synthetic benchmark."""
    dataset = build_synthetic_anomaly_dataset(n_channels=5, seed=7)
    spec = DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": 5, "window": 16, "base_feature_maps": 4},
            training={"learning_rate": 3e-3, "epochs": 10, "mean_warmup_epochs": 4,
                      "variance_finetune_epochs": 15, "max_train_windows": 400},
        ),
        quantization=QuantizationSpec(),
        seed=0,
    )
    pipeline = Pipeline.from_spec(spec).fit(dataset.train).quantize()
    detector, quantized = pipeline.detector, pipeline.quantized

    float_scores, labels = detector.score_stream(dataset.test).aligned(dataset.test_labels)
    int8_scores, _ = quantized.score_stream(dataset.test).aligned(dataset.test_labels)
    float_auc = roc_auc_score(float_scores, labels)
    int8_auc = roc_auc_score(int8_scores, labels)

    clean_float = detector.score_stream(dataset.train).valid_scores()
    clean_int8 = quantized.score_stream(dataset.train).valid_scores()
    clean_drift = np.abs(clean_int8 - clean_float) / np.abs(clean_float)

    print()
    print("quantized accuracy -- synthetic anomaly benchmark "
          f"({dataset.anomaly_fraction:.1%} anomalous)")
    print(f"  float AUC-ROC: {float_auc:.4f}")
    print(f"  int8  AUC-ROC: {int8_auc:.4f}   (|diff| = {abs(float_auc - int8_auc):.4f})")
    print(f"  in-distribution score drift: max {clean_drift.max():.4f}, "
          f"mean {clean_drift.mean():.4f}")

    assert float_auc > 0.8, f"float VARADE failed to detect (AUC {float_auc:.3f})"
    assert abs(float_auc - int8_auc) <= AUC_TOLERANCE, (
        f"int8 AUC {int8_auc:.4f} drifts more than {AUC_TOLERANCE} from float "
        f"{float_auc:.4f}"
    )


def test_quantized_edge_estimates():
    """Side-by-side Jetson estimates for float vs int8 at paper scale.

    The edge-sized reproduction models are launch-overhead bound, where
    quantization cannot help; the paper-scale VARADE (window 512, 128-1024
    feature maps) is compute/memory bound, which is where the device's int8
    multipliers and the 4x smaller weights show up.
    """
    from dataclasses import replace

    paper = VaradeDetector(VaradeConfig.paper(86))
    float_cost = paper.inference_cost()
    # Analytical int8 profile of the same network: same MAC count, int8
    # weights/activations, integer dot-product units.
    int8_cost = replace(float_cost,
                        parameter_bytes=float_cost.parameter_bytes / 4.0,
                        activation_bytes=float_cost.activation_bytes / 4.0,
                        compute_dtype="int8")
    print()
    print("estimated edge metrics -- paper-scale VARADE, float vs int8")
    print(f"{'board':>18} {'dtype':>8} {'hz':>9} {'power W':>8} {'ram MB':>8}")
    for name, device in DEVICES.items():
        estimator = EdgeEstimator(device)
        for label, cost in (("float32", float_cost), ("int8", int8_cost)):
            metrics = estimator.estimate(cost, "VARADE")
            print(f"{name:>18} {label:>8} {metrics.inference_frequency_hz:>9.1f} "
                  f"{metrics.power_w:>8.2f} {metrics.ram_mb:>8.0f}")
        float_metrics = estimator.estimate(float_cost, "f")
        int8_metrics = estimator.estimate(int8_cost, "q")
        assert int8_metrics.inference_frequency_hz > float_metrics.inference_frequency_hz, \
            f"{name}: int8 estimate not faster than float at paper scale"
        assert int8_metrics.ram_mb < float_metrics.ram_mb
