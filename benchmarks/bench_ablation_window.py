"""Ablation A2 -- context window / depth coupling and KL weight sweep.

The number of convolutional layers is tied to the window (N = log2 T - 1)
and the KL weight calibrates the variance head; this benchmark sweeps both
and reports AUC-ROC and model size for each configuration.
"""

from repro.eval import run_kl_weight_sweep, run_window_sweep


def test_ablation_window_sweep(benchmark, benchmark_dataset):
    def run():
        return run_window_sweep(benchmark_dataset, windows=(16, 32, 64), feature_maps=16,
                                epochs=10, max_windows=600, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation A2a -- context window (and network depth)")
    for result in results:
        print(f"  {result.label:<28} AUC-ROC = {result.auc_roc:.3f} "
              f"({result.parameters:,} parameters)")
    assert len(results) == 3
    # Deeper/wider windows mean more parameters.
    params = [r.parameters for r in results]
    assert params == sorted(params)


def test_ablation_kl_weight_sweep(benchmark, benchmark_dataset):
    def run():
        return run_kl_weight_sweep(benchmark_dataset, kl_weights=(0.0, 0.1, 1.0), window=32,
                                   feature_maps=16, epochs=10, max_windows=600, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation A2b -- KL weight (lambda in Eq. 7)")
    for result in results:
        print(f"  {result.label:<28} AUC-ROC = {result.auc_roc:.3f}")
    assert len(results) == 3
    for result in results:
        assert 0.0 <= result.auc_roc <= 1.0
