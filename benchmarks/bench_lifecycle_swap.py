"""Experiment L1 -- zero-downtime promotion under load, and the canary tax.

A fleet of 32 unaligned bursty streams is served while the model is
hot-swapped mid-run (the ``promote`` primitive), and separately while a
canary shadow-scores a candidate on a slice of the traffic.

Acceptance (the PR gate):

* the hot swap drops no sample: every scorable window of every stream is
  scored, half under the old model and half under its replacement;
* p99 enqueue-to-score latency stays within the 25 ms micro-batch budget
  across the swap (the drain inside ``swap_detector`` must not stall the
  fleet);
* post-swap scores are bit-identical to a fresh service started on the
  promoted detector -- the ``export_state``/``from_state`` migration is
  exact, not approximate;
* an attached canary costs the non-shadowed sessions at most 5 % of
  throughput (best-of-N interleaved timing) and perturbs no score bit.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_lifecycle_swap.py -q -s
"""

import asyncio
import time

import numpy as np
import pytest

from repro.lifecycle import CanaryController, GoldenBaseline
from repro.lifecycle.baseline import latency_histogram, score_histogram
from repro.pipeline import DeploymentSpec, DetectorSpec, Pipeline
from repro.serve import AnomalyService, ServiceConfig

N_STREAMS = 32
MIN_SAMPLES, MAX_SAMPLES = 200, 300
MAX_BATCH = 32
MAX_DELAY_MS = 25.0
MAX_QUEUE = 8
CANARY_TIMING_REPEATS = 3
CANARY_OVERHEAD_BUDGET = 0.05
CANARY_NOISE_FLOOR_S = 0.05
CANDIDATE_SEED = 7

FLEET_CHANNELS = 6      # matches conftest's fleet stream factory


@pytest.fixture(scope="module")
def fleet_varade_b(fleet_stream_factory):
    """The candidate model: same architecture, independently trained."""
    spec = DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": FLEET_CHANNELS, "window": 32,
                    "base_feature_maps": 8},
            training={"learning_rate": 3e-3, "epochs": 3,
                      "mean_warmup_epochs": 1,
                      "variance_finetune_epochs": 2,
                      "max_train_windows": 300},
        ),
        seed=CANDIDATE_SEED,
    )
    pipeline = Pipeline.from_spec(spec)
    return pipeline.fit(
        fleet_stream_factory(500, seed=CANDIDATE_SEED)).detector


def _stream_lengths(seed=0):
    rng = np.random.default_rng(seed)
    return [int(rng.integers(MIN_SAMPLES, MAX_SAMPLES + 1))
            for _ in range(N_STREAMS)]


def _make_streams(fleet_stream_factory, lengths, stream_ids):
    return {stream_id: fleet_stream_factory(length, seed=300 + index)
            for index, (stream_id, length)
            in enumerate(zip(stream_ids, lengths))}


def _unaligned_schedule(lengths, stream_ids, seed=1):
    """Bursty interleave over (stream id, sample index), order preserved."""
    rng = np.random.default_rng(seed)
    cursors = {stream_id: 0 for stream_id in stream_ids}
    remaining = dict(zip(stream_ids, lengths))
    schedule = []
    while any(remaining.values()):
        live = [stream_id for stream_id, left in remaining.items() if left]
        stream_id = live[int(rng.integers(len(live)))]
        for _ in range(int(rng.integers(1, 5))):
            if not remaining[stream_id]:
                break
            schedule.append((stream_id, cursors[stream_id]))
            cursors[stream_id] += 1
            remaining[stream_id] -= 1
    return schedule


def _run_scenario(service, scenario):
    """Start ``service``, run ``scenario``, stop (draining everything)."""
    async def main():
        await service.start()
        await scenario(service)
        await service.stop()

    asyncio.run(main())


def test_hot_swap_under_load(fleet_varade, fleet_varade_b,
                             fleet_stream_factory):
    lengths = _stream_lengths()
    stream_ids = [f"s{index}" for index in range(N_STREAMS)]
    streams = _make_streams(fleet_stream_factory, lengths, stream_ids)
    schedule = _unaligned_schedule(lengths, stream_ids)
    halfway = len(schedule) // 2
    config = ServiceConfig(max_batch=MAX_BATCH, max_delay_ms=MAX_DELAY_MS,
                           max_queue=MAX_QUEUE, backpressure="block",
                           record_sessions=True)
    window = fleet_varade.window
    # Samples each stream had delivered when the swap landed: windows
    # ending at or past this point were scored by the new model.
    splits = {stream_id: sum(1 for sid, _ in schedule[:halfway]
                             if sid == stream_id)
              for stream_id in stream_ids}

    async def swap_mid_run(service):
        for stream_id, index in schedule[:halfway]:
            await service.push(stream_id, streams[stream_id][index])
        migrated = await service.swap_detector(fleet_varade_b,
                                               fingerprint="candidate")
        assert migrated == N_STREAMS
        for stream_id, index in schedule[halfway:]:
            await service.push(stream_id, streams[stream_id][index])

    async def fresh_on_candidate(service):
        for stream_id, index in schedule:
            await service.push(stream_id, streams[stream_id][index])

    service = AnomalyService(fleet_varade, config=config,
                             fingerprint="incumbent")
    start = time.perf_counter()
    _run_scenario(service, swap_mid_run)
    elapsed = time.perf_counter() - start
    stats = service.stats()
    swapped_sessions = service.sessions

    fresh_service = AnomalyService(fleet_varade_b, config=config)
    _run_scenario(fresh_service, fresh_on_candidate)
    fresh_sessions = fresh_service.sessions

    scorable = sum(length - window + 1 for length in lengths)
    delay = stats.queue_delay_histogram
    print()
    print(f"hot swap under load -- {N_STREAMS} unaligned streams, "
          f"{len(schedule)} samples ({scorable} scorable), swap at "
          f"sample {halfway}")
    print(f"  scored {stats.samples_scored}, dropped "
          f"{stats.samples_dropped}, wall {elapsed:.2f}s "
          f"({stats.samples_scored / elapsed:.0f} samples/s)")
    print(f"  enqueue-to-score: p50 {delay.p50 * 1e3:.2f}ms  "
          f"p99 {delay.p99 * 1e3:.2f}ms  max {delay.max * 1e3:.2f}ms")

    # -- acceptance ------------------------------------------------------- #
    # zero drops across the swap: every scorable window was scored
    assert stats.samples_dropped == 0
    assert stats.samples_scored == scorable
    assert sum(session.samples_scored
               for session in swapped_sessions.values()) == scorable
    # p99 enqueue-to-score latency inside the micro-batch budget
    assert delay.p99 <= MAX_DELAY_MS / 1000.0, \
        f"p99 {delay.p99 * 1e3:.2f}ms over the {MAX_DELAY_MS}ms budget"
    # post-swap scores bit-identical to a fresh service on the candidate
    compared = 0
    for stream_id in stream_ids:
        swapped_scores = swapped_sessions[stream_id].result().scores
        fresh_scores = fresh_sessions[stream_id].result().scores
        assert swapped_scores.shape == fresh_scores.shape
        # result() covers every pushed sample (NaN through warmup), so
        # scores[j] is the window ending at sample j: the post-swap tail
        # starts exactly at the stream's swap-time cursor.
        tail = splits[stream_id]
        np.testing.assert_allclose(swapped_scores[tail:],
                                   fresh_scores[tail:],
                                   rtol=0.0, atol=0.0, equal_nan=True)
        compared += swapped_scores[tail:].size
    assert compared > scorable // 4, "swap landed too late to exercise"
    print(f"  post-swap parity: {compared} scores bit-identical to a "
          f"fresh service on the candidate")


def test_canary_overhead_on_non_shadowed_sessions(fleet_varade,
                                                  fleet_varade_b,
                                                  fleet_stream_factory):
    """The shadow lane must be invisible to streams outside the canary.

    Stream ids are chosen (deterministic membership hash) so that *none*
    fall inside a 25 % canary: the timed difference is the pure hot-path
    tax of the attached controller -- the per-flush membership scan --
    not candidate scoring.  Interleaved best-of-N timing with a small
    absolute floor absorbs machine noise, mirroring the observability
    benchmark's method.
    """
    probe = CanaryController(
        fleet_varade_b, baseline=_empty_baseline(), fraction=0.25)
    stream_ids = []
    candidate_id = 0
    while len(stream_ids) < N_STREAMS:
        stream_id = f"fleet-{candidate_id}"
        if not probe.is_shadowed(stream_id):
            stream_ids.append(stream_id)
        candidate_id += 1

    lengths = _stream_lengths()
    streams = _make_streams(fleet_stream_factory, lengths, stream_ids)
    schedule = _unaligned_schedule(lengths, stream_ids)
    config = ServiceConfig(max_batch=MAX_BATCH, max_delay_ms=MAX_DELAY_MS,
                           max_queue=MAX_QUEUE, backpressure="block",
                           record_sessions=True)

    def run(with_canary):
        service = AnomalyService(fleet_varade, config=config)
        controller = CanaryController(
            fleet_varade_b, baseline=_empty_baseline(), fraction=0.25)

        async def scenario(svc):
            if with_canary:
                svc.attach_canary(controller)
            for stream_id, index in schedule:
                await svc.push(stream_id, streams[stream_id][index])

        _run_scenario(service, scenario)
        return service, controller

    best = {False: float("inf"), True: float("inf")}
    runs = {}
    for _ in range(CANARY_TIMING_REPEATS):
        for with_canary in (False, True):
            start = time.perf_counter()
            runs[with_canary] = run(with_canary)
            best[with_canary] = min(best[with_canary],
                                    time.perf_counter() - start)

    overhead = best[True] / best[False] - 1.0
    print()
    print(f"canary tax -- {len(schedule)} samples, none shadowed, "
          f"best of {CANARY_TIMING_REPEATS}: off {best[False]:.3f}s, "
          f"on {best[True]:.3f}s ({overhead * 100.0:+.1f}%)")

    # -- acceptance ------------------------------------------------------- #
    # the canary really was attached, and really shadowed nothing
    controller = runs[True][1]
    assert controller.samples == 0
    assert controller.errors == 0
    # bit-identical scores with the canary attached
    off_sessions = dict(runs[False][0].sessions)
    on_sessions = dict(runs[True][0].sessions)
    for stream_id in stream_ids:
        np.testing.assert_allclose(
            on_sessions[stream_id].result().scores,
            off_sessions[stream_id].result().scores,
            rtol=0.0, atol=0.0, equal_nan=True)
    # within the overhead budget
    assert best[True] <= best[False] * (1.0 + CANARY_OVERHEAD_BUDGET) \
        + CANARY_NOISE_FLOOR_S, \
        f"canary costs {overhead * 100.0:.1f}% " \
        f"(budget {CANARY_OVERHEAD_BUDGET * 100.0:.0f}%)"


def _empty_baseline():
    return GoldenBaseline(
        fingerprint="bench", detector="VARADE", streams=0,
        samples_scored=0, alarms=0,
        score_histogram=score_histogram(),
        latency_histogram=latency_histogram(),
        created_unix=0.0,
    )
