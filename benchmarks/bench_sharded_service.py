"""Experiment S2 -- sharded serving: aggregate throughput vs worker count.

64 streams deliver bursty, unaligned sample blocks through one shard-router
endpoint (``repro.cluster``); the router consistent-hash-partitions them
across N worker subprocesses, each a full serving stack scoring on the
non-incremental lane (so per-sample compute is real work that a second
core can actually absorb -- the O(1) incremental lane would make every
fleet size wire-bound and identical).

Acceptance (the PR gate):

* >= 2.5x aggregate samples/sec at 4 workers vs 1 worker, on hosts with
  at least 4 CPUs (skipped below that -- a 1-core box serialises the
  worker processes and measures the scheduler, not the architecture);
* alarms bit-identical between the 1-worker and 2-worker fleets on every
  host (sharding must be invisible in the scores -- the cheap standing
  re-check of ``tests/test_cluster/test_cluster_parity.py``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_service.py -q -s
"""

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cluster import ClusterHarness, WorkerConfig
from repro.pipeline import (CalibrationSpec, DataSpec, DeploymentSpec,
                            DetectorSpec, Pipeline, ServiceSpec)
from repro.serve import BinaryClient

N_CHANNELS = 3
WINDOW = 16
N_STREAMS = 64
MIN_SAMPLES, MAX_SAMPLES = 120, 200
N_DRIVERS = 8          #: concurrent client connections into the router
SPEEDUP_GATE = 2.5
REQUIRED_CPUS = 4


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:      # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A mid-weight VARADE artifact: heavy enough that scoring dominates
    the router's per-frame proxy cost."""
    spec = DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": N_CHANNELS, "window": WINDOW,
                    "base_feature_maps": 16},
            training={"epochs": 2, "mean_warmup_epochs": 1,
                      "variance_finetune_epochs": 1, "learning_rate": 3e-3,
                      "max_train_windows": 200},
        ),
        data=DataSpec(source="synthetic",
                      params={"n_channels": N_CHANNELS, "train_samples": 400,
                              "test_samples": 100}),
        calibration=CalibrationSpec(method="quantile", quantile=0.95),
        service=ServiceSpec(max_batch=16, max_delay_ms=5.0),
        seed=0,
    )
    out = tmp_path_factory.mktemp("sharded-bench") / "artifact"
    pipeline = Pipeline.from_spec(spec)
    pipeline.fit(spec.data.build(spec.seed).train).calibrate()
    pipeline.package(out)
    return out


@pytest.fixture(scope="module")
def streams():
    rng = np.random.default_rng(0)
    return {f"s{i}": rng.normal(
                size=(int(rng.integers(MIN_SAMPLES, MAX_SAMPLES + 1)),
                      N_CHANNELS)).astype("float32")
            for i in range(N_STREAMS)}


def _burst_schedule(lengths, seed):
    """Bursty unaligned interleave: (stream, start, stop) blocks of 1-4
    samples, per-stream order preserved -- the fleet arrival pattern."""
    rng = np.random.default_rng(seed)
    cursors = {sid: 0 for sid in lengths}
    schedule = []
    live = [sid for sid, n in lengths.items() if n]
    while live:
        sid = live[int(rng.integers(len(live)))]
        start = cursors[sid]
        stop = min(start + int(rng.integers(1, 5)), lengths[sid])
        schedule.append((sid, start, stop))
        cursors[sid] = stop
        if stop == lengths[sid]:
            live.remove(sid)
    return schedule


def _drive(port, streams, schedule, alarms, lock):
    with BinaryClient(port=port) as client:
        for sid in streams:
            client.open(sid)
        for sid, start, stop in schedule:
            client.push(sid, streams[sid][start:stop])
        summaries = {sid: client.close_stream(sid) for sid in streams}
        time.sleep(0.2)
        client.ping()           # flush buffered alarm events
        with lock:
            for event in client.alarms:
                alarms[event["stream"]].append(
                    (event["index"], event["score"]))
    return summaries


def _run_fleet(artifact, n_workers, streams):
    """Total wall time for 64 bursty streams through an n-worker cluster,
    driven by N_DRIVERS concurrent client connections."""
    configs = [WorkerConfig(name=f"w{i}", artifacts={"default": artifact},
                            incremental=False)
               for i in range(n_workers)]
    stream_ids = sorted(streams)
    chunks = [stream_ids[i::N_DRIVERS] for i in range(N_DRIVERS)]
    alarms = {sid: [] for sid in streams}
    lock = threading.Lock()
    with ClusterHarness(configs) as cluster:
        with BinaryClient(port=cluster.port) as warm:
            warm.ping()         # connection + trunk warm-up off the clock
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_DRIVERS) as pool:
            futures = [
                pool.submit(
                    _drive, cluster.port,
                    {sid: streams[sid] for sid in chunk},
                    _burst_schedule({sid: len(streams[sid])
                                     for sid in chunk}, seed=index),
                    alarms, lock)
                for index, chunk in enumerate(chunks)]
            summaries = {}
            for future in futures:
                summaries.update(future.result())
        elapsed = time.perf_counter() - start
    total = sum(len(data) for data in streams.values())
    assert sum(s["samples_pushed"] for s in summaries.values()) == total
    for sid in alarms:
        alarms[sid].sort()
    return elapsed, total, alarms


def test_sharding_is_invisible_in_the_alarms(artifact, streams):
    """1-worker and 2-worker fleets must alarm bit-identically."""
    _, _, single = _run_fleet(artifact, 1, streams)
    _, _, double = _run_fleet(artifact, 2, streams)
    assert sum(len(a) for a in single.values()) > 0, \
        "no alarms raised; the parity check is void"
    assert double == single


def test_aggregate_throughput_scales_to_4_workers(artifact, streams):
    if _cpu_count() < REQUIRED_CPUS:
        pytest.skip(f"needs >= {REQUIRED_CPUS} CPUs to measure scaling "
                    f"(found {_cpu_count()})")
    results = {}
    for n_workers in (1, 4):
        elapsed, total, _ = _run_fleet(artifact, n_workers, streams)
        results[n_workers] = total / elapsed
    speedup = results[4] / results[1]

    print()
    print(f"sharded serving -- VARADE window {WINDOW}, {N_STREAMS} bursty "
          f"unaligned streams over {N_DRIVERS} connections, "
          f"non-incremental scoring")
    print(f"{'workers':>8} {'samples/s':>12} {'speedup':>8}")
    for n_workers, sps in sorted(results.items()):
        print(f"{n_workers:>8} {sps:>12.0f} {sps / results[1]:>7.2f}x")

    assert speedup >= SPEEDUP_GATE, \
        f"4-worker aggregate throughput only {speedup:.2f}x the " \
        f"single-worker fleet (gate {SPEEDUP_GATE}x)"
