"""Ablation A1 -- variational head vs deterministic forecasting score.

The paper's central design argument (Section 3.1): a compact deterministic
forecaster does not produce usable anomaly scores, which is what motivates
the probabilistic head whose variance becomes the score.  This benchmark
trains the same backbone once and compares the two scoring rules.
"""

from repro.eval import run_variational_ablation


def test_ablation_variational_vs_deterministic(benchmark, benchmark_dataset):
    def run():
        return run_variational_ablation(
            benchmark_dataset, window=32, feature_maps=16, epochs=12,
            max_windows=800, seed=0,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation A1 -- scoring rule (same trained backbone)")
    for result in results:
        print(f"  {result.label:<38} AUC-ROC = {result.auc_roc:.3f} "
              f"({result.parameters:,} parameters, {result.train_time_s:.1f} s train)")

    by_label = {r.label: r.auc_roc for r in results}
    variational = next(v for k, v in by_label.items() if "variational" in k)
    deterministic = next(v for k, v in by_label.items() if "deterministic" in k)
    assert 0.0 <= variational <= 1.0 and 0.0 <= deterministic <= 1.0
