"""Experiment E5 -- paper Figure 2: the data-acquisition chain.

The paper's Figure 2 shows the case-study setup: seven IMUs and a power
meter wired into an embedded board that runs the detector.  This benchmark
regenerates the equivalent statistics for the simulated chain: per-group
channel counts and rates, collision-experiment protocol (number and duration
of collisions), and the throughput of the streaming replay that feeds the
detectors.
"""

import numpy as np

from repro.data import StreamReader, build_default_schema
from repro.data.schema import ChannelGroup


def test_fig2_acquisition_chain(benchmark, benchmark_dataset):
    dataset = benchmark_dataset
    schema = build_default_schema()

    reader = StreamReader(dataset.test, labels=dataset.test_labels,
                          sample_rate=dataset.config.sample_rate)

    def replay():
        count = 0
        for _ in reader:
            count += 1
        return count

    replayed = benchmark(replay)
    assert replayed == dataset.test.shape[0]

    events = dataset.test_recording.events
    durations = np.array([e.duration_samples for e in events]) / dataset.config.sample_rate

    print()
    print("Figure 2 -- case-study acquisition chain (reproduced)")
    print(f"  IMU sensors: 7 (joints 0-6), {len(schema.joint_indices(0))} channels each, "
          f"{dataset.config.sample_rate:.0f} Hz")
    print(f"  power meter: {len(schema.group_indices(ChannelGroup.POWER))} channels")
    print(f"  total stream channels: {len(schema)}")
    print(f"  training recording: {dataset.train.shape[0]} samples "
          f"({dataset.train.shape[0] / dataset.config.sample_rate:.0f} s of normal operation, "
          f"{len(set(dataset.train_recording.action_sequence))} distinct actions)")
    print(f"  collision experiment: {dataset.test.shape[0]} samples, "
          f"{len(events)} collisions, mean duration {durations.mean():.2f} s, "
          f"anomalous fraction {dataset.anomaly_fraction:.3f}")

    assert len(schema) == 86
    assert len(events) >= 5
    assert 0.0 < dataset.anomaly_fraction < 0.5
