"""Experiment E4 -- paper Table 2, Jetson AGX Orin rows.

Same protocol as the Xavier NX benchmark on the Orin device model; the paper
observes that every detector roughly doubles its inference frequency while
the ranking stays the same.

Detector construction runs through :class:`repro.pipeline.Pipeline` via the
shared ``experiment_result`` fixture (see ``bench_table2_xavier_nx.py``);
scores are bit-identical to the pre-pipeline harness.
"""

from repro.eval import PAPER_TABLE2, format_comparison, format_table2

DEVICE = "Jetson AGX Orin"


def test_table2_jetson_agx_orin(benchmark, experiment_result):
    result = experiment_result

    def build_rows():
        return result.table2_rows(DEVICE)

    rows = benchmark(build_rows)

    print()
    print(format_table2(rows, title=f"Table 2 (reproduced) -- {DEVICE}"))
    print()
    measured_hz = {e.name: e.edge[DEVICE].inference_frequency_hz for e in result.evaluations}
    paper = PAPER_TABLE2[DEVICE]
    print(format_comparison(measured_hz, {k: v["inference_hz"] for k, v in paper.items()},
                            "Hz", title=f"paper vs reproduction -- inference frequency ({DEVICE})"))

    hz = {row["model"]: row["inference_hz"] for row in rows if row["model"] != "Idle"}
    assert max(hz, key=hz.get) == "GBRF"
    assert sorted(hz, key=hz.get, reverse=True)[1] == "VARADE"

    # Orin speeds everything up relative to the Xavier NX (paper: roughly 2x).
    xavier_hz = {e.name: e.edge["Jetson Xavier NX"].inference_frequency_hz
                 for e in result.evaluations}
    for name, orin_value in hz.items():
        assert orin_value > xavier_hz[name], name

    # kNN is the power-hungriest CPU-bound detector on the Orin in the paper.
    power = {row["model"]: row["power_w"] for row in rows if row["model"] != "Idle"}
    assert power["kNN"] == max(power.values())
