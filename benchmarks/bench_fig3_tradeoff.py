"""Experiment E6 -- paper Figure 3: inference frequency vs accuracy.

Regenerates the scatter series of Figure 3: one point per (detector, board)
with the achieved inference frequency, the AUC-ROC, and the power draw
(marker size in the paper).  The paper's headline claim is that VARADE sits
in the best corner of this plot: highest accuracy at close to the highest
inference frequency.
"""

from repro.eval import format_figure3


def test_fig3_frequency_vs_accuracy(benchmark, experiment_result):
    result = experiment_result

    def build_series():
        return result.figure3_series()

    points = benchmark(build_series)

    print()
    print(format_figure3(points, title="Figure 3 (reproduced) -- inference frequency vs AUC-ROC"
                                       " (marker size ~ power)"))

    assert len(points) == 6 * 2  # six detectors on two boards

    for board in ("Jetson Xavier NX", "Jetson AGX Orin"):
        board_points = [p for p in points if p["board"] == board]
        # VARADE's Pareto position (the paper's headline trade-off): no
        # detector is simultaneously more accurate and faster.  At the reduced
        # reproduction scale the absolute AUC ordering is noisier than the
        # paper's (see EXPERIMENTS.md), so only dominance is asserted.
        varade = next(p for p in board_points if p["model"] == "VARADE")
        dominating = [p for p in board_points
                      if p["auc_roc"] > varade["auc_roc"]
                      and p["inference_hz"] > varade["inference_hz"]]
        assert not dominating, f"{board}: {dominating}"
