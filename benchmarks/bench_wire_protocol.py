"""Experiment S2 -- wire-protocol ingest: binary framing vs line JSON.

VARADE's serving front door negotiates its protocol per connection: line-
delimited JSON (debuggability) or the struct-packed binary framing of
:mod:`repro.serve.wire` (float32 sample blocks, many samples per PUSH
frame).  At edge sample rates the JSON path spends its time boxing floats
and scanning newlines -- serialization, not scoring, bounds ingest.  This
benchmark drives one real server (full asyncio service + TCP loopback)
with both clients over the same 16-stream bursty arrival and measures
end-to-end ingest throughput.

Acceptance (the PR gate):

* binary ingest >= 4x the JSON samples/sec over the same streams;
* p99 enqueue-to-score latency stays under the 25ms serving budget on the
  binary path at 16 concurrent streams (from the service's constant-memory
  streaming histograms);
* both protocols score every sample and drop none.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_wire_protocol.py -q -s
"""

import asyncio
import threading
import time

import numpy as np

from repro.serve import (AnomalyService, AnomalyTCPServer, BinaryClient,
                         ServiceConfig, TCPClient)

N_STREAMS = 16
SAMPLES_PER_STREAM = 200
BURST = 32                  #: samples per binary PUSH frame / JSON burst
MAX_BATCH = 64
MAX_DELAY_MS = 5.0
LATENCY_BUDGET_MS = 25.0    #: the serving budget the p99 must stay under
TIMING_REPEATS = 2


class _ServerThread:
    """One AnomalyTCPServer on an ephemeral port, in a background thread."""

    def __init__(self, detector):
        # incremental=False: the per-sample incremental lane is a *latency*
        # knob (scores inline at push time); throughput serving batches, so
        # both protocol legs run the batch-scoring configuration and the
        # wire is the only variable under test.
        service = AnomalyService(
            detector,
            config=ServiceConfig(max_batch=MAX_BATCH,
                                 max_delay_ms=MAX_DELAY_MS,
                                 backpressure="block",
                                 incremental=False))
        self.server = AnomalyTCPServer(service, port=0)
        self._ready = threading.Event()
        self.port = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(self.server.serve_forever(ready=ready))
            await ready.wait()
            self.port = self.server.bound_port
            self._ready.set()
            await task

        asyncio.run(main())

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(30.0), "server did not come up"
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            try:
                with TCPClient(port=self.port, timeout_s=10.0) as client:
                    client.shutdown()
            except (OSError, RuntimeError):
                self.server.request_stop()
        self.thread.join(30.0)


def _streams(fleet_stream_factory):
    return [fleet_stream_factory(SAMPLES_PER_STREAM, seed=300 + index)
            for index in range(N_STREAMS)]


def _burst_schedule(seed=2):
    """Bursts of BURST samples, streams interleaved in random order."""
    rng = np.random.default_rng(seed)
    cursors = [0] * N_STREAMS
    schedule = []
    while any(cursor < SAMPLES_PER_STREAM for cursor in cursors):
        live = [s for s in range(N_STREAMS) if cursors[s] < SAMPLES_PER_STREAM]
        stream = int(rng.choice(live))
        start = cursors[stream]
        stop = min(start + BURST, SAMPLES_PER_STREAM)
        schedule.append((stream, start, stop))
        cursors[stream] = stop
    return schedule


def _drive(client_factory, port, streams, schedule, batched):
    """Open every stream, replay the burst schedule, close; return stats.

    Only the push loop is timed -- that is the wire's job.  Closing waits
    for the scoring drain, which costs the same regardless of protocol;
    the p99 enqueue-to-score gate (below) holds scoring to the latency
    budget separately.
    """
    with client_factory(port) as client:
        for stream in range(N_STREAMS):
            client.open(f"s{stream}")
        start_time = time.perf_counter()
        for stream, start, stop in schedule:
            if batched:
                # One PUSH frame per burst -- the binary wire's whole point.
                client.push(f"s{stream}", streams[stream][start:stop])
            else:
                for row in streams[stream][start:stop]:
                    client.push(f"s{stream}", row)
        elapsed = time.perf_counter() - start_time
        summaries = [client.close_stream(f"s{stream}")
                     for stream in range(N_STREAMS)]
        stats = client.stats()
        client.shutdown()
    return elapsed, summaries, stats


def _best_of(repeats, run):
    best_elapsed = float("inf")
    result = None
    for _ in range(repeats):
        elapsed, summaries, stats = run()
        if elapsed < best_elapsed:
            best_elapsed, result = elapsed, (summaries, stats)
    return best_elapsed, result


def test_binary_wire_ingest_throughput(fleet_varade, fleet_stream_factory):
    detector = fleet_varade
    streams = _streams(fleet_stream_factory)
    schedule = _burst_schedule()
    total = N_STREAMS * SAMPLES_PER_STREAM
    json_frames = total                # one line per sample
    binary_frames = len(schedule)      # one frame per burst

    def run(client_factory, batched):
        def once():
            with _ServerThread(detector) as server:
                return _drive(client_factory, server.port, streams,
                              schedule, batched)
        return _best_of(TIMING_REPEATS, once)

    json_time, (json_summaries, json_stats) = run(
        lambda port: TCPClient(port=port), batched=False)
    binary_time, (binary_summaries, binary_stats) = run(
        lambda port: BinaryClient(port=port), batched=True)

    json_sps = total / json_time
    binary_sps = total / binary_time
    speedup = binary_sps / json_sps

    print()
    print(f"wire-protocol ingest -- VARADE window {detector.window}, "
          f"{N_STREAMS} streams x {SAMPLES_PER_STREAM} samples, "
          f"bursts of {BURST}, batch<={MAX_BATCH}, "
          f"budget {MAX_DELAY_MS:.0f}ms [block]")
    print(f"{'protocol':>12} {'frames':>8} {'frames/s':>10} "
          f"{'samples/s':>10} {'speedup':>8}")
    for label, frames, elapsed, sps in (
            ("line JSON", json_frames, json_time, json_sps),
            ("binary", binary_frames, binary_time, binary_sps)):
        print(f"{label:>12} {frames:>8} {frames / elapsed:>10.0f} "
              f"{sps:>10.0f} {sps / json_sps:>7.2f}x")
    print(f"binary p99 enqueue-to-score: "
          f"{binary_stats['queue_delay_p99_s'] * 1e3:.2f}ms "
          f"(budget {LATENCY_BUDGET_MS:.0f}ms), mean batch "
          f"{binary_stats['mean_batch_size']:.1f} over "
          f"{binary_stats['flushes']} flushes")

    # -- acceptance ------------------------------------------------------- #
    # every sample of every stream was ingested and scored, none dropped
    for summaries in (json_summaries, binary_summaries):
        assert sum(s["samples_pushed"] for s in summaries) == total
        assert all(s["samples_dropped"] == 0 for s in summaries)
        scored = sum(s["samples_scored"] for s in summaries)
        assert scored == N_STREAMS * (SAMPLES_PER_STREAM
                                      - detector.window + 1)
    assert json_stats["samples_scored"] == binary_stats["samples_scored"]
    # >= 4x ingest throughput, binary vs JSON
    assert speedup >= 4.0, \
        f"binary ingest only {speedup:.2f}x JSON (need >= 4x)"
    # p99 enqueue-to-score inside the serving budget at full binary rate
    p99 = binary_stats["queue_delay_p99_s"]
    assert p99 is not None and p99 <= LATENCY_BUDGET_MS / 1e3, \
        f"binary p99 {p99 * 1e3 if p99 else float('nan'):.2f}ms over the " \
        f"{LATENCY_BUDGET_MS}ms budget"
