"""Experiment S1 -- serving throughput: micro-batched service vs sequential.

32 concurrent streams deliver samples at unaligned, bursty rates -- the
arrival pattern a real robot fleet produces and the lockstep fleet replay
cannot model.  The sequential baseline scores each arriving window inline
(one ``score_windows_batch`` row per call, exactly the per-stream
:class:`repro.edge.StreamingRuntime` cost); the serving path coalesces
whatever is pending across all sessions into micro-batches under a
``max_delay_ms`` latency budget.

Acceptance (the PR gate):

* >= 3x the sequential per-stream throughput at 32 unaligned streams;
* p99 enqueue-to-score latency within the configured ``max_delay_ms``
  budget (reported from the constant-memory streaming histograms);
* scores bit-identical to the sequential path (VARADE's batched scoring is
  exactly batch-invariant);
* observability enabled costs at most a few percent of service throughput
  (read-through metrics + O(1) trace appends) and perturbs no score bit.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -q -s
"""

import asyncio
import time

import numpy as np

from repro.serve import AnomalyService, MicroBatcher, ScoringSession, ServiceConfig

N_STREAMS = 32
MIN_SAMPLES, MAX_SAMPLES = 320, 480
MAX_BATCH = 32
MAX_DELAY_MS = 25.0
MAX_QUEUE = 8
TIMING_REPEATS = 2
OBS_TIMING_REPEATS = 3
OBS_OVERHEAD_BUDGET = 0.03
OBS_NOISE_FLOOR_S = 0.05


def _stream_lengths(seed=0):
    rng = np.random.default_rng(seed)
    return [int(rng.integers(MIN_SAMPLES, MAX_SAMPLES + 1))
            for _ in range(N_STREAMS)]


def _make_streams(fleet_stream_factory, lengths):
    return [fleet_stream_factory(length, seed=200 + index)
            for index, length in enumerate(lengths)]


def _unaligned_schedule(lengths, seed=1):
    """Bursty interleave over (stream, sample index), per-stream order kept."""
    rng = np.random.default_rng(seed)
    cursors = [0] * len(lengths)
    remaining = list(lengths)
    schedule = []
    while any(remaining):
        live = [stream for stream, left in enumerate(remaining) if left]
        stream = int(rng.choice(live))
        for _ in range(int(rng.integers(1, 5))):
            if not remaining[stream]:
                break
            schedule.append((stream, cursors[stream]))
            cursors[stream] += 1
            remaining[stream] -= 1
    return schedule


def _best_of(repeats, run):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_sequential(detector, streams, schedule):
    """Per-stream sequential scoring: every arriving window scored inline.

    Pinned ``incremental=False`` on every path: this benchmark measures the
    micro-batching amortization of one-row-per-call scoring, so the
    incremental O(1) lane would collapse all three paths to the same cost.
    The incremental lane has its own gate in bench_incremental_scoring.py.
    """
    sessions = [ScoringSession(detector, f"s{stream}", incremental=False)
                for stream in range(len(streams))]
    for stream, index in schedule:
        sessions[stream].push(streams[stream][index])
    return sessions


def _run_batched(detector, streams, schedule):
    """The service's scoring path, driven synchronously at full rate."""
    sessions = [ScoringSession(detector, f"s{stream}", incremental=False)
                for stream in range(len(streams))]
    batcher = MicroBatcher(detector, max_batch=MAX_BATCH,
                           max_delay_ms=MAX_DELAY_MS, max_queue=MAX_QUEUE,
                           backpressure="block")
    for stream, index in schedule:
        request = sessions[stream].submit(streams[stream][index])
        if request is not None:
            batcher.enqueue(request)
            batcher.flush_due()
    batcher.drain()
    return sessions, batcher


def _run_service(detector, streams, schedule, observability=False):
    """The full asyncio front door, pushes awaited one by one."""
    config = ServiceConfig(max_batch=MAX_BATCH, max_delay_ms=MAX_DELAY_MS,
                           max_queue=MAX_QUEUE, backpressure="block",
                           record_sessions=True, incremental=False,
                           observability=observability)

    async def main():
        service = AnomalyService(detector, config=config)
        await service.start()
        for stream, index in schedule:
            await service.push(f"s{stream}", streams[stream][index])
        handles = dict(service.sessions)
        await service.stop()     # drains everything still pending
        page = service.metrics_text() if observability else None
        return handles, service.stats(), page

    return asyncio.run(main())


def test_service_throughput_32_unaligned_streams(fleet_varade,
                                                 fleet_stream_factory):
    detector = fleet_varade
    lengths = _stream_lengths()
    streams = _make_streams(fleet_stream_factory, lengths)
    schedule = _unaligned_schedule(lengths)
    total_samples = len(schedule)

    seq_time, seq_sessions = _best_of(
        TIMING_REPEATS, lambda: _run_sequential(detector, streams, schedule))
    batch_time, (batch_sessions, batcher) = _best_of(
        TIMING_REPEATS, lambda: _run_batched(detector, streams, schedule))
    service_time, (service_handles, service_stats, _) = _best_of(
        TIMING_REPEATS, lambda: _run_service(detector, streams, schedule))

    scored = sum(session.samples_scored for session in seq_sessions)
    seq_sps = scored / seq_time
    batch_sps = scored / batch_time
    service_sps = scored / service_time
    delay = batcher.queue_delay_histogram
    occupancy = batcher.occupancy_histogram

    print()
    print(f"service throughput -- VARADE window {detector.window}, "
          f"{N_STREAMS} unaligned streams, {total_samples} samples "
          f"({scored} scored), batch<={MAX_BATCH}, "
          f"budget {MAX_DELAY_MS:.0f}ms, queue<={MAX_QUEUE} [block]")
    print(f"{'path':>24} {'samples/s':>12} {'speedup':>8}")
    for label, sps in (("sequential per-stream", seq_sps),
                       ("micro-batched (sync)", batch_sps),
                       ("AnomalyService (async)", service_sps)):
        print(f"{label:>24} {sps:>12.0f} {sps / seq_sps:>7.2f}x")
    print(f"enqueue-to-score latency: p50 {delay.p50 * 1e3:.2f}ms  "
          f"p95 {delay.p95 * 1e3:.2f}ms  p99 {delay.p99 * 1e3:.2f}ms  "
          f"max {delay.max * 1e3:.2f}ms")
    print(f"batch occupancy: p50 {occupancy.p50:.1f}  mean "
          f"{occupancy.mean:.1f}  flushes {batcher.flushes}")
    service_delay = service_stats.queue_delay_histogram
    print(f"service: p99 {service_delay.p99 * 1e3:.2f}ms over "
          f"{service_stats.flushes} flushes, mean batch "
          f"{service_stats.mean_batch_size:.1f}, dropped "
          f"{service_stats.samples_dropped}")

    # -- acceptance ------------------------------------------------------- #
    # every path scored every scorable sample
    for sessions in (batch_sessions, list(service_handles.values())):
        assert sum(session.samples_scored for session in sessions) == scored
    # bit-identical scores, sequential vs batched vs served
    for stream in range(N_STREAMS):
        reference = seq_sessions[stream].result().scores
        np.testing.assert_allclose(batch_sessions[stream].result().scores,
                                   reference, rtol=0.0, atol=0.0,
                                   equal_nan=True)
        np.testing.assert_allclose(
            service_handles[f"s{stream}"].result().scores,
            reference, rtol=0.0, atol=0.0, equal_nan=True)
    # >= 3x sequential throughput at 32 unaligned streams
    assert batch_sps >= 3.0 * seq_sps, \
        f"micro-batched speedup only {batch_sps / seq_sps:.2f}x"
    assert service_sps >= 3.0 * seq_sps, \
        f"service speedup only {service_sps / seq_sps:.2f}x"
    # p99 enqueue-to-score latency inside the configured budget
    budget_s = MAX_DELAY_MS / 1000.0
    assert delay.p99 <= budget_s, \
        f"sync path p99 {delay.p99 * 1e3:.2f}ms over the {MAX_DELAY_MS}ms budget"
    assert service_delay.p99 <= budget_s, \
        f"service p99 {service_delay.p99 * 1e3:.2f}ms over the " \
        f"{MAX_DELAY_MS}ms budget"
    # the micro-batcher actually batched (not a degenerate 1-row loop)
    assert occupancy.mean >= 4.0


def test_observability_overhead_and_score_parity(fleet_varade,
                                                 fleet_stream_factory):
    """Experiment S1b -- the observability tax on the serving hot path.

    Metrics are read-through (the scrape reads counters the hot path
    already maintains) and tracing is an O(1) tuple append, so enabling
    observability must cost at most ``OBS_OVERHEAD_BUDGET`` of service
    throughput -- and must not perturb a single score bit.  The two paths
    are timed interleaved (off, on, off, on, ...) so machine noise hits
    both equally; best-of-``OBS_TIMING_REPEATS`` plus a small absolute
    floor absorbs the remaining timer jitter.
    """
    detector = fleet_varade
    lengths = _stream_lengths()
    streams = _make_streams(fleet_stream_factory, lengths)
    schedule = _unaligned_schedule(lengths)

    best = {False: float("inf"), True: float("inf")}
    runs = {}
    for _ in range(OBS_TIMING_REPEATS):
        for observability in (False, True):
            start = time.perf_counter()
            runs[observability] = _run_service(
                detector, streams, schedule, observability=observability)
            best[observability] = min(best[observability],
                                      time.perf_counter() - start)

    overhead = best[True] / best[False] - 1.0
    print()
    print(f"observability tax -- {len(schedule)} samples, "
          f"best of {OBS_TIMING_REPEATS}: "
          f"disabled {best[False]:.3f}s, enabled {best[True]:.3f}s "
          f"({overhead * 100.0:+.1f}%)")

    # -- acceptance ------------------------------------------------------- #
    # bit-identical scores with observability on
    off_handles = runs[False][0]
    on_handles = runs[True][0]
    for stream in range(N_STREAMS):
        np.testing.assert_allclose(
            on_handles[f"s{stream}"].result().scores,
            off_handles[f"s{stream}"].result().scores,
            rtol=0.0, atol=0.0, equal_nan=True)
    # the instrumented run really recorded (not a silently-disabled path)
    page = runs[True][2]
    assert f"repro_service_samples_pushed_total {len(schedule)}" in page
    # within the overhead budget
    assert best[True] <= best[False] * (1.0 + OBS_OVERHEAD_BUDGET) \
        + OBS_NOISE_FLOOR_S, \
        f"observability costs {overhead * 100.0:.1f}% " \
        f"(budget {OBS_OVERHEAD_BUDGET * 100.0:.0f}%)"
