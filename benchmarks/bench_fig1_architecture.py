"""Experiment E2 -- paper Figure 1: the VARADE architecture.

Regenerates the architecture description at the paper's full scale
(T = 512, feature maps 128 -> 1024): the per-layer table with the
time-dimension halving, parameter and FLOP counts, and the memory-traffic
figures the paper's inference-speed argument is based on.  The benchmark
times a full-scale forward pass on the host CPU.
"""

import numpy as np

from repro import nn
from repro.core import VaradeConfig
from repro.core.varade import VaradeNetwork


def test_fig1_architecture_summary(benchmark):
    config = VaradeConfig.paper(n_channels=86)
    network = VaradeNetwork(config, rng=np.random.default_rng(0))

    def profile():
        return nn.profile_model(network, (config.n_channels, config.window))

    profile = benchmark(profile)

    print()
    print("Figure 1 -- VARADE architecture (paper scale, T=512, 86 channels)")
    for line in network.layer_summary():
        print("  " + line)
    print(f"  layers: {config.n_layers}, feature maps: {config.feature_map_schedule()}")
    print(f"  parameters: {profile.total_parameters:,}")
    print(f"  MFLOPs per inference: {profile.total_flops / 1e6:.1f}")
    print(f"  parameter bytes: {profile.parameter_bytes / 1e6:.1f} MB, "
          f"activation bytes: {profile.total_activation_bytes / 1e6:.3f} MB")

    assert config.n_layers == 8
    assert config.feature_map_schedule()[-1] == 1024
    # Stride-2 convolutions keep activations tiny relative to the weights --
    # the memory-bandwidth argument of Section 3.1.
    assert profile.total_activation_bytes < 0.1 * profile.parameter_bytes


def test_fig1_forward_pass_paper_scale(benchmark):
    config = VaradeConfig.paper(n_channels=86)
    network = VaradeNetwork(config, rng=np.random.default_rng(0))
    window = np.random.default_rng(1).normal(size=(1, config.window, config.n_channels))

    mean, log_var = benchmark(network.predict_distribution, window)
    assert mean.shape == (1, 86)
    assert log_var.shape == (1, 86)
