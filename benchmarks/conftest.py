"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the paper's tables and figures.  Training all six
detectors takes a couple of minutes in pure numpy, so the full experiment is
run once per session and shared by every table/figure benchmark.

Environment knobs:

* ``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies the recording
  durations, letting a longer run get closer to the paper's statistics.
"""

import os

import pytest

from repro.data import DatasetConfig, build_benchmark_dataset
from repro.eval import ExperimentConfig, run_full_experiment


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def benchmark_dataset():
    scale = _scale()
    config = DatasetConfig(
        train_duration_s=90.0 * scale,
        test_duration_s=60.0 * scale,
        n_collisions=max(int(20 * scale), 5),
        sample_rate=50.0,
        num_actions=30,
        seed=0,
    )
    return build_benchmark_dataset(config)


@pytest.fixture(scope="session")
def experiment_result(benchmark_dataset):
    """The full Table-2 / Figure-3 experiment, shared across benchmarks."""
    config = ExperimentConfig(
        window=32,
        neural_epochs=4,
        max_train_windows=600,
        varade_feature_maps=16,
        sensor_rate_hz=200.0,
        seed=0,
    )
    return run_full_experiment(config, dataset=benchmark_dataset)
