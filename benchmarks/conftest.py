"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the paper's tables and figures.  Training all six
detectors takes a couple of minutes in pure numpy, so the full experiment is
run once per session and shared by every table/figure benchmark.

Environment knobs:

* ``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies the recording
  durations, letting a longer run get closer to the paper's statistics.
"""

import os

import numpy as np
import pytest

from repro.data import DatasetConfig, build_benchmark_dataset
from repro.eval import ExperimentConfig, run_full_experiment
from repro.pipeline import DeploymentSpec, DetectorSpec, Pipeline


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running benchmark, deselect with -m 'not slow'"
    )


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def benchmark_dataset():
    scale = _scale()
    config = DatasetConfig(
        train_duration_s=90.0 * scale,
        test_duration_s=60.0 * scale,
        n_collisions=max(int(20 * scale), 5),
        sample_rate=50.0,
        num_actions=30,
        seed=0,
    )
    return build_benchmark_dataset(config)


@pytest.fixture(scope="session")
def experiment_result(benchmark_dataset):
    """The full Table-2 / Figure-3 experiment, shared across benchmarks."""
    config = ExperimentConfig(
        window=32,
        neural_epochs=4,
        max_train_windows=600,
        varade_feature_maps=16,
        sensor_rate_hz=200.0,
        seed=0,
    )
    return run_full_experiment(config, dataset=benchmark_dataset)


# --------------------------------------------------------------------------- #
# Fleet-throughput benchmark fixtures (bench_fleet_throughput.py)
# --------------------------------------------------------------------------- #
FLEET_CHANNELS = 6


def _fleet_stream(n_samples: int, seed: int) -> np.ndarray:
    """Synthetic multi-channel stream with enough structure to train on."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / 50.0
    channels = [
        np.sin(2 * np.pi * (0.4 + 0.15 * c) * t + 0.7 * c)
        + 0.05 * rng.normal(size=n_samples)
        for c in range(FLEET_CHANNELS)
    ]
    return np.stack(channels, axis=1)


@pytest.fixture(scope="session")
def fleet_stream_factory():
    """Factory of reproducible synthetic streams for the fleet benchmarks."""
    return _fleet_stream


@pytest.fixture(scope="session")
def fleet_varade(fleet_stream_factory):
    """A small trained VARADE detector shared by the fleet benchmarks."""
    spec = DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": FLEET_CHANNELS, "window": 32,
                    "base_feature_maps": 8},
            training={"learning_rate": 3e-3, "epochs": 3, "mean_warmup_epochs": 1,
                      "variance_finetune_epochs": 2, "max_train_windows": 300},
        ),
        seed=0,
    )
    return Pipeline.from_spec(spec).fit(fleet_stream_factory(500, seed=0)).detector
