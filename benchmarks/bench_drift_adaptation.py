"""Experiment D1 -- online drift adaptation: precision recovered vs frozen.

A deployed detector's threshold is calibrated against the anomaly-score
distribution of normal data; concept drift moves that distribution and the
frozen threshold either alarms on everything (upward score shift) or goes
blind.  This benchmark measures what :mod:`repro.drift` buys on the seeded
drift scenarios of :func:`repro.data.build_drift_scenario`:

* **Recovery** -- on the mean-shift scenario, the adaptive runtime must
  recover >= 80% of pre-drift alarm precision in the post-settle steady
  state while the frozen baseline retains < 30%.
* **Detection delay** -- the confirmed recalibration must answer the drift
  within ``DELAY_BUDGET`` samples.
* **No-drift identity** -- with no drift in the stream, the adaptive
  runtime (single-stream and fleet) must score and alarm bit-identically
  to the non-adaptive path, with zero adaptation events.

The scorecard table for all four drift kinds is printed for inspection;
only the mean-shift row is an acceptance gate (the channel-dropout kind
produces a much smaller score shift and is a known-hard case the table
keeps honest).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_drift_adaptation.py -q -s
"""

import numpy as np
import pytest

from repro.data import DRIFT_KINDS, StreamReader, build_drift_scenario
from repro.edge import MultiStreamRuntime, StreamingRuntime
from repro.eval import compare_adaptation
from repro.pipeline import (AdaptationSpec, DeploymentSpec, DetectorSpec,
                            Pipeline)

SEED = 11
N_TEST = 3600            # long enough for the full refinement schedule to land
REQUIRED_RECOVERY = 0.80
FROZEN_CEILING = 0.30
DELAY_BUDGET = 400       # samples from drift onset to the answering recalibration


def _fitted_pipeline(scenario):
    """Fit + calibrate the kNN deployment through the declarative pipeline."""
    spec = DeploymentSpec(
        detector=DetectorSpec(kind="knn",
                              params={"n_channels": scenario.n_channels,
                                      "max_reference_points": 800}),
        adaptation=AdaptationSpec(),      # AdaptationPolicy() defaults
        seed=0,
    )
    return Pipeline.from_spec(spec).fit(scenario.train).calibrate()


def _run_pair(scenario):
    pipeline = _fitted_pipeline(scenario)
    # Frozen baseline: the raw runtime without the spec's adaptation policy.
    frozen = StreamingRuntime(pipeline.detector).run(
        StreamReader(scenario.stream, scenario.labels)
    )
    adaptive = pipeline.deploy_stream(scenario.stream, labels=scenario.labels)
    return frozen, adaptive


@pytest.fixture(scope="module")
def scenario_reports():
    reports = {}
    for kind in DRIFT_KINDS:
        scenario = build_drift_scenario(kind, n_test=N_TEST, seed=SEED)
        frozen, adaptive = _run_pair(scenario)
        reports[kind] = compare_adaptation(frozen, adaptive, scenario.drift_start)
    return reports


def test_drift_adaptation_scorecard(scenario_reports):
    """Print the frozen-vs-adaptive scorecard; gate on the mean-shift row."""
    print()
    print(f"drift adaptation -- kNN detector, {N_TEST} test samples, "
          f"drift at 1200, seed {SEED}")
    print(f"{'scenario':>16} {'delay':>6} {'settle':>7} {'pre prec':>9} "
          f"{'frozen':>7} {'adaptive':>9} {'recovered':>10} {'far':>6}")
    for kind, report in scenario_reports.items():
        print(f"{kind:>16} {report.detection_delay:>6.0f} "
              f"{report.settle_samples:>7d} {report.pre_drift_precision:>9.3f} "
              f"{report.post_precision_frozen:>7.3f} "
              f"{report.post_precision_adaptive:>9.3f} "
              f"{report.precision_recovered:>9.1%} "
              f"{report.post_far_adaptive:>6.3f}")

    mean_shift = scenario_reports["mean_shift"]
    assert np.isfinite(mean_shift.detection_delay), \
        "adaptive runtime never answered the mean-shift drift"
    assert mean_shift.detection_delay <= DELAY_BUDGET, (
        f"mean-shift detection delay {mean_shift.detection_delay:.0f} exceeds "
        f"the {DELAY_BUDGET}-sample budget"
    )
    assert mean_shift.precision_recovered >= REQUIRED_RECOVERY, (
        f"adaptive runtime recovered only "
        f"{mean_shift.precision_recovered:.1%} of pre-drift precision "
        f"(required {REQUIRED_RECOVERY:.0%})"
    )
    assert mean_shift.frozen_precision_retained < FROZEN_CEILING, (
        f"frozen baseline retained {mean_shift.frozen_precision_retained:.1%} "
        f"precision -- the scenario is not stressing the frozen threshold"
    )
    # The adaptive runtime must also not trade precision for blindness:
    # the same anomalies the frozen runtime catches must still alarm.
    assert mean_shift.post_precision_adaptive > 0.5


def test_mean_shift_false_alarms_controlled(scenario_reports):
    """Post-settle false-alarm rate must return to the pre-drift regime."""
    report = scenario_reports["mean_shift"]
    assert report.post_far_frozen > 0.5, \
        "frozen baseline should be alarming on most shifted normal samples"
    assert report.post_far_adaptive <= max(
        5.0 * report.pre_drift_false_alarm_rate, 0.02
    ), (
        f"adaptive post-drift false-alarm rate {report.post_far_adaptive:.3f} "
        f"did not return to the pre-drift regime "
        f"({report.pre_drift_false_alarm_rate:.3f})"
    )


def test_no_drift_streams_bit_identical():
    """Adaptation must be a no-op -- bit for bit -- on drift-free streams."""
    scenario = build_drift_scenario("mean_shift", n_test=1500, seed=SEED)
    pipeline = _fitted_pipeline(scenario)
    detector = pipeline.detector
    # A drift-free stream with the same anomaly bursts: scenario.train is
    # clean; reuse the generator's base by clipping the test stream before
    # the drift onset (anomalies included).
    clean = scenario.stream[: scenario.drift_start]
    labels = scenario.labels[: scenario.drift_start]

    plain = StreamingRuntime(detector).run(StreamReader(clean, labels))
    adaptive = pipeline.deploy_stream(clean, labels=labels)
    assert adaptive.adaptation_events == []
    assert np.array_equal(plain.scores, adaptive.scores, equal_nan=True)
    assert np.array_equal(plain.alarms, adaptive.alarms)

    fleet_plain = MultiStreamRuntime(detector).run(
        [StreamReader(clean, labels), StreamReader(clean, labels)]
    )
    fleet_adaptive = pipeline.deploy_fleet([clean, clean], labels=[labels, labels])
    for plain_stream, adaptive_stream in zip(fleet_plain, fleet_adaptive):
        assert adaptive_stream.adaptation_events == []
        assert np.array_equal(plain_stream.scores, adaptive_stream.scores,
                              equal_nan=True)
        assert np.array_equal(plain_stream.alarms, adaptive_stream.alarms)
    print("\nno-drift identity: single-stream and fleet bit-identical, "
          "0 adaptation events")
