"""Experiment E3 -- paper Table 2, Jetson Xavier NX rows.

Trains all six detectors on the simulated robot cell, evaluates AUC-ROC on
the collision experiment and estimates the Xavier NX deployment metrics of
the paper-scale architectures.  Prints the reproduced table next to the
paper's reference numbers.

Detector construction runs through :class:`repro.pipeline.Pipeline` (the
``experiment_result`` fixture calls :func:`repro.eval.run_full_experiment`,
which routes every study entry through a declarative ``DeploymentSpec``);
the scores are bit-identical to the pre-pipeline harness.
"""


from repro.eval import PAPER_TABLE2, format_comparison, format_table2

DEVICE = "Jetson Xavier NX"


def test_table2_jetson_xavier_nx(benchmark, experiment_result):
    result = experiment_result

    def build_rows():
        return result.table2_rows(DEVICE)

    rows = benchmark(build_rows)

    print()
    print(f"Dataset: {result.dataset_summary}")
    print(format_table2(rows, title=f"Table 2 (reproduced) -- {DEVICE}"))
    print()
    measured_auc = {e.name: e.auc_roc for e in result.evaluations}
    measured_hz = {e.name: e.edge[DEVICE].inference_frequency_hz for e in result.evaluations}
    paper = PAPER_TABLE2[DEVICE]
    print(format_comparison(measured_auc, {k: v["auc_roc"] for k, v in paper.items()},
                            "AUC-ROC", title="paper vs reproduction -- AUC-ROC"))
    print()
    print(format_comparison(measured_hz, {k: v["inference_hz"] for k, v in paper.items()},
                            "Hz", title=f"paper vs reproduction -- inference frequency ({DEVICE})"))

    # Shape checks the paper's analysis relies on.
    assert len(rows) == 7  # idle + 6 detectors
    hz = {row["model"]: row["inference_hz"] for row in rows if row["model"] != "Idle"}
    assert max(hz, key=hz.get) == "GBRF"
    assert sorted(hz, key=hz.get, reverse=True)[1] == "VARADE"
    # Accuracy: at the reduced reproduction scale the absolute AUC gap between
    # detectors is much smaller than in the paper (see EXPERIMENTS.md), so we
    # assert the weaker property that VARADE is competitive (at or above the
    # median detector) rather than strictly the best.
    import numpy as np

    assert measured_auc["VARADE"] >= np.median(list(measured_auc.values())), measured_auc
