"""Shared fixtures for the test suite.

Everything here is intentionally tiny: the goal of the fixtures is to exercise
the full code paths (simulation, training, scoring, evaluation) in seconds,
not to reach the paper's accuracy numbers -- the benchmarks do that at a
larger scale.
"""

import numpy as np
import pytest

from repro.data.dataset import DatasetConfig, build_benchmark_dataset
from repro.robot.plant import RobotCellConfig, RobotCellSimulator


def pytest_configure(config):
    """Register the tier markers.

    Tier 1 is the full default run; ``pytest -m "not slow"`` is the fast tier
    that skips long-running throughput/scaling tests.
    """
    config.addinivalue_line(
        "markers", "slow: long-running test, deselect with -m 'not slow'"
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_stream():
    """A small synthetic 6-channel stream with predictable structure."""
    generator = np.random.default_rng(7)
    t = np.arange(600) / 50.0
    channels = [
        np.sin(2 * np.pi * 0.5 * t),
        np.cos(2 * np.pi * 0.8 * t),
        0.5 * np.sin(2 * np.pi * 1.3 * t + 0.4),
        np.linspace(-1, 1, t.size),
        generator.normal(0.0, 0.05, t.size),
        np.sin(2 * np.pi * 0.5 * t) * np.cos(2 * np.pi * 0.2 * t),
    ]
    return np.stack(channels, axis=1)


@pytest.fixture(scope="session")
def tiny_simulator():
    """A robot-cell simulator with few actions at a low sample rate."""
    config = RobotCellConfig(sample_rate=20.0, num_actions=5)
    return RobotCellSimulator(config=config, seed=3)


@pytest.fixture(scope="session")
def tiny_normal_recording(tiny_simulator):
    return tiny_simulator.record_normal(duration_s=20.0)


@pytest.fixture(scope="session")
def tiny_collision_recording(tiny_simulator):
    return tiny_simulator.record_collision_experiment(duration_s=25.0, n_collisions=4)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small benchmark dataset (86 channels, a few hundred samples)."""
    config = DatasetConfig(
        train_duration_s=24.0,
        test_duration_s=20.0,
        n_collisions=4,
        sample_rate=20.0,
        num_actions=6,
        seed=5,
    )
    return build_benchmark_dataset(config)
