"""Tests for windowing, the benchmark dataset builder and streaming replay."""

import numpy as np
import pytest

from repro.data import (
    DatasetConfig,
    RollingWindow,
    StreamReader,
    WindowDataset,
    build_benchmark_dataset,
    forecast_pairs,
    sliding_windows,
)


class TestSlidingWindows:
    def test_shapes_and_values(self):
        data = np.arange(20.0).reshape(10, 2)
        windows = sliding_windows(data, window=4)
        assert windows.shape == (7, 4, 2)
        np.testing.assert_allclose(windows[0], data[:4])
        np.testing.assert_allclose(windows[-1], data[6:10])

    def test_stride(self):
        data = np.arange(30.0).reshape(15, 2)
        windows = sliding_windows(data, window=4, stride=3)
        assert windows.shape[0] == 4
        np.testing.assert_allclose(windows[1], data[3:7])

    def test_errors(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros(10), 2)
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((3, 2)), 5)
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((10, 2)), 0)


class TestForecastPairs:
    def test_target_alignment(self):
        data = np.arange(10.0).reshape(-1, 1)
        contexts, targets, indices = forecast_pairs(data, window=3, horizon=1)
        # The first context is samples 0..2 and its target is sample 3.
        np.testing.assert_allclose(contexts[0].ravel(), [0, 1, 2])
        assert targets[0, 0] == 3.0
        assert indices[0] == 3
        assert indices[-1] == 9

    def test_horizon(self):
        data = np.arange(10.0).reshape(-1, 1)
        _, targets, indices = forecast_pairs(data, window=3, horizon=2)
        assert targets[0, 0] == 4.0
        assert indices[0] == 4

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            forecast_pairs(np.zeros((4, 1)), window=4, horizon=1)


class TestWindowDataset:
    def test_from_stream(self):
        data = np.random.default_rng(0).normal(size=(50, 3))
        dataset = WindowDataset.from_stream(data, window=8)
        assert len(dataset) == 42
        assert dataset.window == 8
        assert dataset.n_channels == 3

    def test_subsample(self):
        data = np.random.default_rng(1).normal(size=(100, 2))
        dataset = WindowDataset.from_stream(data, window=4)
        small = dataset.subsample(10, rng=np.random.default_rng(0))
        assert len(small) == 10
        # indices stay sorted so scores can still be aligned
        assert np.all(np.diff(small.target_indices) > 0)

    def test_subsample_noop_when_small(self):
        data = np.random.default_rng(2).normal(size=(20, 2))
        dataset = WindowDataset.from_stream(data, window=4)
        assert dataset.subsample(1000) is dataset

    def test_batches_cover_every_pair(self):
        data = np.random.default_rng(3).normal(size=(40, 2))
        dataset = WindowDataset.from_stream(data, window=4)
        seen = 0
        for contexts, targets in dataset.batches(8, shuffle=True, rng=np.random.default_rng(0)):
            assert contexts.shape[0] == targets.shape[0]
            seen += contexts.shape[0]
        assert seen == len(dataset)

    def test_invalid_batch_size(self):
        dataset = WindowDataset.from_stream(np.zeros((10, 2)), window=3)
        with pytest.raises(ValueError):
            list(dataset.batches(0))


class TestBenchmarkDataset:
    def test_shapes_and_normalisation(self, tiny_dataset):
        assert tiny_dataset.train.shape[1] == 86
        assert tiny_dataset.test.shape[1] == 86
        assert tiny_dataset.test_labels.shape[0] == tiny_dataset.test.shape[0]
        assert tiny_dataset.train.min() >= -1.0 - 1e-9
        assert tiny_dataset.train.max() <= 1.0 + 1e-9

    def test_test_set_contains_anomalies(self, tiny_dataset):
        assert tiny_dataset.test_labels.sum() > 0
        assert 0.0 < tiny_dataset.anomaly_fraction < 0.6

    def test_summary_mentions_sizes(self, tiny_dataset):
        summary = tiny_dataset.summary()
        assert "train=" in summary and "channels=86" in summary

    def test_exclude_action_id(self):
        config = DatasetConfig(train_duration_s=12.0, test_duration_s=10.0, n_collisions=2,
                               sample_rate=20.0, num_actions=4, seed=2, exclude_action_id=True)
        dataset = build_benchmark_dataset(config)
        assert dataset.train.shape[1] == 85


class TestStreaming:
    def test_reader_iterates_samples(self, tiny_stream):
        reader = StreamReader(tiny_stream, sample_rate=50.0)
        samples = list(reader)
        assert len(samples) == tiny_stream.shape[0]
        assert samples[10].timestamp == pytest.approx(0.2)
        np.testing.assert_allclose(samples[3].values, tiny_stream[3])

    def test_windows_match_sliding_windows(self, tiny_stream):
        reader = StreamReader(tiny_stream, sample_rate=50.0)
        pairs = list(reader.windows(window=8))
        contexts, targets, indices = forecast_pairs(tiny_stream, window=8)
        assert len(pairs) == contexts.shape[0]
        np.testing.assert_allclose(pairs[0][0], contexts[0])
        assert pairs[0][1].index == indices[0]

    def test_rolling_window(self):
        window = RollingWindow(window=3, n_channels=2)
        assert not window.is_full
        for value in range(3):
            window.push(np.array([value, value]))
        assert window.is_full
        np.testing.assert_allclose(window.as_array()[:, 0], [0, 1, 2])
        window.push(np.array([3, 3]))
        np.testing.assert_allclose(window.as_array()[:, 0], [1, 2, 3])
        window.clear()
        assert len(window) == 0

    def test_rolling_window_errors(self):
        window = RollingWindow(window=3, n_channels=2)
        with pytest.raises(ValueError):
            window.push(np.zeros(5))
        with pytest.raises(RuntimeError):
            window.as_array()

    def test_reader_validation(self, tiny_stream):
        with pytest.raises(ValueError):
            StreamReader(tiny_stream, labels=np.zeros(3))
        with pytest.raises(ValueError):
            StreamReader(tiny_stream, sample_rate=0.0)
        with pytest.raises(ValueError):
            StreamReader(np.zeros(10))
