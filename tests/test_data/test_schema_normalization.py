"""Tests for the channel schema and the normalisation layer."""

import numpy as np
import pytest

from repro.data import (
    ChannelGroup,
    MinMaxScaler,
    StandardScaler,
    build_default_schema,
)
from repro.data.schema import ChannelSpec, StreamSchema


class TestSchema:
    def test_default_schema_has_86_channels(self):
        schema = build_default_schema()
        counts = schema.counts()
        assert counts == {"action": 1, "joint": 77, "power": 8, "total": 86}

    def test_channel_order_matches_table1(self):
        schema = build_default_schema()
        assert schema.names[0] == "action_id"
        assert schema.names[1] == "sensor_id_0_AccX"
        assert schema.names[11] == "sensor_id_0_temp"
        assert schema.names[-8] == "current"
        assert schema.names[-1] == "import_energy"

    def test_index_of_and_group_indices(self):
        schema = build_default_schema()
        assert schema.index_of("sensor_id_3_GyroY") == 1 + 3 * 11 + 4
        assert len(schema.group_indices(ChannelGroup.POWER)) == 8
        assert len(schema.joint_indices(2)) == 11
        with pytest.raises(KeyError):
            schema.index_of("bogus")

    def test_as_table_renders_every_channel(self):
        schema = build_default_schema()
        table = schema.as_table()
        assert len(table) == 86 + 2  # header + separator
        assert any("Quaternion" in line for line in table)

    def test_custom_joint_count(self):
        schema = build_default_schema(n_joints=2)
        assert schema.counts()["joint"] == 22

    def test_duplicate_names_rejected(self):
        spec = ChannelSpec(name="x", unit="-", description="", group=ChannelGroup.ACTION)
        with pytest.raises(ValueError):
            StreamSchema([spec, spec])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            StreamSchema([])


class TestMinMaxScaler:
    def test_training_data_maps_to_range(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(100, 4))
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() == pytest.approx(-1.0)
        assert scaled.max() == pytest.approx(1.0)
        np.testing.assert_allclose(scaled.min(axis=0), -1.0)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0)

    def test_inverse_transform_round_trip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(50, 3))
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data,
                                   atol=1e-12)

    def test_constant_channel_maps_to_midpoint(self):
        data = np.hstack([np.ones((10, 1)), np.arange(10.0).reshape(-1, 1)])
        scaled = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_test_data_can_exceed_range(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        assert scaler.transform(np.array([[2.0]]))[0, 0] > 1.0

    def test_custom_range(self):
        scaled = MinMaxScaler(feature_range=(0.0, 1.0)).fit_transform(
            np.array([[0.0], [10.0]])
        )
        np.testing.assert_allclose(scaled.ravel(), [0.0, 1.0])

    def test_errors(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, -1.0))
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.zeros(5))
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.zeros((0, 3)))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(2)
        data = rng.normal(3.0, 2.0, size=(500, 3))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_round_trip(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(50, 2))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data,
                                   atol=1e-12)

    def test_errors(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))
