"""Property suite: session export/restore is a bit-exact pause button.

The model-lifecycle hot swap (and the cluster rebalance before it) leans
entirely on ``ScoringSession.export_state`` / ``from_state``: a migrated
session must continue as if the handoff never happened.  This suite pins
that contract property-style -- for every detector kind, with and without
the incremental lane, and with a live drift-adaptation lane mid-stream --
by comparing a session that scored a whole stream against one that was
exported at an arbitrary split point and restored before the remainder.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ThresholdCalibrator
from repro.drift import AdaptationPolicy
from repro.serve.session import ScoringSession

from serve_helpers import make_stream

ALL_KINDS = ["AR-LSTM", "GBRF", "AE", "kNN", "Isolation Forest", "VARADE"]
N_SAMPLES = 60


def _run_whole(detector, data, **kwargs):
    session = ScoringSession(detector, "whole", **kwargs)
    for row in data:
        session.push(row)
    return session


def _run_split(detector, data, split, **kwargs):
    """Push ``data[:split]``, export, restore, push the rest."""
    first = ScoringSession(detector, "split", **kwargs)
    for row in data[:split]:
        first.push(row)
    state = first.export_state()
    kwargs.pop("threshold", None)       # carried inside the state
    kwargs.pop("adaptation", None)
    restored = ScoringSession.from_state(detector, state)
    assert restored.incremental_active == first.incremental_active
    for row in data[split:]:
        restored.push(row)
    return restored


def _assert_identical(whole, restored):
    whole_result = whole.result()
    restored_result = restored.result()
    np.testing.assert_array_equal(whole_result.scores,
                                  restored_result.scores)
    np.testing.assert_array_equal(whole_result.alarms,
                                  restored_result.alarms)
    if whole_result.threshold_trace is None:      # session had no threshold
        assert restored_result.threshold_trace is None
    else:
        np.testing.assert_allclose(whole_result.threshold_trace,
                                   restored_result.threshold_trace,
                                   rtol=0.0, atol=0.0, equal_nan=True)


class TestRoundTripAcrossDetectors:
    @pytest.mark.parametrize("name", ALL_KINDS)
    @given(split=st.integers(min_value=0, max_value=N_SAMPLES),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_split_continuation_is_bit_exact(self, detectors, name, split,
                                             seed):
        detector = detectors[name]
        data, _ = make_stream(N_SAMPLES, seed=seed)
        whole = _run_whole(detector, data)
        restored = _run_split(detector, data, split)
        _assert_identical(whole, restored)

    @pytest.mark.parametrize("incremental", [True, False])
    @given(split=st.integers(min_value=0, max_value=N_SAMPLES),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_incremental_lane_survives_the_round_trip(self, detectors,
                                                      incremental, split,
                                                      seed):
        detector = detectors["VARADE"]
        data, _ = make_stream(N_SAMPLES, seed=seed)
        whole = _run_whole(detector, data, incremental=incremental)
        restored = _run_split(detector, data, split,
                              incremental=incremental)
        assert restored.incremental_active == whole.incremental_active
        _assert_identical(whole, restored)

    def test_export_refuses_outstanding_requests(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(detector.window + 3, seed=5)
        session = ScoringSession(detector, "pending", incremental=False)
        for row in data:
            request = session.submit(row)
        assert request is not None            # windows in flight
        with pytest.raises(RuntimeError, match="outstanding"):
            session.export_state()


class TestRoundTripMidAdaptation:
    """Bit-exactness while the drift lane is actively adapting."""

    def _setup(self, detectors, name, train_stream, seed):
        detector = detectors[name]
        scores = detector.score_stream(train_stream).valid_scores()
        threshold = ThresholdCalibrator(quantile=0.95).calibrate(scores)
        policy = AdaptationPolicy(reservoir_size=64, min_reservoir=16,
                                  confirm_samples=16, cooldown=32)
        rng = np.random.default_rng(seed)
        data, _ = make_stream(160, seed=seed)
        data[80:] = data[80:] * 3.0 + rng.normal(0.0, 0.5, data[80:].shape)
        return detector, data, threshold, policy

    @pytest.mark.parametrize("name", ["GBRF", "AE", "kNN"])
    @given(split=st.integers(min_value=70, max_value=150),
           seed=st.integers(min_value=0, max_value=2**8))
    @settings(max_examples=6, deadline=None)
    def test_adaptation_lane_continues_bit_exact(self, detectors,
                                                 train_stream, name, split,
                                                 seed):
        detector, data, threshold, policy = self._setup(
            detectors, name, train_stream, seed)
        whole = _run_whole(detector, data, threshold=threshold,
                           adaptation=policy)
        restored = _run_split(detector, data, split, threshold=threshold,
                              adaptation=policy)
        _assert_identical(whole, restored)
        assert len(restored.adaptation_events) == \
            len(whole.adaptation_events)
        for ours, theirs in zip(restored.adaptation_events,
                                whole.adaptation_events):
            assert ours.adapted_at == theirs.adapted_at
            assert ours.new_threshold == theirs.new_threshold

    def test_export_mid_adaptation_preserves_the_moved_threshold(
            self, detectors, train_stream):
        """A split *after* a confirmed adaptation must carry the adapted
        threshold, not the artifact calibration."""
        detector, data, threshold, policy = self._setup(
            detectors, "GBRF", train_stream, seed=3)
        whole = _run_whole(detector, data, threshold=threshold,
                           adaptation=policy)
        if not whole.adaptation_events:
            pytest.skip("this seed produced no adaptation to split across")
        split = whole.adaptation_events[0].adapted_at + 5
        restored = _run_split(detector, data, split, threshold=threshold,
                              adaptation=policy)
        assert restored.threshold.threshold != threshold.threshold
        assert restored.threshold.threshold == \
            whole.threshold.threshold
