"""Service-level observability: metrics reconciliation, tracing, sinks, wire.

The contract under test (ISSUE 8): the Prometheus page is read-through --
every value is read at scrape time from the counters the hot path already
maintains -- so the page always reconciles with ``service.stats()``; the
trace ring captures flush spans and per-session latencies as valid Chrome
trace JSON; alarm sinks observe exactly the alarmed samples; and all of it
is reachable over both wire protocols plus the plain-HTTP scrape port.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.core import ThresholdCalibrator
from repro.obs import CallbackAlarmSink, ObservabilityHTTPServer
from repro.serve import (AnomalyService, AnomalyWireServer, BinaryClient,
                         ServiceConfig, TCPClient, TCPTransport)

from serve_helpers import make_stream

OBS_CONFIG = ServiceConfig(max_batch=8, max_delay_ms=2.0,
                           record_sessions=True,
                           observability=True, trace_events=2048)


def parse_page(page):
    """Prometheus text page -> {series-with-labels: float}."""
    values = {}
    for line in page.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        values[series] = float(value)
    return values


def _calibrated(detectors, train_stream, name="VARADE", quantile=0.9):
    detector = detectors[name]
    scores = detector.score_stream(train_stream).valid_scores()
    return detector, ThresholdCalibrator(quantile=quantile).calibrate(scores)


def _run_streams(service_factory, streams):
    """Push each stream through its own session; return (service result, page)."""
    async def main():
        async with service_factory() as service:
            for index, data in enumerate(streams):
                sid = f"s{index}"
                await service.open_session(sid)
                for row in data:
                    await service.push(sid, row)
                await service.close_session(sid)
            return service, service.stats(), service.metrics_text()

    return asyncio.run(main())


class TestMetricsPage:
    def test_page_reconciles_with_stats(self, detectors):
        detector = detectors["VARADE"]
        streams = [make_stream(60, seed=40)[0], make_stream(45, seed=41)[0]]
        service, stats, page = _run_streams(
            lambda: AnomalyService(detector, config=OBS_CONFIG), streams)
        values = parse_page(page)
        assert values["repro_service_sessions_opened_total"] == \
            stats.sessions_opened == 2
        assert values["repro_service_sessions_closed_total"] == \
            stats.sessions_closed == 2
        assert values["repro_service_sessions_live"] == \
            stats.live_sessions == 0
        assert values["repro_service_samples_pushed_total"] == \
            stats.samples_pushed == sum(len(s) for s in streams)
        assert values["repro_service_samples_scored_total"] == \
            stats.samples_scored > 0
        assert values["repro_service_samples_dropped_total"] == \
            stats.samples_dropped == 0
        assert values["repro_batcher_flushes_total"] == stats.flushes > 0
        assert values["repro_batcher_queue_delay_seconds_count"] == \
            stats.queue_delay_histogram.count
        assert values["repro_batcher_batch_occupancy_count"] == \
            stats.occupancy_histogram.count
        assert values["repro_trace_events_recorded"] == \
            len(service.observability.tracer)

    def test_registered_families_schema(self, detectors):
        """The metric-name schema is an operator contract; hold it pinned."""
        _, _, page = _run_streams(
            lambda: AnomalyService(detectors["VARADE"], config=OBS_CONFIG),
            [make_stream(40, seed=42)[0]])
        families = [line.split()[2:] for line in page.splitlines()
                    if line.startswith("# TYPE")]
        assert families == [
            ["repro_service_sessions_opened_total", "counter"],
            ["repro_service_sessions_closed_total", "counter"],
            ["repro_service_sessions_live", "gauge"],
            ["repro_service_sessions_incremental", "gauge"],
            ["repro_service_samples_pushed_total", "counter"],
            ["repro_service_samples_scored_total", "counter"],
            ["repro_service_samples_dropped_total", "counter"],
            ["repro_service_alarms_total", "counter"],
            ["repro_service_adaptation_events_total", "counter"],
            ["repro_service_sessions_exported_total", "counter"],
            ["repro_service_sessions_imported_total", "counter"],
            ["repro_service_alarm_sink_errors_total", "counter"],
            ["repro_service_blocked_pushers", "gauge"],
            ["repro_batcher_flushes_total", "counter"],
            ["repro_batcher_scoring_seconds_total", "counter"],
            ["repro_batcher_pending_windows", "gauge"],
            ["repro_batcher_queue_delay_seconds", "summary"],
            ["repro_batcher_batch_occupancy", "summary"],
            ["repro_service_artifact_info", "gauge"],
            ["repro_lifecycle_canary_active", "gauge"],
            ["repro_lifecycle_canary_samples_total", "counter"],
            ["repro_lifecycle_canary_alarms_total", "counter"],
            ["repro_lifecycle_canary_errors_total", "counter"],
            ["repro_lifecycle_swaps_total", "counter"],
            ["repro_lifecycle_rollbacks_total", "counter"],
            ["repro_lifecycle_sessions_migrated_total", "counter"],
            ["repro_lifecycle_watch_breaches_total", "counter"],
            ["repro_trace_events_recorded", "gauge"],
            ["repro_trace_events_dropped_total", "counter"],
        ]

    def test_disabled_by_default(self, detectors):
        service = AnomalyService(detectors["VARADE"])
        assert service.observability is None
        with pytest.raises(RuntimeError, match="observability is disabled"):
            service.metrics_text()
        with pytest.raises(RuntimeError):
            service.trace_export()

    def test_metrics_without_tracing(self, detectors):
        config = ServiceConfig(observability=True, trace_events=0)
        service = AnomalyService(detectors["VARADE"], config=config)
        assert service.observability.tracer is None
        page = service.metrics_text()
        assert "repro_trace_events_recorded" not in page
        with pytest.raises(RuntimeError, match="tracing is disabled"):
            service.trace_export()


class TestTraceExport:
    def test_trace_shows_flush_spans_and_session_latencies(self, detectors):
        detector = detectors["VARADE"]
        service, _, _ = _run_streams(
            lambda: AnomalyService(detector, config=OBS_CONFIG),
            [make_stream(50, seed=43)[0]])
        trace = service.trace_export()
        events = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        names = {e["name"] for e in events}
        assert {"flush", "enqueue_to_score", "session_open",
                "session_close"} <= names
        flushes = [e for e in events if e["name"] == "flush"]
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in flushes)
        assert all("batch" in e["args"] for e in flushes)
        latencies = [e for e in events if e["name"] == "enqueue_to_score"]
        assert all(e["ph"] == "X" for e in latencies)
        # One latency span per batch-scored window.
        assert latencies, "expected per-window latency spans"
        # Strict-JSON round trip (what Perfetto requires).
        again = json.loads(service.trace_export_json())
        assert again["otherData"]["dropped"] == 0
        assert len(again["traceEvents"]) == len(trace["traceEvents"])

    def test_incremental_lane_marked(self, detectors):
        """VARADE engages the incremental lane; the trace says so."""
        service, _, _ = _run_streams(
            lambda: AnomalyService(detectors["VARADE"], config=OBS_CONFIG),
            [make_stream(40, seed=44)[0]])
        names = [e["name"] for e in service.trace_export()["traceEvents"]]
        assert "incremental_lane" in names


class TestAlarmSinks:
    def test_sinks_receive_exactly_the_alarms(self, detectors, train_stream):
        detector, threshold = _calibrated(detectors, train_stream,
                                          quantile=0.7)
        data, _ = make_stream(80, seed=45, anomaly=True)
        seen = []

        async def main():
            service = AnomalyService(
                detector, threshold=threshold, config=OBS_CONFIG,
                alarm_sinks=[CallbackAlarmSink(seen.append)])
            async with service:
                await service.open_session("s0")
                for row in data:
                    await service.push("s0", row)
                session = service.session("s0")
                await service.close_session("s0")
                return session, parse_page(service.metrics_text())

        session, values = asyncio.run(main())
        result = session.result()
        expected = int(np.nansum(result.scores > threshold.threshold))
        assert expected > 0, "seeded anomalies should alarm"
        assert len(seen) == expected
        assert values["repro_service_alarms_total"] == expected
        assert values["repro_service_alarm_sink_errors_total"] == 0

    def test_failing_sink_counted_not_propagated(self, detectors,
                                                 train_stream):
        detector, threshold = _calibrated(detectors, train_stream,
                                          quantile=0.7)
        data, _ = make_stream(80, seed=46, anomaly=True)

        def boom(sample):
            raise RuntimeError("sink down")

        async def main():
            service = AnomalyService(
                detector, threshold=threshold, config=OBS_CONFIG,
                alarm_sinks=[CallbackAlarmSink(boom)])
            async with service:
                await service.open_session("s0")
                for row in data:
                    await service.push("s0", row)
                await service.close_session("s0")
                return parse_page(service.metrics_text())

        values = asyncio.run(main())
        assert values["repro_service_alarm_sink_errors_total"] == \
            values["repro_service_alarms_total"] > 0

    def test_sinks_work_without_observability(self, detectors, train_stream):
        """Sinks are part of the serving path, not the metrics switch."""
        detector, threshold = _calibrated(detectors, train_stream,
                                          quantile=0.7)
        data, _ = make_stream(80, seed=47, anomaly=True)
        seen = []

        async def main():
            service = AnomalyService(
                detector, threshold=threshold,
                alarm_sinks=[CallbackAlarmSink(seen.append)])
            async with service:
                await service.open_session("s0")
                for row in data:
                    await service.push("s0", row)
                await service.close_session("s0")

        asyncio.run(main())
        assert seen, "alarms must reach sinks with observability off"


class TestScoreParity:
    def test_observability_does_not_change_scores(self, detectors):
        """The instrumented path must stay bit-identical to the plain one."""
        detector = detectors["VARADE"]
        data, _ = make_stream(70, seed=48)

        def run(config):
            async def main():
                async with AnomalyService(detector, config=config) as service:
                    await service.open_session("s0")
                    for row in data:
                        await service.push("s0", row)
                    session = service.session("s0")
                    await service.close_session("s0")
                    return session.result().scores

            return asyncio.run(main())

        plain = run(ServiceConfig(max_batch=8, max_delay_ms=2.0,
                                  record_sessions=True))
        observed = run(OBS_CONFIG)
        np.testing.assert_array_equal(plain, observed)


class _ObsServerThread:
    """An observability-enabled wire server in a background thread."""

    def __init__(self, detector, *, config=OBS_CONFIG):
        self.service = AnomalyService(detector, config=config)
        self.server = AnomalyWireServer(self.service,
                                        TCPTransport("127.0.0.1", 0))
        self._ready = threading.Event()
        self.loop = None
        self.port = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.loop = asyncio.get_running_loop()
            ready = asyncio.Event()
            task = asyncio.create_task(self.server.serve_forever(ready=ready))
            await ready.wait()
            self.port = int(self.server.bound_address)
            self._ready.set()
            await task

        asyncio.run(main())

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(10.0), "server did not come up"
        return self

    def __exit__(self, *exc_info):
        self.loop.call_soon_threadsafe(self.server.request_stop)
        self.thread.join(10.0)
        assert not self.thread.is_alive(), "server thread did not exit"


@pytest.mark.parametrize("client_cls", [TCPClient, BinaryClient],
                         ids=["json", "binary"])
class TestWireOps:
    def test_metrics_and_trace_round_trip(self, detectors, client_cls):
        data, _ = make_stream(50, seed=49)
        with _ObsServerThread(detectors["VARADE"]) as server:
            with client_cls(port=server.port, timeout_s=10.0) as client:
                client.open("s0")
                for row in data:
                    client.push("s0", [float(v) for v in row])
                summary = client.close_stream("s0")
                page = client.metrics()
                values = parse_page(page)
                assert values["repro_service_samples_pushed_total"] == \
                    len(data)
                assert values["repro_service_samples_scored_total"] == \
                    summary["samples_scored"]
                protocol = "json" if client_cls is TCPClient else "binary"
                assert values[
                    f'repro_wire_requests_total{{protocol="{protocol}",'
                    f'op="push"}}'] == len(data)
                trace = client.trace()
                names = {e["name"] for e in trace["traceEvents"]}
                assert "flush" in names
                assert trace["otherData"]["capacity"] == \
                    OBS_CONFIG.trace_events

    def test_ops_rejected_when_disabled(self, detectors, client_cls):
        config = ServiceConfig(max_batch=8, max_delay_ms=2.0)
        with _ObsServerThread(detectors["VARADE"], config=config) as server:
            with client_cls(port=server.port, timeout_s=10.0) as client:
                for op in ("metrics", "trace"):
                    reply = client.request({"op": op})
                    assert reply["ok"] is False
                    assert "disabled" in reply["error"]
                # The connection survives the structured error.
                assert client.ping()["ok"]


class TestHTTPScrape:
    def test_scrape_under_load(self, detectors):
        """Scrapes interleaved with live pushes stay consistent."""
        detector = detectors["VARADE"]
        data, _ = make_stream(120, seed=50)

        async def main():
            async with AnomalyService(detector, config=OBS_CONFIG) as service:
                httpd = ObservabilityHTTPServer(
                    metrics=service.metrics_text,
                    trace=service.trace_export_json)
                port = await httpd.start()
                try:
                    await service.open_session("s0")
                    pages = []

                    async def scrape():
                        reader, writer = await asyncio.open_connection(
                            "127.0.0.1", port)
                        writer.write(b"GET /metrics HTTP/1.1\r\n"
                                     b"Host: x\r\nConnection: close\r\n\r\n")
                        await writer.drain()
                        raw = await reader.read()
                        writer.close()
                        await writer.wait_closed()
                        assert b" 200 " in raw.split(b"\r\n", 1)[0]
                        pages.append(raw.split(b"\r\n\r\n", 1)[1].decode())

                    for index, row in enumerate(data):
                        await service.push("s0", row)
                        if index % 24 == 0:
                            await scrape()
                    await service.close_session("s0")
                    await scrape()
                    return pages, service.stats()
                finally:
                    await httpd.stop()

        pages, stats = asyncio.run(main())
        counts = [parse_page(p)["repro_service_samples_pushed_total"]
                  for p in pages]
        assert counts == sorted(counts), "pushed counter must be monotonic"
        assert counts[-1] == stats.samples_pushed == len(data)
