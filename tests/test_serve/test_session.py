"""ScoringSession unit tests: state machine, budgets, ordering, recording."""

import numpy as np
import pytest

from repro.core import ThresholdCalibrator
from repro.data import StreamReader
from repro.data.normalization import MinMaxScaler
from repro.edge import StreamingRuntime
from repro.serve import ScoringSession, SessionClosedError

from serve_helpers import make_stream


class TestInlinePush:
    @pytest.mark.parametrize("name", ["VARADE", "GBRF"])
    def test_push_matches_streaming_runtime(self, detectors, name):
        """Inline sessions are the StreamingRuntime path, window-state and
        forecaster alignment included."""
        detector = detectors[name]
        data, labels = make_stream(45, seed=9)
        session = ScoringSession(detector, "s0")
        for row in data:
            session.push(row)
        result = session.result(labels=labels)
        reference = StreamingRuntime(detector).run(StreamReader(data, labels=labels))
        np.testing.assert_allclose(result.scores, reference.scores,
                                   rtol=0.0, atol=0.0, equal_nan=True)
        assert result.samples_scored == reference.samples_scored
        np.testing.assert_array_equal(result.labels, reference.labels)

    def test_warmup_prefix_returns_none(self, detectors):
        detector = detectors["VARADE"]
        session = ScoringSession(detector, "s0")
        data, _ = make_stream(detector.window - 1, seed=3)
        assert all(session.push(row) is None for row in data)
        assert session.samples_scored == 0
        assert np.isnan(session.result().scores).all()

    def test_push_returns_alarm_only_above_threshold(self, detectors,
                                                     train_stream):
        detector = detectors["kNN"]
        scores = detector.score_stream(train_stream).valid_scores()
        threshold = ThresholdCalibrator(quantile=0.9).calibrate(scores)
        session = ScoringSession(detector, "cell", threshold=threshold)
        data, _ = make_stream(30, seed=11)
        data[20] += 50.0   # unmistakable spike
        alarms = [session.push(row) for row in data]
        raised = [a for a in alarms if a is not None]
        assert raised and all(a.alarm for a in raised)
        assert any(a.index == 20 for a in raised)
        assert all(a.stream_id == "cell" for a in raised)

    def test_max_samples_budget(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(40, seed=5)
        session = ScoringSession(detector, "s0", max_samples=7)
        for row in data:
            session.push(row)
        reference = StreamingRuntime(detector).run(StreamReader(data),
                                                   max_samples=7)
        result = session.result()
        assert result.samples_scored == reference.samples_scored == 7
        np.testing.assert_allclose(result.scores, reference.scores,
                                   rtol=0.0, atol=0.0, equal_nan=True)


class TestStateMachine:
    def test_completions_must_follow_submission_order(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(detector.window + 3, seed=2)
        session = ScoringSession(detector, "s0")
        requests = [r for r in (session.submit(row) for row in data)
                    if r is not None]
        assert len(requests) >= 2
        with pytest.raises(ValueError, match="submission order"):
            session.complete(requests[1], 0.0)
        # In order still works after the failed attempt.
        session.complete(requests[0], 0.5)
        session.complete(requests[1], 0.5)

    def test_complete_rejects_foreign_request(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(detector.window, seed=2)
        one, two = ScoringSession(detector, "a"), ScoringSession(detector, "b")
        request = None
        for row in data:
            request = one.submit(row)
        assert request is not None
        with pytest.raises(ValueError, match="different session"):
            two.complete(request, 0.0)

    def test_closed_session_refuses_pushes(self, detectors):
        session = ScoringSession(detectors["VARADE"], "s0")
        session.close()
        with pytest.raises(SessionClosedError):
            session.push(np.zeros(3))

    def test_discard_skips_sequence_and_keeps_nan(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(detector.window + 2, seed=4)
        session = ScoringSession(detector, "s0")
        requests = [r for r in (session.submit(row) for row in data)
                    if r is not None]
        session.discard(requests[0])
        sample = session.complete(requests[1], 1.25)
        assert sample.index == requests[1].index
        assert session.samples_dropped == 1
        scores = session.result().scores
        assert np.isnan(scores[requests[0].index])
        assert scores[requests[1].index] == 1.25

    def test_discard_mid_queue_keeps_order_consistent(self, detectors):
        """A rejected (newest) request can be discarded while older ones are
        still outstanding; completions skip the hole in order."""
        detector = detectors["VARADE"]
        data, _ = make_stream(detector.window + 3, seed=4)
        session = ScoringSession(detector, "s0")
        requests = [r for r in (session.submit(row) for row in data)
                    if r is not None]
        assert len(requests) >= 3
        session.discard(requests[1])           # drop the middle one
        session.complete(requests[0], 1.0)     # oldest still completes
        session.complete(requests[2], 2.0)     # order skips the hole
        with pytest.raises(ValueError, match="already completed or discarded"):
            session.discard(requests[1])
        scores = session.result().scores
        assert np.isnan(scores[requests[1].index])
        assert scores[requests[0].index] == 1.0
        assert scores[requests[2].index] == 2.0


class TestOptions:
    def test_scaler_is_applied_before_windowing(self, detectors, train_stream):
        detector = detectors["VARADE"]
        scaler = MinMaxScaler().fit(train_stream)
        raw, _ = make_stream(30, seed=6)
        scaled_session = ScoringSession(detector, "s0")
        raw_session = ScoringSession(detector, "s1", scaler=scaler)
        for row in raw:
            scaled_session.push(scaler.transform(row[None, :])[0])
            raw_session.push(row)
        np.testing.assert_allclose(raw_session.result().scores,
                                   scaled_session.result().scores,
                                   rtol=0.0, atol=0.0, equal_nan=True)

    def test_record_false_has_no_result(self, detectors):
        session = ScoringSession(detectors["VARADE"], "s0", record=False)
        with pytest.raises(RuntimeError, match="record=False"):
            session.result()

    def test_result_validates_label_length(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(12, seed=8)
        session = ScoringSession(detector, "s0")
        for row in data:
            session.push(row)
        with pytest.raises(ValueError, match="one entry per pushed sample"):
            session.result(labels=np.zeros(5))

    def test_rejects_bad_max_samples(self, detectors):
        with pytest.raises(ValueError, match="max_samples"):
            ScoringSession(detectors["VARADE"], "s0", max_samples=0)
