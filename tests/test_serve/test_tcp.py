"""TCP serving layer: protocol round trips, alarms over the wire, shutdown."""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.core import ThresholdCalibrator
from repro.serve import (AnomalyService, AnomalyTCPServer, BinaryClient,
                         ServerTimeoutError, ServiceConfig, TCPClient)

from serve_helpers import make_stream


class ServerThread:
    """Run an AnomalyTCPServer on an ephemeral port in a background thread."""

    def __init__(self, detector, *, threshold=None, config=None,
                 allow_shutdown=True):
        service = AnomalyService(
            detector, threshold=threshold,
            config=config if config is not None
            else ServiceConfig(max_batch=8, max_delay_ms=1.0))
        self.server = AnomalyTCPServer(service, port=0,
                                       allow_shutdown=allow_shutdown)
        self._port_ready = threading.Event()
        self.port = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(self.server.serve_forever(ready=ready))
            await ready.wait()
            self.port = self.server.bound_port
            self._port_ready.set()
            await task

        asyncio.run(main())

    def __enter__(self):
        self.thread.start()
        assert self._port_ready.wait(10.0), "server did not come up"
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            # Ask politely from a throwaway connection, then join.
            try:
                with TCPClient(port=self.port, timeout_s=5.0) as client:
                    client.shutdown()
            except (OSError, RuntimeError):
                pass
        self.thread.join(10.0)
        assert not self.thread.is_alive(), "server thread did not exit"


@pytest.fixture(scope="module")
def alarm_setup(detectors, train_stream):
    detector = detectors["kNN"]
    scores = detector.score_stream(train_stream).valid_scores()
    threshold = ThresholdCalibrator(quantile=0.9).calibrate(scores)
    return detector, threshold


class TestProtocol:
    def test_full_session_lifecycle_with_alarms(self, alarm_setup):
        detector, threshold = alarm_setup
        data, _ = make_stream(60, seed=40)
        data[30:34] += 25.0    # unmistakable anomaly burst

        with ServerThread(detector, threshold=threshold) as server:
            with TCPClient(port=server.port) as client:
                assert client.ping()["ok"]
                opened = client.open("cell-1")
                assert opened["window"] == detector.window
                assert opened["threshold"] == pytest.approx(threshold.threshold)
                client.push_stream("cell-1", data)
                stats = client.stats()
                summary = client.close_stream("cell-1")
                for _ in range(100):     # absorb in-flight event lines
                    if client.alarms:
                        break
                    client.ping()
                    time.sleep(0.01)
                assert summary["samples_pushed"] == len(data)
                assert summary["samples_scored"] > 0
                assert summary["samples_dropped"] == 0
                assert stats["samples_pushed"] <= len(data)
                # The burst alarmed, and events carry scores + thresholds.
                assert client.alarms, "expected alarm events over the wire"
                alarmed_indices = {alarm["index"] for alarm in client.alarms}
                assert alarmed_indices & {30, 31, 32, 33}
                for alarm in client.alarms:
                    assert alarm["event"] == "alarm"
                    assert alarm["stream"] == "cell-1"
                    assert alarm["score"] > alarm["threshold"]
                assert client.shutdown()["ok"]

    def test_alarms_from_close_drain_still_reach_the_client(self, alarm_setup):
        """Windows still pending at close are drained by close_session; the
        alarms they raise must be forwarded even though the close handler
        has already pruned the stream from the connection's live set."""
        detector, threshold = alarm_setup
        data, _ = make_stream(30, seed=45)
        data[20:] += 25.0     # the tail -- scored only by the close drain
        # A huge latency budget and batch bound: nothing flushes until close.
        config = ServiceConfig(max_batch=1024, max_delay_ms=600_000.0,
                               max_queue=1024)
        with ServerThread(detector, threshold=threshold,
                          config=config) as server:
            with TCPClient(port=server.port) as client:
                client.open("cell")
                client.push_stream("cell", data)
                summary = client.close_stream("cell")
                assert summary["samples_scored"] > 0
                for _ in range(100):
                    if client.alarms:
                        break
                    client.ping()
                    time.sleep(0.01)
                assert client.alarms, \
                    "close-drain alarms were dropped on the floor"
                assert {alarm["index"] for alarm in client.alarms} \
                    & set(range(20, 30))
                client.shutdown()

    def test_two_clients_two_streams(self, alarm_setup):
        """Sessions from different connections share the batcher but not
        their alarms: each connection sees only its own streams."""
        detector, threshold = alarm_setup
        calm, _ = make_stream(40, seed=41)
        noisy, _ = make_stream(40, seed=42)
        noisy[20:24] += 25.0

        with ServerThread(detector, threshold=threshold) as server:
            with TCPClient(port=server.port) as one, \
                    TCPClient(port=server.port) as two:
                one.open("calm")
                two.open("noisy")
                one.push_stream("calm", calm)
                two.push_stream("noisy", noisy)
                one.close_stream("calm")
                two.close_stream("noisy")
                # The alarm forwarder writes from its own task; nudge both
                # connections until the event lines have been read.
                for _ in range(100):
                    one.ping()
                    two.ping()
                    if two.alarms:
                        break
                    time.sleep(0.01)
                # Each connection sees only its own streams' alarms.
                assert two.alarms
                assert all(alarm["stream"] == "noisy"
                           for alarm in two.alarms)
                assert all(alarm["stream"] == "calm"
                           for alarm in one.alarms)
                # The injected burst dominates the noisy stream's alarms.
                assert {20, 21, 22, 23} & {alarm["index"]
                                           for alarm in two.alarms}

    def test_errors_are_replies_not_disconnects(self, detectors):
        detector = detectors["VARADE"]
        with ServerThread(detector) as server:
            with TCPClient(port=server.port) as client:
                # unknown op
                reply = client.request({"op": "warp"})
                assert not reply["ok"] and "unknown op" in reply["error"]
                # open without a stream id
                reply = client.request({"op": "open"})
                assert not reply["ok"] and "'stream'" in reply["error"]
                # push without values
                reply = client.request({"op": "push", "stream": "x"})
                assert not reply["ok"] and "values" in reply["error"]
                # close of a never-opened stream
                reply = client.request({"op": "close", "stream": "ghost"})
                assert not reply["ok"]
                # malformed payload types reply, not disconnect
                reply = client.request({"op": "open", "stream": "typed",
                                        "max_samples": "ten"})
                assert not reply["ok"]
                # double open
                assert client.open("cell")["ok"]
                reply = client.request({"op": "open", "stream": "cell"})
                assert not reply["ok"] and "already open" in reply["error"]
                # ... and the connection still works afterwards
                assert client.ping()["ok"]

    def test_bad_json_line_gets_error_reply(self, detectors):
        detector = detectors["VARADE"]
        with ServerThread(detector) as server:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=5.0) as raw:
                raw.sendall(b"this is not json\n")
                reply = json.loads(raw.makefile().readline())
                assert not reply["ok"]
                assert "bad JSON line" in reply["error"]

    def test_fresh_server_stats_reply_is_strict_json(self, detectors):
        """Regression: with zero scored samples the stats histograms used to
        report nan, which ``json.dumps`` emits as the non-compliant ``NaN``
        token.  Parse the raw reply line rejecting every non-standard
        constant."""
        def reject_constant(token):
            raise AssertionError(
                f"non-compliant JSON token {token!r} in stats reply")

        detector = detectors["VARADE"]
        with ServerThread(detector) as server:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=5.0) as raw:
                raw.sendall(b'{"op": "stats"}\n')
                reply = json.loads(raw.makefile().readline(),
                                   parse_constant=reject_constant)
                assert reply["ok"]
                assert reply["samples_pushed"] == 0
                assert reply["mean_batch_size"] == 0.0
                assert reply["queue_delay_p99_s"] == 0.0

    def test_disconnect_closes_owned_sessions(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(20, seed=43)
        with ServerThread(detector) as server:
            with TCPClient(port=server.port) as client:
                client.open("orphan")
                client.push_stream("orphan", data[:10])
            # leaving the block dropped the connection without closing the
            # stream; the server must reap the orphaned session itself
            with TCPClient(port=server.port) as probe:
                for _ in range(100):
                    if probe.stats()["live_sessions"] == 0:
                        break
                    time.sleep(0.01)
                assert probe.stats()["live_sessions"] == 0

    def test_shutdown_can_be_disabled(self, detectors):
        detector = detectors["VARADE"]
        with ServerThread(detector, allow_shutdown=False) as server:
            with TCPClient(port=server.port) as client:
                reply = client.request({"op": "shutdown"})
                assert not reply["ok"] and "disabled" in reply["error"]
                assert client.ping()["ok"]
            # __exit__'s polite shutdown will fail; stop from in-process.
            server.server.request_stop()

    def test_reject_backpressure_surfaces_as_error_reply(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(30, seed=44)
        config = ServiceConfig(max_batch=64, max_delay_ms=10_000.0,
                               max_queue=1, backpressure="reject")
        with ServerThread(detector, config=config) as server:
            with TCPClient(port=server.port) as client:
                client.open("s0")
                replies = [client.request({
                    "op": "push", "stream": "s0",
                    "values": [float(v) for v in row],
                }) for row in data]
                rejected = [r for r in replies if not r["ok"]]
                assert rejected
                assert all("pending windows" in r["error"] for r in rejected)
                client.shutdown()


class _SilentServer:
    """Accepts connections, reads requests, never replies (a stalled peer)."""

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self._listener.settimeout(0.1)
        peers = []
        while not self._stop.is_set():
            try:
                peer, _ = self._listener.accept()
            except socket.timeout:
                continue
            peer.settimeout(0.1)
            peers.append(peer)
            # Keep draining so the client's send never blocks, but never
            # write a byte back.
            try:
                while not self._stop.is_set():
                    try:
                        if not peer.recv(4096):
                            break
                    except socket.timeout:
                        continue
            except OSError:
                pass
        for peer in peers:
            peer.close()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self._thread.join(5.0)
        self._listener.close()


class TestClientTimeouts:
    """Regression: a stalled or half-closed server must raise a descriptive
    ServerTimeoutError, not hang the client forever -- on both protocols."""

    @pytest.mark.parametrize("client_type", [TCPClient, BinaryClient],
                             ids=["json", "binary"])
    def test_stalled_server_raises_descriptive_timeout(self, client_type):
        with _SilentServer() as server:
            client = client_type(port=server.port, timeout_s=0.3)
            try:
                with pytest.raises(ServerTimeoutError) as excinfo:
                    client.ping()
            finally:
                client.close()
            message = str(excinfo.value)
            assert "'ping'" in message, "the error must name the stalled op"
            assert f"127.0.0.1:{server.port}" in message, \
                "the error must name the endpoint"
            assert "0.3" in message, "the error must name the timeout"
            assert "stalled" in message

    @pytest.mark.parametrize("client_type", [TCPClient, BinaryClient],
                             ids=["json", "binary"])
    def test_half_closed_server_raises_instead_of_hanging(self, client_type,
                                                          detectors):
        """A server that drops the connection mid-session must surface as a
        ConnectionError on the next request, never a silent hang."""
        with ServerThread(detectors["VARADE"]) as server:
            client = client_type(port=server.port, timeout_s=2.0)
            try:
                assert client.ping()["ok"]
                with TCPClient(port=server.port, timeout_s=5.0) as other:
                    other.shutdown()           # server goes away mid-session
                with pytest.raises(ConnectionError):
                    for _ in range(50):        # first request may still win
                        client.ping()
                        time.sleep(0.05)
            finally:
                client.close()

    def test_timeout_is_configurable_and_bounds_the_wait(self):
        with _SilentServer() as server:
            with TCPClient(port=server.port, timeout_s=0.2) as client:
                start = time.perf_counter()
                with pytest.raises(ServerTimeoutError):
                    client.ping()
                elapsed = time.perf_counter() - start
            assert elapsed < 5.0, "timeout did not bound the wait"
