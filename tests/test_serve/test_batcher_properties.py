"""Hypothesis property tests for the micro-batcher.

The scheduler invariants the serving API rests on:

* **exactly-once** -- no submitted window is lost or duplicated, under any
  interleaving of pushes, flushes and clock advances;
* **per-session order** -- each session's samples complete in submission
  order regardless of how sessions interleave in the batches;
* **latency budget** -- with a driver that calls ``flush_due`` after every
  step, no request waits more than ``max_delay_ms`` plus one step;
* **backpressure safety** -- ``block`` always makes progress (never
  deadlocks), ``drop_oldest`` shed + scored adds up to submitted, and a
  ``reject`` leaves the queue consistent.

A stub detector (cheap deterministic scoring, no training) and a fake clock
keep the properties fast and fully reproducible.
"""

from collections import defaultdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import AnomalyDetector, InferenceCost
from repro.serve import MicroBatcher, QueueFullError, ScoringSession

N_CHANNELS = 2
WINDOW = 3


class StubDetector(AnomalyDetector):
    """Deterministic toy detector: score = mean(context) + 10 * mean(target).

    Cheap enough for property tests, and sensitive to both inputs so a
    swapped window or target would change the score and break parity.
    """

    name = "stub"
    scores_current_sample = False

    def __init__(self) -> None:
        super().__init__(window=WINDOW)
        self._mark_fitted()

    def fit(self, train_data):  # pragma: no cover - never trained
        return self

    def score_window(self, window, target):
        return float(np.mean(window) + 10.0 * np.mean(target))

    def inference_cost(self):  # pragma: no cover - not estimated here
        return InferenceCost(flops=1.0, parameter_bytes=1.0, activation_bytes=1.0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _sample(stream: int, index: int) -> np.ndarray:
    """A per-(stream, index) unique sample so scores identify their origin."""
    return np.full(N_CHANNELS, stream * 1000.0 + index, dtype=np.float64)


#: one simulated driver step: (stream to push to, clock advance in ms)
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.floats(min_value=0.0, max_value=4.0)),
    min_size=1, max_size=120,
)


def _drive(detector, policy, max_batch, max_queue, max_delay_ms, step_list,
           flush_after_each=True):
    """Run a push schedule; return (sessions, batcher, completions, rejects)."""
    clock = FakeClock()
    sessions = [ScoringSession(detector, f"s{stream}") for stream in range(4)]
    batcher = MicroBatcher(detector, max_batch=max_batch,
                           max_delay_ms=max_delay_ms, max_queue=max_queue,
                           backpressure=policy, clock=clock)
    completions = []
    rejects = defaultdict(int)
    pushed = defaultdict(int)
    for stream, advance_ms in step_list:
        clock.advance(advance_ms / 1000.0)
        request = sessions[stream].submit(_sample(stream, pushed[stream]))
        pushed[stream] += 1
        if request is not None:
            try:
                completions.extend(batcher.enqueue(request))
            except QueueFullError:
                rejects[stream] += 1
        if flush_after_each:
            completions.extend(batcher.flush_due())
    completions.extend(batcher.drain())
    return sessions, batcher, completions, rejects, pushed


class TestExactlyOnce:
    @settings(max_examples=60, deadline=None)
    @given(step_list=steps, max_batch=st.integers(1, 8),
           max_queue=st.integers(1, 6))
    def test_block_never_loses_or_duplicates(self, step_list, max_batch,
                                             max_queue):
        detector = StubDetector()
        sessions, batcher, completions, rejects, pushed = _drive(
            detector, "block", max_batch, max_queue, 5.0, step_list)
        assert not rejects
        per_session = defaultdict(list)
        for sample in completions:
            per_session[sample.stream_id].append(sample.index)
        for stream, session in enumerate(sessions):
            # The stub is a forecaster: the first scorable sample arrives
            # once WINDOW context samples precede it.
            submitted = max(pushed[stream] - WINDOW, 0)
            indices = per_session[session.stream_id]
            # exactly once, in submission order
            assert indices == sorted(indices)
            assert len(indices) == len(set(indices))
            assert len(indices) == submitted
            assert session.samples_scored == submitted
            assert session.outstanding == 0
            assert session.samples_dropped == 0
        # every completed score identifies its (stream, target) pair exactly
        for sample in completions:
            stream = int(sample.stream_id[1:])
            expected = float(np.mean(
                [np.mean(_sample(stream, sample.index - WINDOW + offset))
                 for offset in range(WINDOW)]
            ) + 10.0 * np.mean(_sample(stream, sample.index)))
            assert sample.score == pytest.approx(expected, rel=0, abs=0)

    @settings(max_examples=60, deadline=None)
    @given(step_list=steps, max_batch=st.integers(1, 8),
           max_queue=st.integers(1, 6))
    def test_drop_oldest_accounts_for_every_submission(self, step_list,
                                                       max_batch, max_queue):
        detector = StubDetector()
        sessions, batcher, completions, rejects, pushed = _drive(
            detector, "drop_oldest", max_batch, max_queue, 5.0, step_list,
            flush_after_each=False)
        assert not rejects
        per_session = defaultdict(list)
        for sample in completions:
            per_session[sample.stream_id].append(sample.index)
        total_dropped = 0
        for stream, session in enumerate(sessions):
            submitted = max(pushed[stream] - WINDOW, 0)
            indices = per_session[session.stream_id]
            assert indices == sorted(indices)
            assert len(indices) == len(set(indices))
            assert session.samples_scored == len(indices)
            # scored + dropped covers every submission -- nothing vanishes
            assert session.samples_scored + session.samples_dropped == submitted
            assert session.outstanding == 0
            total_dropped += session.samples_dropped
        assert batcher.dropped == total_dropped

    @settings(max_examples=60, deadline=None)
    @given(step_list=steps, max_batch=st.integers(1, 8),
           max_queue=st.integers(1, 6))
    def test_reject_keeps_queue_consistent(self, step_list, max_batch,
                                           max_queue):
        detector = StubDetector()
        sessions, batcher, completions, rejects, _ = _drive(
            detector, "reject", max_batch, max_queue, 5.0, step_list,
            flush_after_each=False)
        # after the final drain nothing is pending and order still holds
        assert batcher.pending_count() == 0
        per_session = defaultdict(list)
        for sample in completions:
            per_session[sample.stream_id].append(sample.index)
        for session in sessions:
            indices = per_session[session.stream_id]
            assert indices == sorted(indices)
            assert len(indices) == len(set(indices))
            assert session.outstanding == 0


@settings(max_examples=60, deadline=None)
@given(step_list=steps, max_batch=st.integers(1, 8),
       max_delay_ms=st.floats(min_value=0.5, max_value=10.0))
def test_flush_due_bounds_queue_delay(step_list, max_batch, max_delay_ms):
    """With flush_due after every step, no request outlives the budget by
    more than one driver step."""
    detector = StubDetector()
    _, _, completions, _, _ = _drive(
        detector, "block", max_batch, 64, max_delay_ms, step_list)
    max_step_s = 4.0 / 1000.0
    budget_s = max_delay_ms / 1000.0
    for sample in completions:
        assert sample.queue_delay_s is not None
        assert sample.queue_delay_s <= budget_s + max_step_s + 1e-9


@settings(max_examples=40, deadline=None)
@given(step_list=steps)
def test_batches_never_exceed_max_batch(step_list):
    detector = StubDetector()
    _, batcher, _, _, _ = _drive(detector, "block", 4, 64, 5.0, step_list,
                                 flush_after_each=False)
    assert batcher.occupancy_histogram.max <= 4 or np.isnan(
        batcher.occupancy_histogram.max)


def test_block_flushes_inline_to_make_room():
    """The sync core's 'block' policy makes room by scoring, so an enqueue
    into a full queue always succeeds (no deadlock, nothing lost)."""
    detector = StubDetector()
    clock = FakeClock()
    session = ScoringSession(detector, "s0")
    batcher = MicroBatcher(detector, max_batch=2, max_delay_ms=1e6,
                           max_queue=1, backpressure="block", clock=clock)
    scored = []
    for index in range(WINDOW + 10):
        request = session.submit(_sample(0, index))
        if request is not None:
            scored.extend(batcher.enqueue(request))
    scored.extend(batcher.drain())
    assert [sample.index for sample in scored] == sorted(
        sample.index for sample in scored)
    assert session.samples_scored == 10
    assert session.samples_dropped == 0
