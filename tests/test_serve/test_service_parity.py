"""Bit-identity parity: AnomalyService vs the sequential StreamingRuntime.

The serving contract: scores, alarms, NaN warm-up prefixes and adaptation
events from the micro-batched service must match running
:class:`repro.edge.StreamingRuntime` once per stream -- for every detector
kind in the study, the int8 drop-in included, drift lanes included, under
unaligned bursty arrival.  This is the suite that lets the service replace
the sequential path everywhere.

Bit-identity note: every detector kind is held to exact equality
(``rtol=0, atol=0``).  kNN and AR-LSTM score through BLAS matmuls whose
1-row calls used to hit a gemv-class kernel with different rounding than
the (row-count invariant) >=2-row gemm kernels; since PR 6 their
single-window calls pad to two rows, which removed the historical
``atol=1e-10`` carve-out here and in
``tests/test_edge/test_fleet_parity.py``.
"""

import asyncio

import numpy as np
import pytest

from repro.baselines.registry import DETECTOR_NAMES
from repro.core import ThresholdCalibrator
from repro.data import StreamReader
from repro.drift import AdaptationPolicy
from repro.edge import MultiStreamRuntime, StreamingRuntime
from repro.serve import AnomalyService, ServiceConfig

from serve_helpers import unaligned_schedule

def _run_service(detector, streams, *, config=None, adaptation=None,
                 threshold=None, seed=99):
    """Push every stream through one service, unaligned; return sessions."""
    schedule = unaligned_schedule([len(data) for data, _ in streams],
                                  seed=seed)
    if config is None:
        config = ServiceConfig(max_batch=8, max_delay_ms=2.0,
                               record_sessions=True)

    async def main():
        service = AnomalyService(detector, config=config,
                                 threshold=threshold, adaptation=adaptation)
        await service.start()
        handles = {}
        for stream, index in schedule:
            stream_id = f"s{stream}"
            await service.push(stream_id, streams[stream][0][index])
            handles[stream_id] = service.session(stream_id)
        for stream_id in list(service.sessions):
            await service.close_session(stream_id)
        await service.stop()
        return handles

    return asyncio.run(main())


class TestServiceScoreParity:
    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_unaligned_service_matches_sequential(self, detectors, streams,
                                                  readers, name):
        detector = detectors[name]
        handles = _run_service(detector, streams)
        for stream, reader in enumerate(readers):
            sequential = StreamingRuntime(detector).run(reader)
            result = handles[f"s{stream}"].result(labels=reader.labels)
            # Identical NaN prefix (and any other unscored samples) ...
            np.testing.assert_array_equal(
                np.isnan(result.scores), np.isnan(sequential.scores)
            )
            # ... and (bit-)identical scores everywhere else.
            np.testing.assert_allclose(
                result.scores, sequential.scores,
                rtol=0.0, atol=0.0, equal_nan=True,
            )
            assert result.samples_scored == sequential.samples_scored

    def test_quantized_detector_parity(self, detectors, streams, readers,
                                       train_stream):
        """The int8 drop-in serves through the same contract."""
        quantized = detectors["VARADE"].quantize(train_stream)
        handles = _run_service(quantized, streams)
        for stream, reader in enumerate(readers):
            sequential = StreamingRuntime(quantized).run(reader)
            result = handles[f"s{stream}"].result()
            np.testing.assert_allclose(
                result.scores, sequential.scores,
                rtol=0.0, atol=0.0, equal_nan=True,
            )

    def test_alarm_parity_with_threshold(self, detectors, streams, readers,
                                         train_stream):
        detector = detectors["kNN"]
        scores = detector.score_stream(train_stream).valid_scores()
        threshold = ThresholdCalibrator(quantile=0.9).calibrate(scores)
        handles = _run_service(detector, streams, threshold=threshold)
        for stream, reader in enumerate(readers):
            sequential = StreamingRuntime(detector, threshold=threshold).run(reader)
            result = handles[f"s{stream}"].result()
            np.testing.assert_array_equal(result.alarms, sequential.alarms)
            assert result.alarms.sum() > 0 or stream != 0  # burst stream alarms
            np.testing.assert_allclose(result.threshold_trace,
                                       sequential.threshold_trace,
                                       rtol=0.0, atol=0.0, equal_nan=True)
            assert result.alarms[np.asarray(reader.labels) == 1].sum() > 0 \
                or stream != 0


class TestDriftLaneParity:
    def _policy(self):
        return AdaptationPolicy(reservoir_size=64, min_reservoir=16,
                                confirm_samples=16, cooldown=32)

    # GBRF/AE exercise the exactly-invariant path, kNN the BLAS-batched
    # one.  (The *tiny* test VARADE's barely-trained variance head produces
    # a drift response too heavy-tailed for the confirmation median to
    # move, so it never adapts here in either path; its event-free lane
    # parity is covered by the score-parity suite above.)
    @pytest.mark.parametrize("name", ["GBRF", "AE", "kNN"])
    def test_adaptation_lane_matches_sequential(self, detectors, name,
                                                train_stream):
        """Drift lanes stay per-session and bit-identical under batching."""
        detector = detectors[name]
        scores = detector.score_stream(train_stream).valid_scores()
        threshold = ThresholdCalibrator(quantile=0.95).calibrate(scores)
        rng = np.random.default_rng(17)
        # Long streams with a sustained gain+offset shift so drift confirms.
        drift_streams = []
        for stream in range(3):
            t = np.arange(400) / 20.0
            data = np.stack(
                [np.sin(2 * np.pi * (0.4 + 0.2 * c) * t + c)
                 + 0.05 * rng.normal(size=t.size) for c in range(3)], axis=1)
            if stream == 0:   # drift only in stream 0
                data[150:] = data[150:] * 2.0 + 0.8 \
                    + 0.3 * rng.normal(size=(250, 3))
            drift_streams.append((data, np.zeros(t.size, dtype=np.int64)))
        handles = _run_service(detector, drift_streams, threshold=threshold,
                               adaptation=self._policy())
        adapted = []
        for stream, (data, labels) in enumerate(drift_streams):
            sequential = StreamingRuntime(
                detector, threshold=threshold,
                adaptation=self._policy()).run(StreamReader(data, labels=labels))
            result = handles[f"s{stream}"].result()
            np.testing.assert_allclose(result.scores, sequential.scores,
                                       rtol=0.0, atol=0.0, equal_nan=True)
            np.testing.assert_array_equal(result.alarms, sequential.alarms)
            np.testing.assert_allclose(result.threshold_trace,
                                       sequential.threshold_trace,
                                       rtol=0.0, atol=0.0,
                                       equal_nan=True)
            assert len(result.adaptation_events) == \
                len(sequential.adaptation_events)
            for ours, theirs in zip(result.adaptation_events,
                                    sequential.adaptation_events):
                assert ours.flagged_at == theirs.flagged_at
                assert ours.adapted_at == theirs.adapted_at
                assert ours.new_threshold == theirs.new_threshold
            adapted.append(len(result.adaptation_events))
        # The drifting stream adapted; its neighbours' lanes stayed frozen.
        assert adapted[0] >= 1
        assert adapted[1] == adapted[2] == 0


class TestFleetShimParity:
    def test_reimplemented_fleet_matches_service_and_sequential(
            self, detectors, readers):
        """The MultiStreamRuntime shim and the service share one scoring
        path -- all three surfaces agree bit for bit."""
        detector = detectors["VARADE"]
        fleet = MultiStreamRuntime(detector).run(readers)
        handles = _run_service(
            detector, [(reader.data, reader.labels) for reader in readers])
        for stream, reader in enumerate(readers):
            sequential = StreamingRuntime(detector).run(reader)
            service_result = handles[f"s{stream}"].result()
            np.testing.assert_allclose(fleet[stream].scores, sequential.scores,
                                       rtol=0.0, atol=0.0, equal_nan=True)
            np.testing.assert_allclose(service_result.scores,
                                       sequential.scores,
                                       rtol=0.0, atol=0.0, equal_nan=True)


class TestDynamicSessions:
    def test_mid_run_close_drains_while_others_continue(self, detectors,
                                                        streams):
        """The lockstep-exhaustion fix at the service level: a session that
        finishes mid-run drains and closes; live sessions keep scoring."""
        detector = detectors["VARADE"]

        async def main():
            service = AnomalyService(
                detector, config=ServiceConfig(max_batch=16, max_delay_ms=50.0,
                                               record_sessions=True))
            await service.start()
            short, long_ = streams[3][0], streams[0][0]
            for index in range(len(short)):
                await service.push("short", short[index])
                await service.push("long", long_[index])
            closed = await service.close_session("short")   # drains pending
            assert closed.outstanding == 0
            assert "short" not in service.sessions
            for index in range(len(short), len(long_)):
                await service.push("long", long_[index])
            long_session = service.session("long")
            await service.stop()
            return closed, long_session

        closed, long_session = asyncio.run(main())
        short_ref = StreamingRuntime(detector).run(
            StreamReader(streams[3][0]))
        long_ref = StreamingRuntime(detector).run(StreamReader(streams[0][0]))
        np.testing.assert_allclose(closed.result().scores, short_ref.scores,
                                   rtol=0.0, atol=0.0, equal_nan=True)
        np.testing.assert_allclose(long_session.result().scores,
                                   long_ref.scores,
                                   rtol=0.0, atol=0.0, equal_nan=True)

    def test_sessions_open_and_close_dynamically(self, detectors, streams):
        detector = detectors["VARADE"]

        async def main():
            async with AnomalyService(detector) as service:
                await service.open_session("a")
                with pytest.raises(ValueError, match="already open"):
                    await service.open_session("a")
                await service.push("b", streams[0][0][0])   # auto-open
                assert set(service.sessions) == {"a", "b"}
                await service.close_session("a")
                assert set(service.sessions) == {"b"}
                with pytest.raises(KeyError):
                    service.session("a")
                stats = service.stats()
                assert stats.sessions_opened == 2
                assert stats.sessions_closed == 1

        asyncio.run(main())
