"""Transport/protocol parity matrix: every wire path scores identically.

The serving contract must not depend on how bytes reach the service:
JSON-over-TCP, binary-over-TCP and binary-over-UDS connections feeding
the same bursty unaligned arrival must produce *identical* scores, alarm
sets, close summaries and service counters -- for VARADE, its int8
drop-in, and a non-incremental baseline (kNN) -- and all of them must
match the sequential :class:`repro.edge.StreamingRuntime` reference bit
for bit.

Float32 note: the binary wire carries samples as float32 (an explicit,
reduced-precision ingest format), so the matrix pushes streams
pre-rounded through float32 (``.astype(np.float32).astype(np.float64)``)
-- every leg, and the sequential reference, then sees the exact same
float64 values and the bit-identity contract applies unchanged.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core import ThresholdCalibrator
from repro.data import StreamReader
from repro.edge import StreamingRuntime
from repro.serve import (HAS_UNIX_SOCKETS, AnomalyService, AnomalyWireServer,
                         BinaryClient, ServiceConfig, TCPClient, TCPTransport,
                         UnixSocketTransport)

from serve_helpers import STREAM_LENGTHS, make_stream, unaligned_schedule

_LEGS = ["tcp-json", "tcp-binary"] + (
    ["uds-binary"] if HAS_UNIX_SOCKETS else [])


class WireServerThread:
    """An AnomalyWireServer on any transport, in a background thread."""

    def __init__(self, detector, transport, *, threshold=None):
        service = AnomalyService(
            detector, threshold=threshold,
            config=ServiceConfig(max_batch=8, max_delay_ms=2.0,
                                 record_sessions=True))
        self.server = AnomalyWireServer(service, transport)
        self._ready = threading.Event()
        self.loop = None
        self.endpoint = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.loop = asyncio.get_running_loop()
            ready = asyncio.Event()
            task = asyncio.create_task(self.server.serve_forever(ready=ready))
            await ready.wait()
            self.endpoint = self.server.bound_address
            self._ready.set()
            await task

        asyncio.run(main())

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(10.0), "server did not come up"
        return self

    def __exit__(self, *exc_info):
        self.loop.call_soon_threadsafe(self.server.request_stop)
        self.thread.join(10.0)
        assert not self.thread.is_alive(), "server thread did not exit"


def _leg_setup(leg, tmp_path):
    """(transport, client factory) for one matrix leg."""
    if leg == "tcp-json":
        return (TCPTransport("127.0.0.1", 0),
                lambda server: TCPClient(port=int(server.endpoint),
                                         timeout_s=10.0))
    if leg == "tcp-binary":
        return (TCPTransport("127.0.0.1", 0),
                lambda server: BinaryClient(port=int(server.endpoint),
                                            timeout_s=10.0))
    if leg == "uds-binary":
        path = tmp_path / f"parity-{leg}.sock"
        return (UnixSocketTransport(path),
                lambda server: BinaryClient(uds_path=server.endpoint,
                                            timeout_s=10.0))
    raise AssertionError(leg)


def _grouped(schedule):
    """Coalesce consecutive same-stream schedule entries into runs.

    JSON pushes one sample per request either way; the binary client turns
    each run into one block PUSH frame -- the batched framing is part of
    what the matrix must prove equivalent.
    """
    runs = []
    for stream, index in schedule:
        if runs and runs[-1][0] == stream and runs[-1][2] == index:
            runs[-1][2] += 1
        else:
            runs.append([stream, index, index + 1])
    return runs


def _run_leg(leg, detector, threshold, streams, schedule, tmp_path):
    """Drive one (transport, protocol) leg; return everything observable."""
    transport, make_client = _leg_setup(leg, tmp_path)
    with WireServerThread(detector, transport, threshold=threshold) as server:
        with make_client(server) as client:
            handles = {}
            for stream in range(len(streams)):
                client.open(f"s{stream}")
                handles[stream] = server.server.service.session(f"s{stream}")
            for stream, start, stop in _grouped(schedule):
                if isinstance(client, BinaryClient):
                    client.push(f"s{stream}", streams[stream][start:stop])
                else:
                    for index in range(start, stop):
                        client.push(f"s{stream}", streams[stream][index])
            summaries = {stream: client.close_stream(f"s{stream}")
                         for stream in range(len(streams))}
            results = {stream: handles[stream].result()
                       for stream in range(len(streams))}
            expected_alarms = sum(int(result.alarms.sum())
                                  for result in results.values())
            for _ in range(300):
                if len(client.alarms) >= expected_alarms:
                    break
                client.ping()      # absorb in-flight event frames
                time.sleep(0.01)
            stats = client.stats()
    return {
        "scores": {stream: results[stream].scores
                   for stream in results},
        "alarm_flags": {stream: results[stream].alarms
                        for stream in results},
        "wire_alarms": {(alarm["stream"], alarm["index"])
                        for alarm in client.alarms},
        "summaries": {
            stream: {key: summary[key]
                     for key in ("samples_pushed", "samples_scored",
                                 "samples_dropped")}
            for stream, summary in summaries.items()},
        "scored_total": stats["samples_scored"],
    }


def _rounded_streams(seed0=70):
    """Anomaly-bearing streams pre-rounded through the float32 wire format."""
    streams = []
    for stream, length in enumerate(STREAM_LENGTHS):
        data, _ = make_stream(length, seed=seed0 + stream, anomaly=True)
        data[length // 2:length // 2 + 4] += 20.0   # unmistakable burst
        streams.append(data.astype(np.float32).astype(np.float64))
    return streams


@pytest.fixture(scope="module")
def parity_streams():
    return _rounded_streams()


@pytest.fixture(scope="module")
def parity_schedule():
    return unaligned_schedule(list(STREAM_LENGTHS), seed=71)


def _detector_and_threshold(name, detectors, train_stream):
    if name == "VARADE-int8":
        detector = detectors["VARADE"].quantize(train_stream)
    else:
        detector = detectors[name]
    scores = detector.score_stream(train_stream).valid_scores()
    return detector, ThresholdCalibrator(quantile=0.9).calibrate(scores)


@pytest.mark.parametrize("name", ["VARADE", "VARADE-int8", "kNN"])
def test_matrix_legs_are_identical_and_match_sequential(
        name, detectors, train_stream, parity_streams, parity_schedule,
        tmp_path):
    detector, threshold = _detector_and_threshold(name, detectors,
                                                  train_stream)
    legs = {leg: _run_leg(leg, detector, threshold, parity_streams,
                          parity_schedule, tmp_path)
            for leg in _LEGS}

    # Sequential reference over the exact same (float32-rounded) values.
    for stream, data in enumerate(parity_streams):
        reference = StreamingRuntime(detector, threshold=threshold).run(
            StreamReader(data))
        for leg, observed in legs.items():
            np.testing.assert_allclose(
                observed["scores"][stream], reference.scores,
                rtol=0.0, atol=0.0, equal_nan=True,
                err_msg=f"{name}/{leg}: scores diverge from sequential")
            np.testing.assert_array_equal(
                observed["alarm_flags"][stream], reference.alarms,
                err_msg=f"{name}/{leg}: alarms diverge from sequential")

    # And the legs agree with each other on everything the wire reports.
    baseline = legs[_LEGS[0]]
    for leg in _LEGS[1:]:
        assert legs[leg]["summaries"] == baseline["summaries"], \
            f"{name}: {leg} close summaries diverge"
        assert legs[leg]["wire_alarms"] == baseline["wire_alarms"], \
            f"{name}: {leg} alarm events diverge"
        assert legs[leg]["scored_total"] == baseline["scored_total"], \
            f"{name}: {leg} service counters diverge"
    # The injected bursts alarmed, and the wire carried every alarm.
    assert baseline["wire_alarms"], "expected alarms over the wire"
    expected = {(f"s{stream}", int(index))
                for stream in range(len(parity_streams))
                for index in np.flatnonzero(
                    baseline["alarm_flags"][stream])}
    assert baseline["wire_alarms"] == expected


@pytest.mark.skipif(not HAS_UNIX_SOCKETS, reason="platform has no AF_UNIX")
def test_uds_endpoint_is_a_path(detectors, tmp_path):
    """The UDS leg really is a Unix socket, not TCP in disguise."""
    path = tmp_path / "probe.sock"
    with WireServerThread(detectors["VARADE"],
                          UnixSocketTransport(path)) as server:
        assert server.endpoint == str(path)
        with BinaryClient(uds_path=server.endpoint, timeout_s=10.0) as client:
            assert client.ping()["ok"]
