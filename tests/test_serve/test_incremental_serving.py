"""Incremental-lane serving tests: eager per-sample scoring end to end.

Sessions score each sample with the detector's O(1)-per-sample incremental
scorer at submit time and stash the result on the emitted request; the
micro-batcher completes such requests without re-scoring them.  These tests
hold the lane to its contract: bit-identical scores/alarms/adaptation to the
batch path, correct FIFO completion when pre-scored and batch-scored
requests share a flush, a skipped gemm when everything is pre-scored, and a
silent fallback to batch scoring wherever the lane cannot engage.
"""

import asyncio

import numpy as np
import pytest

from repro.core import ThresholdCalibrator
from repro.drift import AdaptationPolicy
from repro.serve import AnomalyService, MicroBatcher, ServiceConfig
from repro.serve.session import ScoringSession

from serve_helpers import make_stream


@pytest.fixture(scope="module")
def varade_int8(detectors, train_stream):
    return detectors["VARADE"].quantize(train_stream)


def _run_session(detector, data, *, incremental, **kwargs):
    session = ScoringSession(detector, incremental=incremental, **kwargs)
    for row in data:
        session.push(row)
    session.close()
    return session


class TestSessionLane:
    def test_lane_engages_only_where_supported(self, detectors, varade_int8):
        assert ScoringSession(detectors["VARADE"]).incremental_active
        assert ScoringSession(varade_int8).incremental_active
        # Baselines have no incremental path; the toggle turns it off.
        assert not ScoringSession(detectors["kNN"]).incremental_active
        assert not ScoringSession(detectors["VARADE"],
                                  incremental=False).incremental_active

    @pytest.mark.parametrize("kind", ["float", "int8"])
    def test_inline_push_parity_with_batch_lane(self, detectors, varade_int8,
                                                kind):
        detector = detectors["VARADE"] if kind == "float" else varade_int8
        data, _ = make_stream(50, seed=70)
        inc = _run_session(detector, data, incremental=True)
        bat = _run_session(detector, data, incremental=False)
        assert inc.incremental_active and not bat.incremental_active
        np.testing.assert_array_equal(inc.result().scores, bat.result().scores)
        assert inc.samples_scored == bat.samples_scored
        # Scored-sample latencies are recorded on the incremental lane too.
        assert len(inc.result().latencies_s) == inc.samples_scored
        assert inc.result().latencies_s.min() > 0.0

    def test_close_and_reopen_stream_stays_exact(self, detectors):
        """A reopened stream (new session) warms up from scratch -- its
        scores match a batch-lane session fed the same tail."""
        detector = detectors["VARADE"]
        data, _ = make_stream(60, seed=71)
        _run_session(detector, data[:25], incremental=True)   # closed session
        reopened = _run_session(detector, data[25:], incremental=True)
        fresh_batch = _run_session(detector, data[25:], incremental=False)
        np.testing.assert_array_equal(reopened.result().scores,
                                      fresh_batch.result().scores)

    def test_adaptation_lane_swaps_thresholds_identically(self, detectors,
                                                          train_stream):
        """Drift adaptation sees identical score streams, so its threshold
        swaps land on identical samples in both lanes."""
        detector = detectors["VARADE"]
        scores = detector.score_stream(train_stream).valid_scores()
        threshold = ThresholdCalibrator(quantile=0.75).calibrate(scores)
        policy = AdaptationPolicy(reservoir_size=32, min_reservoir=8,
                                  confirm_samples=8, cooldown=16)
        data, _ = make_stream(120, seed=72)
        data[60:] *= 3.0       # sustained shift: scores move, lanes adapt
        inc = _run_session(detector, data, incremental=True,
                           threshold=threshold, adaptation=policy)
        bat = _run_session(detector, data, incremental=False,
                           threshold=threshold, adaptation=policy)
        inc_result, bat_result = inc.result(), bat.result()
        np.testing.assert_array_equal(inc_result.scores, bat_result.scores)
        np.testing.assert_array_equal(inc_result.alarms, bat_result.alarms)
        np.testing.assert_array_equal(inc_result.threshold_trace,
                                      bat_result.threshold_trace)
        assert len(inc_result.adaptation_events) \
            == len(bat_result.adaptation_events)

    def test_misshaped_stream_disables_lane_and_batch_error_wins(self,
                                                                 detectors):
        """A stream the plan cannot ingest must fail exactly like a
        non-incremental session: the lane bows out silently and the batch
        call raises its own error."""
        detector = detectors["VARADE"]       # trained on 3 channels
        session = ScoringSession(detector)
        assert session.incremental_active
        with pytest.raises(ValueError):
            for index in range(detector.window + 1):
                session.push(np.full(5, float(index)))
        assert not session.incremental_active


class TestBatcherWithPrescoredRequests:
    def _batcher(self, detector, **kwargs):
        kwargs.setdefault("max_batch", 64)
        kwargs.setdefault("max_delay_ms", 10_000.0)
        return MicroBatcher(detector, **kwargs)

    def test_mixed_flush_preserves_order_and_bits(self, detectors):
        """One incremental and one batch-lane session sharing a flush: FIFO
        completion order holds and every score matches the batch path."""
        detector = detectors["VARADE"]
        data_a, _ = make_stream(30, seed=73)
        data_b, _ = make_stream(30, seed=74)
        batcher = self._batcher(detector)
        inc = ScoringSession(detector, "inc", incremental=True)
        bat = ScoringSession(detector, "bat", incremental=False)
        for row_a, row_b in zip(data_a, data_b):
            for session, row in ((inc, row_a), (bat, row_b)):
                request = session.submit(row)
                if request is not None:
                    batcher.enqueue(request)
        results = batcher.drain()
        # FIFO pop order: the two sessions alternate request for request.
        assert [r.stream_id for r in results[:4]] == ["inc", "bat"] * 2
        reference_a = _run_session(detector, data_a, incremental=False,
                                   stream_id="ref")
        reference_b = _run_session(detector, data_b, incremental=False,
                                   stream_id="ref")
        np.testing.assert_array_equal(inc.result().scores,
                                      reference_a.result().scores)
        np.testing.assert_array_equal(bat.result().scores,
                                      reference_b.result().scores)
        assert batcher.scored == inc.samples_scored + bat.samples_scored

    def test_all_prescored_flush_skips_the_batched_call(self, detectors,
                                                        monkeypatch):
        detector = detectors["VARADE"]
        data, _ = make_stream(30, seed=75)
        batcher = self._batcher(detector)
        session = ScoringSession(detector, incremental=True)
        requests = [session.submit(row) for row in data]
        for request in filter(None, requests):
            batcher.enqueue(request)
        calls = []
        original = detector.score_windows_batch
        monkeypatch.setattr(
            detector, "score_windows_batch",
            lambda *args, **kwargs: calls.append(1) or original(*args,
                                                                **kwargs))
        results = batcher.drain()
        assert not calls, "pre-scored requests must not re-enter the gemm"
        assert len(results) == len(data) - detector.window + 1
        assert batcher.scored == len(results)
        reference = _run_session(detector, data, incremental=False)
        np.testing.assert_array_equal(session.result().scores,
                                      reference.result().scores)

    def test_drop_oldest_semantics_unchanged_by_prescoring(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(30, seed=76)
        batcher = self._batcher(detector, max_queue=2,
                                backpressure="drop_oldest")
        session = ScoringSession(detector, incremental=True)
        for row in data:
            request = session.submit(row)
            if request is not None:
                batcher.enqueue(request)
        batcher.drain()
        submitted = len(data) - detector.window + 1
        assert session.samples_scored == 2
        assert session.samples_dropped == submitted - 2
        scores = session.result().scores
        assert np.isfinite(scores[-2:]).all()


class TestServiceToggle:
    def _serve(self, detector, data, config):
        async def main():
            async with AnomalyService(detector, config=config) as service:
                for row in data:
                    await service.push("s0", row)
                session = service.session("s0")
                await service.close_session("s0")
                return session

        return asyncio.run(main())

    def test_service_incremental_parity_and_default_on(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(50, seed=77)
        on = self._serve(detector, data, ServiceConfig(
            max_batch=4, max_delay_ms=1.0, record_sessions=True))
        off = self._serve(detector, data, ServiceConfig(
            max_batch=4, max_delay_ms=1.0, record_sessions=True,
            incremental=False))
        assert on.incremental_active and not off.incremental_active
        np.testing.assert_array_equal(on.result().scores, off.result().scores)
        assert on.samples_scored == off.samples_scored > 0
