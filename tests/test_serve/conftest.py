"""Shared fixtures for the serving-API suite.

The parity fixtures mirror ``tests/test_edge/test_fleet_parity.py``: all six
study detectors trained tiny (seconds, not minutes) but through their real
code paths, plus a set of unequal-length test streams with one injected
anomaly burst.  Stream generation lives in ``serve_helpers.py`` so the test
modules can import it directly.
"""

import pytest

from repro.baselines.registry import DetectorRegistry
from repro.data import StreamReader

from serve_helpers import N_CHANNELS, STREAM_LENGTHS, WINDOW, make_stream


@pytest.fixture(scope="session")
def train_stream():
    return make_stream(220, seed=0)[0]


@pytest.fixture(scope="session")
def detectors(train_stream):
    """All six study detectors, trained tiny but through their real code paths."""
    registry = DetectorRegistry(
        n_channels=N_CHANNELS,
        window=WINDOW,
        neural_epochs=1,
        max_train_windows=80,
        varade_feature_maps=2,
        varade_epochs=2,
        varade_warmup_epochs=1,
        lstm_hidden=8,
        seed=0,
    )
    return {spec.name: spec.build().fit(train_stream) for spec in registry.specs()}


@pytest.fixture(scope="session")
def streams():
    """Unequal-length test streams, one with injected anomalies."""
    return [
        make_stream(length, seed=30 + index, anomaly=index == 0)
        for index, length in enumerate(STREAM_LENGTHS)
    ]


@pytest.fixture(scope="session")
def readers(streams):
    return [StreamReader(data, labels=labels) for data, labels in streams]
