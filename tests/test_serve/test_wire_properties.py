"""Property tests: the binary wire codec round-trips every frame exactly.

``decode(encode(x)) == x`` for every op, with float32 sample blocks
*bit-identical* (NaN payload bits, infinities, subnormals and signed zeros
included), from the empty batch up to the exact ``MAX_PAYLOAD`` boundary,
and through a :class:`~repro.serve.wire.FrameDecoder` fed arbitrarily
chunked / coalesced reads.  Re-encoding a decoded frame must also
reproduce the original bytes, so the wire format itself (not just the
Python objects) is canonical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.serve import wire

# Any unicode except surrogates (unencodable in UTF-8); ids and messages
# on the wire are <H-length-prefixed UTF-8.
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=48)
_u32 = st.integers(0, 2**32 - 1)
_u64 = st.integers(0, 2**64 - 1)
_finite = st.floats(allow_nan=False, allow_infinity=False)
_any_double = st.floats(allow_nan=True, allow_infinity=True)
_maybe_threshold = st.none() | _finite
# Metrics pages / trace JSON ride in <I-length-prefixed text fields that
# may span many lines; exercise well past the <H boundary used elsewhere.
_long_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=90_000)


@st.composite
def _sample_blocks(draw, min_samples=0, max_samples=16, max_channels=4):
    """float32 blocks built from raw bit patterns.

    Drawing uint32 bits and reinterpreting as float32 covers the entire
    value space uniformly at the *bit* level: quiet and signalling NaNs
    with arbitrary payloads, both infinities, subnormals and both zeros --
    exactly the values a round-trip must not canonicalise.
    """
    n = draw(st.integers(min_samples, max_samples))
    c = draw(st.integers(1, max_channels))
    bits = draw(hnp.arrays(dtype=np.uint32, shape=(n, c),
                           elements=st.integers(0, 2**32 - 1)))
    return bits.view(np.float32)


_frames = st.one_of(
    st.builds(wire.Open, _text, st.none() | st.integers(0, 2**62)),
    st.builds(wire.Push, _text, _sample_blocks()),
    st.builds(wire.Close, _text),
    st.builds(wire.Stats),
    st.builds(wire.Ping),
    st.builds(wire.Shutdown),
    st.builds(wire.OpenAck, _text, _u32, st.booleans(), _maybe_threshold),
    st.builds(wire.PushAck, _u32),
    st.builds(wire.CloseAck, _text, _u64, _u64, _u64, _u64),
    st.builds(wire.StatsAck, _u64, _u64, _u64, _u64, _u64,
              _any_double, _any_double),
    st.builds(wire.PingAck),
    st.builds(wire.ShutdownAck),
    st.builds(wire.AlarmEvent, _text, _u64, _finite, _maybe_threshold),
    st.builds(wire.ErrorReply, st.integers(0, 255), _text),
    st.builds(wire.Metrics),
    st.builds(wire.Trace),
    st.builds(wire.MetricsAck, _long_text),
    st.builds(wire.TraceAck, _long_text),
)

_EXAMPLE_OF_EVERY_OP = [
    wire.Open("press-3", max_samples=None),
    wire.Open("press-3", max_samples=0),
    wire.Push("press-3", np.zeros((2, 3), dtype=np.float32)),
    wire.Close("press-3"),
    wire.Stats(),
    wire.Ping(),
    wire.Shutdown(),
    wire.OpenAck("press-3", window=32, incremental=True, threshold=None),
    wire.OpenAck("press-3", window=32, incremental=False, threshold=1.5),
    wire.PushAck(accepted=64),
    wire.CloseAck("press-3", 200, 169, 0, 2),
    wire.StatsAck(3, 600, 500, 0, 12, 41.7, float("nan")),
    wire.PingAck(),
    wire.ShutdownAck(),
    wire.AlarmEvent("press-3", 57, 9.25, threshold=1.5),
    wire.AlarmEvent("press-3", 57, 9.25, threshold=None),
    wire.ErrorReply(wire.OP_PUSH, "push needs a non-empty sample block"),
    wire.ErrorReply(0, "bad frame magic"),
    wire.Metrics(),
    wire.Trace(),
    wire.MetricsAck("# HELP x_total X.\n# TYPE x_total counter\n"
                    "x_total 3\n"),
    wire.MetricsAck(""),
    wire.TraceAck('{"traceEvents":[],"otherData":{"dropped":0}}'),
]


def _assert_roundtrip(frame):
    data = wire.encode(frame)
    decoded, consumed = wire.decode_frame(data)
    assert consumed == len(data), "decoder must consume the whole frame"
    assert decoded == frame
    # The wire form is canonical: re-encoding reproduces the exact bytes.
    assert wire.encode(decoded) == data


@settings(deadline=None)
@given(_frames)
def test_roundtrip_any_frame(frame):
    _assert_roundtrip(frame)


@pytest.mark.parametrize(
    "frame", _EXAMPLE_OF_EVERY_OP,
    ids=lambda frame: f"0x{frame.op:02X}-{type(frame).__name__}")
def test_roundtrip_every_op(frame):
    # Deterministic floor under the property test: every one of the 18 ops
    # round-trips even if a hypothesis run draws a skewed op mix.
    _assert_roundtrip(frame)


def test_op_table_is_complete():
    ops = {frame.op for frame in _EXAMPLE_OF_EVERY_OP}
    assert ops == {
        wire.OP_OPEN, wire.OP_PUSH, wire.OP_CLOSE, wire.OP_STATS,
        wire.OP_PING, wire.OP_SHUTDOWN, wire.OP_OPEN_ACK, wire.OP_PUSH_ACK,
        wire.OP_CLOSE_ACK, wire.OP_STATS_ACK, wire.OP_PING_ACK,
        wire.OP_SHUTDOWN_ACK, wire.OP_ALARM_EVENT, wire.OP_ERROR,
        wire.OP_METRICS, wire.OP_TRACE, wire.OP_METRICS_ACK,
        wire.OP_TRACE_ACK,
    }


def test_push_preserves_every_special_float_bit_pattern():
    bits = np.array([
        0x00000000,  # +0.0
        0x80000000,  # -0.0
        0x00000001,  # smallest positive subnormal
        0x807FFFFF,  # largest negative subnormal
        0x7F800000,  # +inf
        0xFF800000,  # -inf
        0x7FC00000,  # canonical quiet NaN
        0x7F800001,  # signalling NaN
        0xFFC00123,  # negative NaN with payload bits
        0x7F7FFFFF,  # float32 max
    ], dtype=np.uint32).reshape(5, 2)
    frame = wire.Push("special", bits.view(np.float32))
    decoded, _ = wire.decode_frame(wire.encode(frame))
    assert decoded.samples.tobytes() == bits.view(np.float32).tobytes()
    assert decoded == frame


def test_empty_batch_roundtrips():
    frame = wire.Push("idle", np.empty((0, 3), dtype=np.float32))
    decoded, _ = wire.decode_frame(wire.encode(frame))
    assert decoded.samples.shape == (0, 3)
    assert decoded == frame


def test_max_size_batch_is_exactly_representable():
    # id "smax" (4 bytes) -> payload = 2 + 4 + 6 + 4 * n; n chosen so the
    # payload lands exactly on MAX_PAYLOAD.
    n = (wire.MAX_PAYLOAD - 12) // 4
    block = np.arange(n, dtype=np.float32).reshape(n, 1)
    frame = wire.Push("smax", block)
    data = wire.encode(frame)
    assert len(data) == wire.HEADER.size + wire.MAX_PAYLOAD
    decoded, consumed = wire.decode_frame(data)
    assert consumed == len(data)
    assert decoded == frame

    over = wire.Push("smax", np.zeros((n + 1, 1), dtype=np.float32))
    with pytest.raises(wire.FrameTooLargeError):
        wire.encode(over)


@settings(deadline=None, max_examples=60)
@given(st.lists(_frames, max_size=8), st.data())
def test_streaming_decoder_survives_arbitrary_chunking(frames, data):
    blob = b"".join(wire.encode(frame) for frame in frames)
    cuts = sorted(data.draw(
        st.lists(st.integers(0, len(blob)), max_size=8), label="cuts"))
    decoder = wire.FrameDecoder()
    decoded = []
    previous = 0
    for cut in [*cuts, len(blob)]:
        decoded.extend(decoder.drain(blob[previous:cut]))
        previous = cut
    assert decoded == frames
    assert decoder.pending_bytes == 0


@settings(deadline=None, max_examples=40)
@given(st.lists(_frames, min_size=1, max_size=6))
def test_coalesced_single_read(frames):
    # The opposite extreme of chunking: every frame in one read.
    decoder = wire.FrameDecoder()
    decoded = decoder.drain(b"".join(wire.encode(frame) for frame in frames))
    assert decoded == frames
    assert decoder.pending_bytes == 0


@settings(deadline=None, max_examples=40)
@given(_frames)
def test_byte_at_a_time_decode(frame):
    data = wire.encode(frame)
    decoder = wire.FrameDecoder()
    decoded = []
    for index in range(len(data)):
        decoded.extend(decoder.drain(data[index:index + 1]))
        if index < len(data) - 1:
            assert not decoded, "no frame may surface before its last byte"
    assert decoded == [frame]
    assert decoder.pending_bytes == 0
