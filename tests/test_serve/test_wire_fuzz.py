"""Malformed-wire fuzz suite: hostile bytes never crash the server.

Every case here feeds the live server input that violates the wire
contract -- corrupt framing, hostile length prefixes, mid-frame
disconnects, protocol confusion -- and asserts the malformed-input
policy of :mod:`repro.serve.tcp`:

* corrupt **binary framing** is fatal for the connection: one ERROR frame
  (request_op 0) where a reply is still possible, then a clean close --
  a corrupted byte stream cannot be resynchronised;
* structurally valid frames that are **not requests** (a client echoing
  reply ops) get a structured error and the connection *continues*;
* semantically invalid requests (empty batches, ghost streams) get an
  error reply and the connection continues;
* a dropped connection -- even mid-frame, even with open sessions --
  never orphans a session (``live_sessions`` returns to 0);
* through all of it the server itself keeps serving.

The suite drives 20+ malformed cases against one shared server and ends
with a health check proving the full request cycle still works.
"""

import json
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.serve import AnomalyService, AnomalyTCPServer, BinaryClient, \
    ServiceConfig, TCPClient, wire

from test_tcp import ServerThread

N_CHANNELS = 3      # the conftest ``detectors`` fixture's channel count


def _frame(op, payload=b"", *, magic=wire.MAGIC, version=wire.VERSION,
           length=None):
    """Hand-assemble a frame, optionally lying in any header field."""
    if length is None:
        length = len(payload)
    return wire.HEADER.pack(magic, version, op, length) + payload


def _push_payload(stream, n_samples, n_channels, data=None):
    """A PUSH payload whose declared block shape need not match ``data``."""
    if data is None:
        data = np.zeros((n_samples, n_channels), dtype="<f4").tobytes()
    return (struct.pack("<H", len(stream)) + stream.encode("utf-8")
            + struct.pack("<IH", n_samples, n_channels) + data)


def _random_junk(seed, size=512):
    rng = np.random.default_rng(seed)
    body = rng.integers(0, 256, size=size, dtype=np.uint16) \
        .astype(np.uint8).tobytes()
    return b"\xab" + body      # 0xAB: negotiate binary, then garbage


# --------------------------------------------------------------------------- #
# Raw connection helpers
# --------------------------------------------------------------------------- #
class RawBinary:
    """A raw socket speaking hand-assembled binary frames."""

    def __init__(self, port, timeout_s=5.0):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=timeout_s)
        self.decoder = wire.FrameDecoder()

    def send(self, data):
        self.sock.sendall(data)

    def recv_frame(self):
        frames = self.decoder.drain()
        while not frames:
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                raise AssertionError("connection closed while awaiting a reply")
            frames = self.decoder.drain(chunk)
        frame, *rest = frames
        self.decoder._buffer[:0] = b"".join(wire.encode(f) for f in rest)
        return frame

    def drain_until_closed(self):
        """Half-close, then collect every frame until the server hangs up."""
        self.sock.shutdown(socket.SHUT_WR)
        frames = []
        while True:
            try:
                chunk = self.sock.recv(1 << 16)
            except socket.timeout:
                raise AssertionError(
                    "server neither replied nor closed the connection")
            if not chunk:
                return frames
            frames.extend(self.decoder.drain(chunk))

    def close(self):
        self.sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


@pytest.fixture(scope="module")
def fuzz_server(detectors):
    with ServerThread(detectors["VARADE"]) as server:
        yield server


def _assert_healthy(server):
    """The full request cycle still works and no session is orphaned."""
    with TCPClient(port=server.port, timeout_s=5.0) as client:
        assert client.ping()["ok"]
        client.open("health-probe")
        client.push("health-probe", [0.0] * N_CHANNELS)
        summary = client.close_stream("health-probe")
        assert summary["samples_pushed"] == 1
        for _ in range(100):
            if client.stats()["live_sessions"] == 0:
                break
            time.sleep(0.01)
        assert client.stats()["live_sessions"] == 0, "orphaned session"


# --------------------------------------------------------------------------- #
# Fatal framing corruption: >= one ERROR (request_op 0) or silent close
# --------------------------------------------------------------------------- #
FATAL_CASES = [
    ("bad-magic",
     b"\xabXYZ" + bytes(6)),
    ("bad-version",
     _frame(wire.OP_PING, version=99)),
    ("unknown-op",
     _frame(0x7F)),
    ("length-prefix-0xFFFFFFFF",
     _frame(wire.OP_PUSH, length=0xFFFFFFFF)),
    ("length-prefix-max-payload-plus-1",
     _frame(wire.OP_PUSH, length=wire.MAX_PAYLOAD + 1)),
    ("truncated-header-then-eof",
     wire.MAGIC + bytes([wire.VERSION])),
    ("truncated-payload-then-eof",
     _frame(wire.OP_OPEN, length=100) + b"ten bytes."),
    ("push-declares-more-samples-than-carried",
     _frame(wire.OP_PUSH, _push_payload(
         "s", 8, N_CHANNELS, data=b"\x00" * 12))),
    ("push-carries-trailing-bytes",
     _frame(wire.OP_PUSH, _push_payload(
         "s", 1, N_CHANNELS) + b"trailing")),
    ("push-huge-sample-count-tiny-payload",
     _frame(wire.OP_PUSH, _push_payload(
         "s", 2**31 - 1, N_CHANNELS, data=b"\x00" * 8))),
    ("stream-id-length-exceeds-payload",
     _frame(wire.OP_OPEN, struct.pack("<H", 1000) + b"short")),
    ("stream-id-invalid-utf8",
     _frame(wire.OP_OPEN,
            struct.pack("<H", 4) + b"\xff\xfe\xfd\xfc" + struct.pack("<q", -1))),
    ("zero-length-open-payload",
     _frame(wire.OP_OPEN)),
    ("payload-on-payloadless-ping",
     _frame(wire.OP_PING, b"abc")),
    ("close-payload-with-trailing-bytes",
     _frame(wire.OP_CLOSE, struct.pack("<H", 1) + b"s" + b"extra")),
    ("json-text-after-binary-negotiation",
     b"\xab" + b'{"op": "ping"}\n'),
    ("seeded-random-junk-1", _random_junk(1)),
    ("seeded-random-junk-2", _random_junk(2)),
    ("seeded-random-junk-3", _random_junk(3, size=2048)),
]


@pytest.mark.parametrize(
    "payload", [case for _, case in FATAL_CASES],
    ids=[name for name, _ in FATAL_CASES])
def test_fatal_framing_corruption_closes_cleanly(fuzz_server, payload):
    with RawBinary(fuzz_server.port) as conn:
        conn.send(payload)
        frames = conn.drain_until_closed()
    # A reply is optional (EOF mid-frame leaves nothing to answer), but
    # whatever came back must be structured errors pinned to "unknown
    # request" -- never a crash, never a truncated/garbage frame.
    for frame in frames:
        assert isinstance(frame, wire.ErrorReply)
        assert frame.request_op == 0
        assert frame.message
    _assert_healthy(fuzz_server)


# --------------------------------------------------------------------------- #
# Well-framed but not a request: structured error, connection continues
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("frame", [
    wire.PingAck(),
    wire.PushAck(accepted=3),
    wire.AlarmEvent("spoof", 7, 9.9, threshold=None),
    wire.ErrorReply(0, "client thinks it is a server"),
], ids=lambda frame: type(frame).__name__)
def test_reply_ops_from_client_get_error_but_connection_survives(
        fuzz_server, frame):
    with RawBinary(fuzz_server.port) as conn:
        conn.send(wire.encode(frame))
        reply = conn.recv_frame()
        assert isinstance(reply, wire.ErrorReply)
        assert "not a request op" in reply.message
        # Framing never desynchronised: the next request works.
        conn.send(wire.encode(wire.Ping()))
        assert isinstance(conn.recv_frame(), wire.PingAck)
    _assert_healthy(fuzz_server)


# --------------------------------------------------------------------------- #
# Valid framing, invalid semantics: error reply, connection continues
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("frame, expect", [
    (wire.Push("empty", np.empty((0, N_CHANNELS), dtype=np.float32)),
     "non-empty"),
    (wire.Close("ghost-stream"), "ghost-stream"),
], ids=["empty-batch-push", "close-of-never-opened-stream"])
def test_semantic_errors_are_replies_not_disconnects(fuzz_server, frame,
                                                     expect):
    with RawBinary(fuzz_server.port) as conn:
        conn.send(wire.encode(frame))
        reply = conn.recv_frame()
        assert isinstance(reply, wire.ErrorReply)
        assert expect in reply.message
        conn.send(wire.encode(wire.Ping()))
        assert isinstance(conn.recv_frame(), wire.PingAck)
    _assert_healthy(fuzz_server)


def test_zero_channel_push_is_rejected_without_disconnect(fuzz_server):
    with RawBinary(fuzz_server.port) as conn:
        conn.send(_frame(wire.OP_PUSH, _push_payload("s", 1, 0, data=b"")))
        reply = conn.recv_frame()
        assert isinstance(reply, wire.ErrorReply)
        conn.send(wire.encode(wire.Ping()))
        assert isinstance(conn.recv_frame(), wire.PingAck)
    _assert_healthy(fuzz_server)


# --------------------------------------------------------------------------- #
# Session cleanup under hostile disconnects
# --------------------------------------------------------------------------- #
def test_mid_frame_disconnect_with_open_session_orphans_nothing(fuzz_server):
    """Regression: a producer that dies mid-frame, with a session open and
    samples in flight, must not leak the session."""
    with RawBinary(fuzz_server.port) as conn:
        conn.send(wire.encode(wire.Open("doomed")))
        assert isinstance(conn.recv_frame(), wire.OpenAck)
        block = np.zeros((4, N_CHANNELS), dtype=np.float32)
        conn.send(wire.encode(wire.Push("doomed", block)))
        assert isinstance(conn.recv_frame(), wire.PushAck)
        # Start a frame, never finish it, vanish.
        conn.send(_frame(wire.OP_PUSH, length=5000) + b"\x00" * 40)
    with BinaryClient(port=fuzz_server.port, timeout_s=5.0) as probe:
        for _ in range(200):
            if probe.stats()["live_sessions"] == 0:
                break
            time.sleep(0.01)
        assert probe.stats()["live_sessions"] == 0, \
            "mid-frame disconnect orphaned its session"
    _assert_healthy(fuzz_server)


def test_abrupt_disconnect_between_frames_orphans_nothing(fuzz_server):
    with RawBinary(fuzz_server.port) as conn:
        conn.send(wire.encode(wire.Open("vanish")))
        assert isinstance(conn.recv_frame(), wire.OpenAck)
    with BinaryClient(port=fuzz_server.port, timeout_s=5.0) as probe:
        for _ in range(200):
            if probe.stats()["live_sessions"] == 0:
                break
            time.sleep(0.01)
        assert probe.stats()["live_sessions"] == 0
    _assert_healthy(fuzz_server)


# --------------------------------------------------------------------------- #
# Protocol restriction: a disabled protocol gets one error, then close
# --------------------------------------------------------------------------- #
class RestrictedServerThread(ServerThread):
    """ServerThread accepting only a subset of protocols."""

    def __init__(self, detector, protocols):
        service = AnomalyService(
            detector, config=ServiceConfig(max_batch=8, max_delay_ms=1.0))
        self.server = AnomalyTCPServer(service, port=0, protocols=protocols)
        self._port_ready = threading.Event()
        self.port = None
        self.thread = threading.Thread(target=self._run, daemon=True)


def test_binary_bytes_on_a_json_only_server(detectors):
    with RestrictedServerThread(detectors["VARADE"],
                                protocols=("json",)) as server:
        with RawBinary(server.port) as conn:
            conn.send(wire.encode(wire.Ping()))
            frames = conn.drain_until_closed()
        assert len(frames) == 1
        assert isinstance(frames[0], wire.ErrorReply)
        assert "binary" in frames[0].message
        # The JSON path is unaffected.
        with TCPClient(port=server.port, timeout_s=5.0) as client:
            assert client.ping()["ok"]


def test_json_line_on_a_binary_only_server(detectors):
    with RestrictedServerThread(detectors["VARADE"],
                                protocols=("binary",)) as server:
        try:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=5.0) as raw:
                raw.sendall(b'{"op": "ping"}\n')
                reader = raw.makefile("rb")
                reply = json.loads(reader.readline())
                assert not reply["ok"]
                assert "json" in reply["error"]
                assert reader.readline() == b"", "connection should be closed"
            # The binary path is unaffected.
            with BinaryClient(port=server.port, timeout_s=5.0) as client:
                assert client.ping()["ok"]
        finally:
            server.server.request_stop()   # JSON shutdown is disabled here
