"""Stream/schedule helpers shared by the serving-API test modules."""

import numpy as np

N_CHANNELS = 3
WINDOW = 8
STREAM_LENGTHS = (60, 50, 40, 25)


def make_stream(n_samples, seed, anomaly=False):
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / 20.0
    data = np.stack(
        [np.sin(2 * np.pi * (0.4 + 0.2 * c) * t + c) + 0.05 * rng.normal(size=n_samples)
         for c in range(N_CHANNELS)],
        axis=1,
    )
    labels = np.zeros(n_samples, dtype=np.int64)
    if anomaly:
        start = n_samples // 2
        data[start:start + 6] += rng.normal(0.0, 2.0, size=(6, N_CHANNELS))
        labels[start:start + 6] = 1
    return data, labels


def unaligned_schedule(lengths, seed):
    """A bursty, unaligned arrival order over per-stream sample indices.

    Returns ``(stream, index)`` pairs covering every sample of every stream
    exactly once, with per-stream order preserved -- the ingestion pattern a
    real fleet produces and the lockstep runtime cannot model.
    """
    rng = np.random.default_rng(seed)
    cursors = [0] * len(lengths)
    remaining = list(lengths)
    schedule = []
    while any(remaining):
        live = [s for s, left in enumerate(remaining) if left]
        stream = int(rng.choice(live))
        # Bursts: a stream delivers 1-4 consecutive samples at once.
        for _ in range(int(rng.integers(1, 5))):
            if not remaining[stream]:
                break
            schedule.append((stream, cursors[stream]))
            cursors[stream] += 1
            remaining[stream] -= 1
    return schedule
