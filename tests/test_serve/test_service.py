"""AnomalyService behaviour: backpressure, event streams, telemetry."""

import asyncio

import numpy as np
import pytest

from repro.core import ThresholdCalibrator
from repro.serve import AnomalyService, QueueFullError, ServiceConfig

from serve_helpers import make_stream


def _calibrated(detectors, train_stream, name="kNN", quantile=0.9):
    detector = detectors[name]
    scores = detector.score_stream(train_stream).valid_scores()
    return detector, ThresholdCalibrator(quantile=quantile).calibrate(scores)


class TestBackpressure:
    def test_block_waits_and_loses_nothing(self, detectors):
        """A pusher overrunning the queue blocks until the scheduler drains;
        every sample still gets scored exactly once."""
        detector = detectors["VARADE"]
        data, _ = make_stream(60, seed=21)

        async def main():
            config = ServiceConfig(max_batch=4, max_delay_ms=1.0, max_queue=2,
                                   backpressure="block", record_sessions=True)
            async with AnomalyService(detector, config=config) as service:
                for row in data:
                    await service.push("s0", row)
                session = service.session("s0")
                await service.close_session("s0")
                return session, service.stats()

        session, stats = asyncio.run(main())
        assert session.samples_scored == len(data) - detector.window + 1
        assert session.samples_dropped == 0
        assert stats.samples_dropped == 0

    def test_drop_oldest_sheds_but_keeps_newest(self, detectors):
        """With a tiny queue and no scheduler wake-ups between pushes, the
        oldest windows are shed and the freshest survive with NaN holes."""
        detector = detectors["VARADE"]
        data, _ = make_stream(40, seed=22)

        async def main():
            config = ServiceConfig(max_batch=64, max_delay_ms=10_000.0,
                                   max_queue=2, backpressure="drop_oldest",
                                   record_sessions=True)
            service = AnomalyService(detector, config=config)
            await service.start()
            # Push everything in one tight loop: the huge max_delay keeps the
            # scheduler from flushing, so the queue bound does the work.
            for row in data:
                await service.push("s0", row)
            session = service.session("s0")
            await service.close_session("s0")   # drains the survivors
            await service.stop()
            return session

        session = asyncio.run(main())
        submitted = len(data) - detector.window + 1
        assert session.samples_dropped == submitted - 2
        assert session.samples_scored == 2
        scores = session.result().scores
        # The two surviving scores are the newest two windows.
        assert np.isfinite(scores[-2:]).all()
        assert np.isnan(scores[detector.window - 1:-2]).all()

    def test_reject_raises_and_stream_continues(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(40, seed=23)

        async def main():
            config = ServiceConfig(max_batch=64, max_delay_ms=10_000.0,
                                   max_queue=2, backpressure="reject",
                                   record_sessions=True)
            service = AnomalyService(detector, config=config)
            await service.start()
            rejects = 0
            for row in data:
                try:
                    await service.push("s0", row)
                except QueueFullError:
                    rejects += 1
            session = service.session("s0")
            await service.close_session("s0")
            await service.stop()
            return session, rejects

        session, rejects = asyncio.run(main())
        submitted = len(data) - detector.window + 1
        assert rejects == submitted - 2
        assert session.samples_scored == 2
        assert session.samples_dropped == rejects
        # Rejected samples still advanced the window: the two scored ones
        # are the *oldest* two windows (later ones were refused).
        scores = session.result().scores
        assert np.isfinite(scores[detector.window - 1:
                                  detector.window + 1]).all()


class TestEventStreams:
    def test_events_and_alarms_streams(self, detectors, train_stream):
        detector, threshold = _calibrated(detectors, train_stream)
        data, _ = make_stream(50, seed=24)
        data[30:33] += 30.0

        async def main():
            service = AnomalyService(
                detector, threshold=threshold,
                config=ServiceConfig(max_batch=8, max_delay_ms=1.0))
            await service.start()
            events, alarms = [], []

            async def consume_events():
                async for event in service.events():
                    events.append(event)

            async def consume_alarms():
                async for alarm in service.alarms():
                    alarms.append(alarm)

            tasks = [asyncio.create_task(consume_events()),
                     asyncio.create_task(consume_alarms())]
            await asyncio.sleep(0)          # let the subscribers register
            for row in data:
                await service.push("s0", row)
            await service.close_session("s0")
            await service.stop()
            await asyncio.gather(*tasks)
            return events, alarms

        events, alarms = asyncio.run(main())
        expected = len(data) - detector.window \
            + (1 if detector.scores_current_sample else 0)
        assert len(events) == expected
        assert all(alarm.alarm for alarm in alarms)
        assert {alarm.index for alarm in alarms} >= {30, 31, 32}
        assert len(alarms) == sum(event.alarm for event in events)
        # events arrive in per-session order
        indices = [event.index for event in events]
        assert indices == sorted(indices)

    def test_slow_consumer_drops_oldest_events_not_scoring(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(60, seed=25)

        async def main():
            service = AnomalyService(
                detector,
                config=ServiceConfig(max_batch=8, max_delay_ms=1.0,
                                     event_buffer=4))
            await service.start()
            # Subscribe but do not consume until after the run.
            iterator = service.events().__aiter__()
            consumed = asyncio.create_task(iterator.__anext__())
            await asyncio.sleep(0)
            for row in data:
                await service.push("s0", row)
            await service.stop()
            received = [await consumed]
            try:
                while True:
                    received.append(await asyncio.wait_for(
                        iterator.__anext__(), timeout=1.0))
            except StopAsyncIteration:
                pass
            return received, service.stats()

        received, stats = asyncio.run(main())
        # Scoring never stalled; the slow consumer kept only the newest few.
        assert stats.samples_scored == len(data) - detector.window + 1
        assert len(received) <= 4
        if received:
            assert received[-1].index == len(data) - 1


class TestServiceGuards:
    def test_channel_mismatch_is_rejected(self, detectors):
        detector = detectors["VARADE"]

        async def main():
            async with AnomalyService(detector) as service:
                await service.push("a", np.zeros(3))
                with pytest.raises(ValueError, match="channels"):
                    await service.push("b", np.zeros(5))

        asyncio.run(main())

    def test_push_requires_session_without_auto_open(self, detectors):
        detector = detectors["VARADE"]

        async def main():
            service = AnomalyService(detector, auto_open=False)
            await service.start()
            with pytest.raises(KeyError, match="auto_open"):
                await service.push("ghost", np.zeros(3))
            await service.stop()

        asyncio.run(main())

    def test_scoring_failure_fails_loudly_not_silently(self, detectors):
        """A poisoned batch (mis-shaped samples) must not wedge the service:
        blocked pushers wake, later calls raise with the original error."""
        detector = detectors["VARADE"]   # trained on 3 channels

        async def main():
            service = AnomalyService(
                detector,
                config=ServiceConfig(max_batch=4, max_delay_ms=0.5))
            await service.start()
            # 5-channel samples pass the cross-stream consistency check
            # (first push sets the width) but explode inside the detector.
            for index in range(detector.window + 4):
                try:
                    await service.push("bad", np.full(5, float(index)))
                except RuntimeError:
                    break
                await asyncio.sleep(0.002)   # let the scheduler flush
            with pytest.raises(RuntimeError, match="failed while scoring"):
                for _ in range(200):
                    await service.push("bad", np.full(5, 1.0))
                    await asyncio.sleep(0.002)
            with pytest.raises(RuntimeError, match="failed while scoring"):
                async for _ in service.events():
                    pass
            with pytest.raises(RuntimeError, match="cannot be restarted"):
                await service.start()
            await service.stop()   # still safe to call

        asyncio.run(main())

    def test_failing_stop_drain_unwedges_everyone(self, detectors):
        """A scoring error in stop()'s final drain must run the same _fail
        path as a scheduler crash: the error surfaces and nothing hangs."""
        detector = detectors["VARADE"]   # trained on 3 channels

        async def main():
            service = AnomalyService(
                detector,
                config=ServiceConfig(max_batch=1024, max_delay_ms=600_000.0))
            await service.start()
            for index in range(detector.window + 2):
                await service.push("bad", np.full(5, float(index)))
            with pytest.raises(Exception):
                await service.stop()           # drain hits the poisoned batch
            with pytest.raises(RuntimeError, match="failed while scoring"):
                await service.push("bad", np.full(5, 0.0))
            await service.stop()               # reap is still safe

        asyncio.run(main())

    def test_subscribe_after_stop_raises(self, detectors):
        detector = detectors["VARADE"]

        async def main():
            service = AnomalyService(detector)
            await service.start()
            await service.stop()
            with pytest.raises(RuntimeError, match="not running"):
                async for _ in service.alarms():
                    pass

        asyncio.run(main())

    def test_push_after_stop_raises(self, detectors):
        detector = detectors["VARADE"]

        async def main():
            service = AnomalyService(detector)
            await service.start()
            await service.stop()
            with pytest.raises(RuntimeError, match="not running"):
                await service.push("s0", np.zeros(3))

        asyncio.run(main())

    def test_stats_histograms_populate(self, detectors):
        detector = detectors["VARADE"]
        data, _ = make_stream(50, seed=26)

        async def main():
            async with AnomalyService(
                    detector,
                    config=ServiceConfig(max_batch=8, max_delay_ms=1.0)) \
                    as service:
                for row in data:
                    await service.push("s0", row)
                    await service.push("s1", row)
                await asyncio.sleep(0.05)
                return service.stats()

        stats = asyncio.run(main())
        assert stats.samples_scored > 0
        assert stats.flushes > 0
        assert stats.queue_delay_histogram.count == stats.samples_scored
        assert stats.occupancy_histogram.count == stats.flushes
        assert np.isfinite(stats.queue_delay_p99_s)
        assert 1.0 <= stats.mean_batch_size <= 16.0

    def test_fresh_service_stats_are_finite_zeros(self, detectors):
        """Regression: zero-sample histograms used to report nan, which
        leaked into ServiceStats (and from there into the JSON TCP stats
        reply as a non-compliant token)."""
        detector = detectors["VARADE"]

        async def main():
            async with AnomalyService(detector) as service:
                return service.stats()

        stats = asyncio.run(main())
        assert stats.samples_pushed == 0
        assert stats.queue_delay_p99_s == 0.0
        assert stats.mean_batch_size == 0.0
        assert stats.queue_delay_histogram.summary() == {
            "count": 0.0, "mean": 0.0, "min": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }
