"""MultiStreamRuntime is deprecated in favour of repro.serve.AnomalyService."""

import warnings

from repro.edge import MultiStreamRuntime


class _StubDetector:
    """Construction only needs an object; scoring never happens here."""


def test_construction_emits_a_deprecation_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        MultiStreamRuntime(_StubDetector())
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "AnomalyService" in message
    assert "repro.serve" in message


def test_warning_points_at_the_caller():
    """stacklevel=2: the warning's location is this file, not fleet.py."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        MultiStreamRuntime(_StubDetector())
    (warning,) = [w for w in caught
                  if issubclass(w.category, DeprecationWarning)]
    assert warning.filename == __file__
