"""Tests for the edge device models and the metric estimator."""

import numpy as np
import pytest

from repro.core.detector import InferenceCost
from repro.edge import (
    DEVICES,
    EdgeEstimator,
    JETSON_AGX_ORIN,
    JETSON_XAVIER_NX,
    get_device,
)
from repro.eval import paper_scale_costs


class TestDeviceSpecs:
    def test_known_devices(self):
        assert "Jetson Xavier NX" in DEVICES
        assert "Jetson AGX Orin" in DEVICES

    def test_get_device_by_substring(self):
        assert get_device("xavier").name == "Jetson Xavier NX"
        assert get_device("Jetson AGX Orin").name == "Jetson AGX Orin"

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("raspberry pi")

    def test_orin_is_faster_than_xavier(self):
        assert JETSON_AGX_ORIN.gpu_gflops_effective > JETSON_XAVIER_NX.gpu_gflops_effective
        assert JETSON_AGX_ORIN.cpu_cores > JETSON_XAVIER_NX.cpu_cores
        assert JETSON_AGX_ORIN.memory_bandwidth_gbps > JETSON_XAVIER_NX.memory_bandwidth_gbps

    def test_idle_points_match_paper_table2(self):
        assert JETSON_XAVIER_NX.idle_power_w == pytest.approx(5.851)
        assert JETSON_AGX_ORIN.idle_power_w == pytest.approx(7.522)
        assert JETSON_XAVIER_NX.idle_ram_mb == pytest.approx(5130.219)

    def test_describe(self):
        assert "cores" in JETSON_XAVIER_NX.describe()


class TestEstimator:
    def _cost(self, **overrides):
        base = dict(flops=1e8, parameter_bytes=4e6, activation_bytes=1e6,
                    gpu_fraction=0.9, parallel_efficiency=0.8, n_kernel_launches=10)
        base.update(overrides)
        return InferenceCost(**base)

    def test_latency_positive_and_frequency_consistent(self):
        estimator = EdgeEstimator(JETSON_XAVIER_NX)
        cost = self._cost()
        latency = estimator.inference_latency(cost)
        assert latency > 0
        assert estimator.inference_frequency(cost) == pytest.approx(1.0 / latency)

    def test_more_flops_means_slower(self):
        estimator = EdgeEstimator(JETSON_XAVIER_NX)
        slow = estimator.inference_latency(self._cost(flops=1e11))
        fast = estimator.inference_latency(self._cost(flops=1e7))
        assert slow > fast

    def test_orin_is_faster_for_the_same_model(self):
        cost = self._cost()
        xavier = EdgeEstimator(JETSON_XAVIER_NX).inference_latency(cost)
        orin = EdgeEstimator(JETSON_AGX_ORIN).inference_latency(cost)
        assert orin < xavier

    def test_power_never_below_idle(self):
        estimator = EdgeEstimator(JETSON_XAVIER_NX)
        metrics = estimator.estimate(self._cost(), "model")
        assert metrics.power_w >= JETSON_XAVIER_NX.idle_power_w

    def test_cpu_only_model_keeps_gpu_idle(self):
        estimator = EdgeEstimator(JETSON_AGX_ORIN)
        metrics = estimator.estimate(self._cost(gpu_fraction=0.0), "cpu-model")
        assert metrics.gpu_percent == JETSON_AGX_ORIN.idle_gpu_percent
        assert metrics.gpu_ram_mb == pytest.approx(JETSON_AGX_ORIN.idle_gpu_ram_mb)

    def test_gpu_model_allocates_gpu_ram(self):
        estimator = EdgeEstimator(JETSON_XAVIER_NX)
        metrics = estimator.estimate(self._cost(gpu_fraction=0.95), "gpu-model")
        assert metrics.gpu_ram_mb > JETSON_XAVIER_NX.idle_gpu_ram_mb

    def test_rate_cap_reduces_power(self):
        estimator = EdgeEstimator(JETSON_XAVIER_NX)
        heavy = self._cost(flops=5e9)
        uncapped = estimator.estimate(heavy, "m")
        capped = estimator.estimate(heavy, "m", max_rate_hz=1.0)
        assert capped.power_w <= uncapped.power_w + 1e-9

    def test_as_row_contains_table2_columns(self):
        metrics = EdgeEstimator(JETSON_XAVIER_NX).estimate(self._cost(), "VARADE")
        row = metrics.as_row()
        for key in ("board", "model", "cpu_percent", "gpu_percent", "ram_mb",
                    "gpu_ram_mb", "power_w", "inference_hz"):
            assert key in row


class TestPaperScaleTradeoff:
    """The reproduced Table-2 *shape*: ranking of the paper-scale detectors."""

    @pytest.fixture(scope="class")
    def frequencies(self):
        costs = paper_scale_costs()
        result = {}
        for device in (JETSON_XAVIER_NX, JETSON_AGX_ORIN):
            estimator = EdgeEstimator(device)
            result[device.name] = {
                name: estimator.estimate(cost, name, max_rate_hz=200.0)
                for name, cost in costs.items()
            }
        return result

    def test_gbrf_is_fastest_on_both_boards(self, frequencies):
        for device, metrics in frequencies.items():
            fastest = max(metrics.values(), key=lambda m: m.inference_frequency_hz)
            assert fastest.detector == "GBRF", device

    def test_varade_is_second_fastest(self, frequencies):
        for device, metrics in frequencies.items():
            ranked = sorted(metrics.values(), key=lambda m: -m.inference_frequency_hz)
            assert ranked[1].detector == "VARADE", device

    def test_ae_and_knn_are_slowest_on_xavier(self, frequencies):
        ranked = sorted(frequencies["Jetson Xavier NX"].values(),
                        key=lambda m: m.inference_frequency_hz)
        assert {ranked[0].detector, ranked[1].detector} == {"AE", "kNN"}

    def test_ar_lstm_draws_most_power_on_xavier(self, frequencies):
        metrics = frequencies["Jetson Xavier NX"]
        assert max(metrics.values(), key=lambda m: m.power_w).detector == "AR-LSTM"

    def test_knn_is_cpu_bound(self, frequencies):
        for device, metrics in frequencies.items():
            knn = metrics["kNN"]
            others = [m.cpu_percent for name, m in metrics.items() if name != "kNN"]
            assert knn.cpu_percent > np.median(others), device

    def test_orin_roughly_doubles_every_frequency(self, frequencies):
        for name in frequencies["Jetson Xavier NX"]:
            xavier = frequencies["Jetson Xavier NX"][name].inference_frequency_hz
            orin = frequencies["Jetson AGX Orin"][name].inference_frequency_hz
            assert 1.2 < orin / xavier < 4.5, name

    def test_varade_frequency_within_2x_of_paper(self, frequencies):
        assert 7.0 < frequencies["Jetson Xavier NX"]["VARADE"].inference_frequency_hz < 30.0
        assert 13.0 < frequencies["Jetson AGX Orin"]["VARADE"].inference_frequency_hz < 53.0
