"""Tests for the streaming runtime and the board monitor."""

import json
import math

import numpy as np
import pytest

from repro.core import ThresholdCalibrator, TrainingConfig, VaradeConfig, VaradeDetector
from repro.core.detector import InferenceCost
from repro.data import StreamReader
from repro.edge import (
    BoardMonitor,
    EdgeEstimator,
    JETSON_XAVIER_NX,
    StreamingResult,
    StreamingRuntime,
)


@pytest.fixture(scope="module")
def detector_and_stream():
    rng = np.random.default_rng(0)
    t = np.arange(500) / 50.0
    envelope = 0.03 + 0.2 * np.abs(np.sin(2 * np.pi * 0.1 * t))
    data = np.stack([np.sin(2 * np.pi * 0.5 * t + c) + envelope * rng.normal(0, 1.0, t.size)
                     for c in range(4)], axis=1)
    labels = np.zeros(t.size, dtype=np.int64)
    data[300:330] += rng.normal(0.0, 2.0, size=(30, 4))
    labels[300:330] = 1
    config = VaradeConfig(n_channels=4, window=16, base_feature_maps=4)
    training = TrainingConfig(epochs=8, mean_warmup_epochs=3, learning_rate=3e-3,
                              variance_finetune_epochs=12, max_train_windows=220)
    detector = VaradeDetector(config, training).fit(data[:250])
    return detector, data, labels


class TestStreamingRuntime:
    def test_streaming_scores_match_batch_scoring(self, detector_and_stream):
        detector, data, labels = detector_and_stream
        reader = StreamReader(data, labels=labels, sample_rate=50.0)
        result = StreamingRuntime(detector).run(reader)
        batch = detector.score_stream(data)
        valid = np.isfinite(result.scores) & np.isfinite(batch.scores)
        np.testing.assert_allclose(result.scores[valid], batch.scores[valid], rtol=1e-9)

    def test_latencies_recorded(self, detector_and_stream):
        detector, data, labels = detector_and_stream
        reader = StreamReader(data[:100], sample_rate=50.0)
        result = StreamingRuntime(detector).run(reader)
        assert result.samples_scored == result.latencies_s.shape[0] > 0
        assert result.mean_latency_s > 0
        assert result.host_inference_hz > 0

    def test_max_samples_limits_work(self, detector_and_stream):
        detector, data, labels = detector_and_stream
        reader = StreamReader(data, sample_rate=50.0)
        result = StreamingRuntime(detector).run(reader, max_samples=20)
        assert result.samples_scored == 20

    def test_threshold_produces_alarms_during_anomaly(self, detector_and_stream):
        detector, data, labels = detector_and_stream
        normal_scores = detector.score_stream(data[:250]).valid_scores()
        threshold = ThresholdCalibrator(quantile=0.95).calibrate(normal_scores)
        reader = StreamReader(data, labels=labels, sample_rate=50.0)
        result = StreamingRuntime(detector, threshold=threshold).run(reader)
        anomalous = labels.astype(bool)
        assert result.alarms[anomalous].mean() > result.alarms[~anomalous].mean()


class TestStreamingResultLatency:
    @staticmethod
    def _result(latencies):
        latencies = np.asarray(latencies, dtype=np.float64)
        n = max(latencies.size, 1)
        return StreamingResult(
            detector="x",
            scores=np.full(n, np.nan),
            labels=np.zeros(n, dtype=np.int64),
            alarms=np.zeros(n, dtype=np.int64),
            latencies_s=latencies,
            samples_scored=int(latencies.size),
        )

    def test_empty_run_reports_nan(self):
        result = self._result([])
        assert np.isnan(result.mean_latency_s)
        assert np.isnan(result.host_inference_hz)

    def test_zero_latency_run_reports_inf_not_nan(self):
        """Regression: a sub-timer-resolution run used to fall through the old
        ``mean and ...`` truthiness check and report nan Hz, indistinguishable
        from a run that scored nothing."""
        result = self._result([0.0, 0.0, 0.0])
        assert result.mean_latency_s == 0.0
        assert result.host_inference_hz == float("inf")

    def test_positive_latencies_report_reciprocal_hz(self):
        result = self._result([0.01, 0.03])
        assert result.mean_latency_s == pytest.approx(0.02)
        assert result.host_inference_hz == pytest.approx(50.0)


class TestBoardMonitor:
    def test_idle_session_matches_spec(self):
        monitor = BoardMonitor(JETSON_XAVIER_NX, poll_rate_hz=2.0, relative_noise=0.01,
                               rng=np.random.default_rng(0))
        session = monitor.observe_idle(duration_s=30.0)
        summary = session.mean()
        assert summary["power_w"] == pytest.approx(JETSON_XAVIER_NX.idle_power_w, rel=0.05)
        assert summary["ram_mb"] == pytest.approx(JETSON_XAVIER_NX.idle_ram_mb, rel=0.05)

    def test_run_session_tracks_operating_point(self):
        cost = InferenceCost(flops=1e8, parameter_bytes=4e6, activation_bytes=1e6)
        operating_point = EdgeEstimator(JETSON_XAVIER_NX).estimate(cost, "VARADE")
        monitor = BoardMonitor(JETSON_XAVIER_NX, relative_noise=0.02,
                               rng=np.random.default_rng(1))
        session = monitor.observe_run(operating_point, duration_s=20.0)
        assert session.detector == "VARADE"
        assert session.mean()["power_w"] == pytest.approx(operating_point.power_w, rel=0.1)

    def test_empty_session_mean_raises(self):
        monitor = BoardMonitor(JETSON_XAVIER_NX)
        session = monitor.observe_idle(duration_s=0.1)
        assert session.samples  # at least one sample even for short windows
        with pytest.raises(ValueError):
            type(session)(device="x", detector="y").mean()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BoardMonitor(JETSON_XAVIER_NX, poll_rate_hz=0.0)
        with pytest.raises(ValueError):
            BoardMonitor(JETSON_XAVIER_NX, relative_noise=-1.0)


class TestStreamingHistogram:
    def _hist(self):
        from repro.edge import StreamingHistogram

        return StreamingHistogram

    def test_quantiles_track_exact_within_a_bin(self):
        hist = self._hist().log_spaced(1e-6, 10.0)
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-7.0, sigma=1.0, size=5000)
        for value in values:
            hist.add(value)
        assert hist.count == values.size
        assert hist.mean == pytest.approx(values.mean())
        assert hist.min == values.min()
        assert hist.max == values.max()
        for q in (0.5, 0.95, 0.99):
            exact = np.quantile(values, q)
            # log-spaced bins: estimate exact to within one log step
            assert hist.quantile(q) == pytest.approx(exact, rel=0.2)
        assert hist.p50 <= hist.p95 <= hist.p99

    def test_single_value_reports_itself_everywhere(self):
        hist = self._hist().log_spaced()
        hist.add(3.3e-4)
        assert hist.p50 == pytest.approx(3.3e-4)
        assert hist.p99 == pytest.approx(3.3e-4)
        assert hist.min == hist.max == pytest.approx(3.3e-4)

    def test_empty_histogram_reports_zero_everywhere(self):
        """Zero-sample summaries must be finite: they feed JSON stats
        replies, where inf/nan would serialise to non-compliant tokens."""
        hist = self._hist().linear(0.0, 10.0, 5)
        assert hist.p50 == 0.0 and hist.mean == 0.0
        assert hist.min == 0.0 and hist.max == 0.0
        summary = hist.summary()
        assert all(math.isfinite(value) for value in summary.values())
        assert summary == {"count": 0.0, "mean": 0.0, "min": 0.0, "p50": 0.0,
                           "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_merge_with_empty_operands_stays_exact(self):
        """merge() keeps exact extrema whichever side is empty."""
        empty = self._hist().linear(0.0, 1.0, 4)
        full = self._hist().linear(0.0, 1.0, 4)
        full.extend([0.2, 0.8])
        merged = self._hist().linear(0.0, 1.0, 4)
        merged.merge(full)
        merged.merge(empty)
        assert merged.count == 2
        assert merged.min == 0.2 and merged.max == 0.8
        into_empty = self._hist().linear(0.0, 1.0, 4)
        into_empty.merge(empty)
        assert into_empty.count == 0
        assert into_empty.min == 0.0 and into_empty.max == 0.0
        into_empty.merge(full)
        assert into_empty.min == 0.2 and into_empty.max == 0.8

    def test_out_of_range_values_clamp_to_overflow_bins(self):
        hist = self._hist().linear(0.0, 10.0, 5)
        hist.add(-5.0)
        hist.add(50.0)
        assert hist.count == 2
        assert hist.min == -5.0 and hist.max == 50.0
        assert -5.0 <= hist.p50 <= 50.0

    def test_non_finite_values_are_ignored(self):
        hist = self._hist().linear(0.0, 1.0, 4)
        hist.extend([np.nan, np.inf, -np.inf, 0.5])
        assert hist.count == 1

    def test_merge_requires_matching_edges(self):
        a = self._hist().linear(0.0, 1.0, 4)
        b = self._hist().linear(0.0, 1.0, 4)
        a.extend([0.1, 0.2])
        b.extend([0.8, 0.9])
        a.merge(b)
        assert a.count == 4
        with pytest.raises(ValueError, match="different edges"):
            a.merge(self._hist().linear(0.0, 2.0, 4))

    def test_merge_mismatch_message_names_both_layouts(self):
        """The error must say what diverged -- bin counts or which edge --
        so a fleet-aggregation failure is debuggable from the message."""
        a = self._hist().linear(0.0, 1.0, 4)
        with pytest.raises(ValueError, match=r"different bin counts.*"
                                             r"4 bins.*8 bins"):
            a.merge(self._hist().linear(0.0, 1.0, 8))
        with pytest.raises(ValueError, match=r"different edges.*both have "
                                             r"4 bins.*diverge at index"):
            a.merge(self._hist().linear(0.0, 2.0, 4))

    def test_failed_merge_leaves_counts_untouched(self):
        """A rejected merge must not half-apply: the layout check runs
        before any count mutation."""
        a = self._hist().linear(0.0, 1.0, 4)
        a.extend([0.1, 0.6, 0.9])
        before = a.to_state()
        with pytest.raises(ValueError):
            a.merge(self._hist().linear(0.0, 1.0, 8))
        with pytest.raises(ValueError):
            a.merge(self._hist().linear(0.5, 1.5, 4))
        assert a.to_state() == before

    def test_state_round_trip_is_exact(self):
        """to_state()/from_state() must be bit-exact: the cluster snapshot
        op ships histogram state between processes over strict JSON."""
        cls = self._hist()
        hist = cls.linear(0.0, 1.0, 8)
        hist.extend([0.05, 0.31, 0.32, 0.99, -2.0, 7.0])
        state = json.loads(json.dumps(hist.to_state()))
        back = cls.from_state(state)
        assert back.to_state() == hist.to_state()
        assert back.count == hist.count
        assert back.summary() == hist.summary()
        # an empty histogram's inf sentinels must survive strict JSON too
        empty = cls.linear(0.0, 1.0, 4)
        state = json.loads(json.dumps(empty.to_state()))
        assert cls.from_state(state).summary() == empty.summary()

    def test_from_state_rejects_corrupt_payloads(self):
        cls = self._hist()
        good = cls.linear(0.0, 1.0, 4)
        good.add(0.5)
        state = good.to_state()
        short = dict(state, counts=state["counts"][:-1])
        with pytest.raises(ValueError, match="counts"):
            cls.from_state(short)
        negative = dict(state, counts=[-1] + state["counts"][1:])
        with pytest.raises(ValueError, match="negative"):
            cls.from_state(negative)

    def test_rejects_bad_construction(self):
        cls = self._hist()
        with pytest.raises(ValueError):
            cls([1.0])
        with pytest.raises(ValueError):
            cls([1.0, 1.0])
        with pytest.raises(ValueError):
            cls.log_spaced(low=0.0)
        with pytest.raises(ValueError):
            cls.linear(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            cls([0.0, 1.0]).quantile(1.5)
