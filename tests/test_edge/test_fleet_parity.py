"""Score-parity suite: batched multi-stream fleet vs the sequential runtime.

For every detector in the study, :class:`repro.edge.MultiStreamRuntime` must
produce exactly the scores that :class:`repro.edge.StreamingRuntime` produces
when run once per stream -- bit-identical values, the same NaN prefix before
the context window fills, the same ``max_samples`` budget and the same
thresholded alarms.  This is the contract that lets the fleet engine replace
the sequential path everywhere.
"""

import time

import numpy as np
import pytest

from repro.baselines.registry import DETECTOR_NAMES, DetectorRegistry
from repro.core import ThresholdCalibrator
from repro.data import StreamReader
from repro.edge import MultiStreamRuntime, StreamingRuntime

N_CHANNELS = 3
WINDOW = 8
STREAM_LENGTHS = (60, 50, 40, 25)


def _make_stream(n_samples, seed, anomaly=False):
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / 20.0
    data = np.stack(
        [np.sin(2 * np.pi * (0.4 + 0.2 * c) * t + c) + 0.05 * rng.normal(size=n_samples)
         for c in range(N_CHANNELS)],
        axis=1,
    )
    labels = np.zeros(n_samples, dtype=np.int64)
    if anomaly:
        start = n_samples // 2
        data[start:start + 6] += rng.normal(0.0, 2.0, size=(6, N_CHANNELS))
        labels[start:start + 6] = 1
    return data, labels


@pytest.fixture(scope="module")
def train_stream():
    return _make_stream(220, seed=0)[0]


@pytest.fixture(scope="module")
def detectors(train_stream):
    """All six study detectors, trained tiny but through their real code paths."""
    registry = DetectorRegistry(
        n_channels=N_CHANNELS,
        window=WINDOW,
        neural_epochs=1,
        max_train_windows=80,
        varade_feature_maps=2,
        varade_epochs=2,
        varade_warmup_epochs=1,
        lstm_hidden=8,
        seed=0,
    )
    return {spec.name: spec.build().fit(train_stream) for spec in registry.specs()}


@pytest.fixture(scope="module")
def streams():
    """Unequal-length test streams, one with injected anomalies."""
    return [
        _make_stream(length, seed=30 + index, anomaly=index == 0)
        for index, length in enumerate(STREAM_LENGTHS)
    ]


@pytest.fixture(scope="module")
def readers(streams):
    return [StreamReader(data, labels=labels) for data, labels in streams]


class TestScoreParity:
    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_batched_scores_match_sequential(self, detectors, readers, name):
        detector = detectors[name]
        fleet = MultiStreamRuntime(detector).run(readers)
        assert len(fleet) == len(readers)
        for reader, fleet_result in zip(readers, fleet):
            sequential = StreamingRuntime(detector).run(reader)
            # Identical NaN prefix (and any other unscored samples) ...
            np.testing.assert_array_equal(
                np.isnan(fleet_result.scores), np.isnan(sequential.scores)
            )
            # ... and bit-identical scores everywhere else.
            np.testing.assert_allclose(
                fleet_result.scores, sequential.scores,
                rtol=0.0, atol=0.0, equal_nan=True,
            )
            assert fleet_result.samples_scored == sequential.samples_scored
            assert len(fleet_result.latencies_s) == fleet_result.samples_scored

    def test_nan_prefix_length_matches_window_semantics(self, detectors, readers):
        """Window-state detectors score one sample earlier than forecasters."""
        for name, detector in detectors.items():
            fleet = MultiStreamRuntime(detector).run(readers)
            first_valid = int(np.flatnonzero(np.isfinite(fleet[0].scores))[0])
            expected = detector.window - 1 if detector.scores_current_sample \
                else detector.window
            assert first_valid == expected, name

    def test_max_samples_budget_matches_sequential(self, detectors, readers):
        detector = detectors["VARADE"]
        fleet = MultiStreamRuntime(detector).run(readers, max_samples=10)
        for reader, fleet_result in zip(readers, fleet):
            sequential = StreamingRuntime(detector).run(reader, max_samples=10)
            assert fleet_result.samples_scored == sequential.samples_scored <= 10
            np.testing.assert_allclose(
                fleet_result.scores, sequential.scores,
                rtol=0.0, atol=0.0, equal_nan=True,
            )

    def test_threshold_alarms_match_sequential(self, detectors, readers, train_stream):
        detector = detectors["VARADE"]
        normal_scores = detector.score_stream(train_stream).valid_scores()
        threshold = ThresholdCalibrator(quantile=0.9).calibrate(normal_scores)
        fleet = MultiStreamRuntime(detector, threshold=threshold).run(readers)
        for reader, fleet_result in zip(readers, fleet):
            sequential = StreamingRuntime(detector, threshold=threshold).run(reader)
            np.testing.assert_array_equal(fleet_result.alarms, sequential.alarms)


class TestFleetRuntime:
    def test_rejects_empty_fleet(self, detectors):
        with pytest.raises(ValueError):
            MultiStreamRuntime(detectors["VARADE"]).run([])

    def test_rejects_mixed_channel_counts(self, detectors):
        readers = [
            StreamReader(np.zeros((30, N_CHANNELS))),
            StreamReader(np.zeros((30, N_CHANNELS + 1))),
        ]
        with pytest.raises(ValueError, match="channel count"):
            MultiStreamRuntime(detectors["VARADE"]).run(readers)

    def test_stats_account_for_every_scored_sample(self, detectors, readers):
        fleet = MultiStreamRuntime(detectors["VARADE"]).run(readers)
        stats = fleet.stats
        assert stats.n_streams == len(readers)
        assert stats.ticks == max(STREAM_LENGTHS)
        assert stats.samples_scored == sum(r.samples_scored for r in fleet)
        assert stats.batch_sizes.sum() == stats.samples_scored
        assert stats.batch_sizes.max() <= len(readers)
        assert stats.batch_latencies_s.shape == stats.batch_sizes.shape
        assert 0.0 < stats.scoring_time_s <= stats.wall_time_s
        assert stats.samples_per_second > 0.0
        assert 1.0 <= stats.mean_batch_size <= len(readers)

    def test_short_stream_drops_out_of_the_batch(self, detectors, readers):
        """Once the shortest stream ends, batches shrink but scoring goes on."""
        fleet = MultiStreamRuntime(detectors["VARADE"]).run(readers)
        assert fleet.stats.batch_sizes[0] == len(readers)
        assert fleet.stats.batch_sizes[-1] == 1  # only the longest stream left
        shortest = int(np.argmin(STREAM_LENGTHS))
        assert fleet[shortest].samples_scored < fleet[0].samples_scored

    def test_single_stream_fleet_degenerates_to_sequential(self, detectors, readers):
        detector = detectors["AE"]
        fleet = MultiStreamRuntime(detector).run(readers[:1])
        sequential = StreamingRuntime(detector).run(readers[0])
        np.testing.assert_allclose(
            fleet[0].scores, sequential.scores, rtol=0.0, atol=0.0, equal_nan=True,
        )

    def test_mid_run_exhaustion_drains_and_others_continue(self, detectors):
        """Lockstep-exhaustion regression: streams ending mid-run (including
        one shorter than the context window) drain and close while every
        surviving stream keeps scoring to full sequential parity."""
        detector = detectors["VARADE"]
        lengths = (WINDOW - 2, WINDOW, 2 * WINDOW + 1, 45)
        exhaust_readers = [
            StreamReader(_make_stream(length, seed=80 + index)[0])
            for index, length in enumerate(lengths)
        ]
        fleet = MultiStreamRuntime(detector).run(exhaust_readers)
        for reader, fleet_result in zip(exhaust_readers, fleet):
            sequential = StreamingRuntime(detector).run(reader)
            np.testing.assert_allclose(
                fleet_result.scores, sequential.scores,
                rtol=0.0, atol=0.0, equal_nan=True,
            )
            assert fleet_result.samples_scored == sequential.samples_scored
        # The sub-window stream never scored, but did not stall the fleet:
        # the longest stream scored through its final tick.
        assert fleet[0].samples_scored == 0
        assert np.isfinite(fleet[3].scores[-1])
        assert fleet.stats.ticks == max(lengths)
        assert fleet.stats.batch_sizes[-1] == 1

    def test_empty_fleet_stats_are_finite_zeros(self):
        """Regression: histogram-less / zero-sample FleetStats used to
        report nan tail statistics."""
        from repro.edge.fleet import FleetStats

        stats = FleetStats(n_streams=0, ticks=0, samples_scored=0,
                           scoring_time_s=0.0, wall_time_s=0.0,
                           batch_sizes=np.zeros(0, dtype=np.int64),
                           batch_latencies_s=np.zeros(0))
        assert stats.latency_p99_s == 0.0
        assert stats.occupancy_p50 == 0.0
        assert stats.mean_batch_size == 0.0

    def test_stats_histograms_summarise_without_trace_retention(
            self, detectors, readers):
        """FleetStats carries streaming latency/occupancy histograms whose
        summaries agree with the retained per-batch arrays."""
        fleet = MultiStreamRuntime(detectors["VARADE"]).run(readers)
        stats = fleet.stats
        assert stats.latency_histogram is not None
        assert stats.latency_histogram.count == stats.samples_scored
        assert stats.occupancy_histogram.count == len(stats.batch_sizes)
        # Quantiles are exact to one bin; the histogram median of the batch
        # occupancy must straddle the retained exact values.
        assert stats.batch_sizes.min() <= stats.occupancy_p50 \
            <= stats.batch_sizes.max()
        assert 0.0 < stats.latency_p99_s <= stats.latency_histogram.max * (1 + 1e-12)
        summary = stats.latency_histogram.summary()
        assert summary["count"] == stats.samples_scored
        assert summary["p50"] <= summary["p95"] <= summary["p99"]


@pytest.mark.slow
def test_fleet_is_not_slower_than_sequential(detectors):
    """Throughput guard: 8 batched streams must beat 8 sequential runs.

    The strict 3x acceptance assertion lives in
    ``benchmarks/bench_fleet_throughput.py``; this slow-tier test only guards
    against the batched path regressing below the sequential one.
    """
    detector = detectors["VARADE"]
    readers = [StreamReader(_make_stream(220, seed=60 + i)[0]) for i in range(8)]

    start = time.perf_counter()
    for reader in readers:
        # Pin the incremental lane off: this guard is about micro-batching
        # amortisation vs one-window batch calls (the incremental lane has
        # its own gate in benchmarks/bench_incremental_scoring.py).
        StreamingRuntime(detector, incremental=False).run(reader)
    sequential_time = time.perf_counter() - start

    start = time.perf_counter()
    fleet = MultiStreamRuntime(detector).run(readers)
    fleet_time = time.perf_counter() - start

    assert fleet.stats.samples_scored > 0
    assert fleet_time < sequential_time
