"""End-to-end integration tests: simulator -> dataset -> detectors -> evaluation -> edge."""

import numpy as np
import pytest

from repro.baselines import DetectorRegistry
from repro.core import ThresholdCalibrator
from repro.data import StreamReader
from repro.edge import EdgeEstimator, JETSON_XAVIER_NX, StreamingRuntime
from repro.eval import paper_scale_costs, roc_auc_score


class TestEndToEndPipeline:
    @pytest.fixture(scope="class")
    def registry(self, tiny_dataset):
        return DetectorRegistry(
            n_channels=tiny_dataset.n_channels,
            window=16,
            neural_epochs=2,
            max_train_windows=120,
            varade_feature_maps=8,
            varade_epochs=10,
            varade_warmup_epochs=3,
        )

    def test_varade_full_pipeline(self, tiny_dataset, registry):
        detector = registry.build_varade()
        detector.fit(tiny_dataset.train)
        result = detector.score_stream(tiny_dataset.test)
        scores, labels = result.aligned(tiny_dataset.test_labels)
        auc = roc_auc_score(scores, labels)
        assert 0.0 <= auc <= 1.0
        assert np.isfinite(scores).all()

        # Calibrate a threshold on normal scores and run the streaming runtime.
        normal_scores = detector.score_stream(tiny_dataset.train).valid_scores()
        threshold = ThresholdCalibrator(quantile=0.99).calibrate(normal_scores)
        reader = StreamReader(tiny_dataset.test[:200], labels=tiny_dataset.test_labels[:200],
                              sample_rate=tiny_dataset.config.sample_rate)
        streaming = StreamingRuntime(detector, threshold=threshold).run(reader, max_samples=60)
        assert streaming.samples_scored == 60

        # Estimate the paper-scale deployment of the same method on a board.
        metrics = EdgeEstimator(JETSON_XAVIER_NX).estimate(
            paper_scale_costs()["VARADE"], "VARADE", max_rate_hz=200.0
        )
        assert metrics.inference_frequency_hz > 1.0
        assert metrics.power_w > JETSON_XAVIER_NX.idle_power_w

    def test_outlier_baselines_complete_pipeline(self, tiny_dataset, registry):
        for build in (registry.build_knn, registry.build_isolation_forest):
            detector = build()
            detector.fit(tiny_dataset.train)
            result = detector.score_stream(tiny_dataset.test)
            scores, labels = result.aligned(tiny_dataset.test_labels)
            assert 0.0 <= roc_auc_score(scores, labels) <= 1.0

    def test_train_and_test_share_normalisation(self, tiny_dataset):
        # The scaler is fitted on train only: train spans exactly [-1, 1],
        # the test stream may exceed it (collisions push sensors beyond the
        # training envelope).
        assert tiny_dataset.train.min() == pytest.approx(-1.0)
        assert tiny_dataset.train.max() == pytest.approx(1.0)
        assert tiny_dataset.test.min() < -1.0 or tiny_dataset.test.max() > 1.0

    def test_collision_samples_are_outliers_in_feature_space(self, tiny_dataset):
        """Sanity check of the benchmark itself: anomalies must be separable."""
        labels = tiny_dataset.test_labels.astype(bool)
        acc_columns = [i for i, name in enumerate(tiny_dataset.schema.names) if "Acc" in name]
        anomalous = np.abs(tiny_dataset.test[labels][:, acc_columns]).mean()
        normal = np.abs(tiny_dataset.test[~labels][:, acc_columns]).mean()
        assert anomalous > normal
