"""Tests for the confirm-then-recalibrate adaptation policy."""

import numpy as np
import pytest

from repro.core.calibration import CalibratedThreshold, ThresholdCalibrator
from repro.data import MinMaxScaler
from repro.drift import AdaptationPolicy, PageHinkley


def _threshold(value=2.0, method="quantile", parameter=0.99):
    return CalibratedThreshold(threshold=value, method=method, parameter=parameter)


def _feed(state, scores, start_index=0, raw=None):
    events = []
    for offset, score in enumerate(scores):
        sample = None if raw is None else raw[offset]
        event = state.observe(start_index + offset, score, raw=sample)
        if event is not None:
            events.append(event)
    return events


def _normal(rng, n, loc=1.0, scale=0.05):
    return rng.normal(loc, scale, n)


class TestPolicyConfiguration:
    def test_start_requires_threshold(self):
        with pytest.raises(ValueError, match="initial CalibratedThreshold"):
            AdaptationPolicy().start(None)

    def test_matching_calibrator_follows_initial_threshold(self):
        state = AdaptationPolicy().start(_threshold(method="mad", parameter=5.0))
        assert state.calibrator.method == "mad"
        assert state.calibrator.mad_factor == 5.0
        state = AdaptationPolicy().start(_threshold(method="quantile", parameter=0.95))
        assert state.calibrator.method == "quantile"
        assert state.calibrator.quantile == 0.95

    def test_explicit_calibrator_wins(self):
        calibrator = ThresholdCalibrator(method="mad", mad_factor=3.0)
        state = AdaptationPolicy(calibrator=calibrator).start(_threshold())
        assert state.calibrator is calibrator

    def test_states_are_independent_per_stream(self):
        policy = AdaptationPolicy()
        first, second = policy.start(_threshold()), policy.start(_threshold())
        assert first.detector is not second.detector
        first._reservoir.append(1.0)
        assert len(second._reservoir) == 0

    @pytest.mark.parametrize("kwargs", [
        {"reservoir_size": 8},
        {"min_reservoir": 0},
        {"min_reservoir": 2000},
        {"confirm_samples": 4},
        {"confirm_iqr": 0.0},
        {"trim_iqr": -1.0},
        {"cooldown": -1},
        {"reservoir_guard": 1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdaptationPolicy(**kwargs)


class TestHysteresis:
    def test_anomaly_burst_does_not_recalibrate(self):
        """A short huge-score burst must be rejected by the confirmation tail."""
        rng = np.random.default_rng(0)
        scores = np.concatenate([
            _normal(rng, 400),
            np.full(20, 60.0),       # anomaly burst, 30x the normal level
            _normal(rng, 400),
        ])
        state = AdaptationPolicy().start(_threshold(1.2))
        events = _feed(state, scores)
        assert events == []
        assert state.threshold.threshold == 1.2

    def test_sustained_shift_confirms_and_recalibrates(self):
        rng = np.random.default_rng(1)
        scores = np.concatenate([_normal(rng, 400), _normal(rng, 800, loc=3.0)])
        state = AdaptationPolicy().start(_threshold(1.2))
        events = _feed(state, scores)
        recalibrations = [e for e in events if e.kind == "recalibration"]
        assert len(recalibrations) == 1
        event = recalibrations[0]
        assert event.flagged_at >= 390
        assert event.old_threshold == 1.2
        assert 2.5 < event.new_threshold < 3.6
        assert state.threshold.threshold == events[-1].new_threshold

    def test_burst_then_real_shift_still_detected(self):
        """A rejected burst must not blind the detector to later real drift."""
        rng = np.random.default_rng(2)
        scores = np.concatenate([
            _normal(rng, 300),
            np.full(15, 40.0),
            _normal(rng, 300),
            _normal(rng, 800, loc=3.0),
        ])
        state = AdaptationPolicy().start(_threshold(1.2))
        events = _feed(state, scores)
        assert any(e.kind == "recalibration" for e in events)
        assert 2.5 < state.threshold.threshold < 3.6

    def test_no_adaptation_before_min_reservoir(self):
        rng = np.random.default_rng(3)
        policy = AdaptationPolicy(min_reservoir=100)
        state = policy.start(_threshold(1.2))
        # The shift starts long before the reservoir can be primed.
        events = _feed(state, _normal(rng, 60, loc=5.0))
        assert events == []


class TestRefinement:
    def test_refinements_follow_the_recalibration(self):
        rng = np.random.default_rng(4)
        policy = AdaptationPolicy(reservoir_size=1024, cooldown=400)
        scores = np.concatenate([_normal(rng, 400), _normal(rng, 2000, loc=3.0)])
        state = policy.start(_threshold(1.2))
        events = _feed(state, scores)
        kinds = [e.kind for e in events]
        assert kinds == ["recalibration", "refinement", "refinement"]
        # The final refinement saw a full reservoir's worth of scores.
        assert events[-1].n_calibration_scores >= 900
        # All thresholds describe the shifted regime.
        for event in events:
            assert 2.5 < event.new_threshold < 3.6

    def test_cooldown_suppresses_recalibration_chains(self):
        rng = np.random.default_rng(5)
        policy = AdaptationPolicy(cooldown=400)
        scores = np.concatenate([_normal(rng, 400), _normal(rng, 1000, loc=3.0)])
        state = policy.start(_threshold(1.2))
        events = _feed(state, scores)
        recalibrations = [e for e in events if e.kind == "recalibration"]
        assert len(recalibrations) == 1


class TestReservoirGuard:
    def test_guard_keeps_anomaly_scores_out(self):
        rng = np.random.default_rng(6)
        policy = AdaptationPolicy(reservoir_guard=2.5)
        state = policy.start(_threshold(1.2))
        _feed(state, _normal(rng, 50))
        _feed(state, [100.0], start_index=50)       # 80x the threshold
        assert 100.0 not in state.reservoir_scores

    def test_guard_disabled_admits_everything(self):
        rng = np.random.default_rng(7)
        policy = AdaptationPolicy(reservoir_guard=None)
        state = policy.start(_threshold(1.2))
        _feed(state, _normal(rng, 50))
        _feed(state, [100.0], start_index=50)
        assert 100.0 in state.reservoir_scores


class TestScalerRefresh:
    def test_confirmed_drift_refreshes_scaler_from_raw_samples(self):
        rng = np.random.default_rng(8)
        policy = AdaptationPolicy(refresh_scaler=True,
                                  scaler_factory=MinMaxScaler)
        state = policy.start(_threshold(1.2))
        n_pre, n_post = 400, 800
        scores = np.concatenate([_normal(rng, n_pre),
                                 _normal(rng, n_post, loc=3.0)])
        raw = np.concatenate([rng.normal(0.0, 1.0, (n_pre, 3)),
                              rng.normal(4.0, 1.0, (n_post, 3))])
        events = _feed(state, scores, raw=raw)
        refreshed = [e for e in events if e.scaler_refreshed]
        assert refreshed, "no event carried a refreshed scaler"
        scaler = refreshed[0].scaler
        assert isinstance(scaler, MinMaxScaler)
        # The refreshed scaler describes the *drifted* raw distribution,
        # not a pre/post blend: the raw window is cut back to the
        # confirmation window at the recalibration, so even the minima sit
        # in the shifted regime (a blend would carry pre-drift minima ~ -3).
        assert scaler.data_min_ is not None
        assert scaler.data_max_.mean() > 2.0
        assert scaler.data_min_.mean() > 0.0
        assert state.scaler is not None
        # Refinements republish a scaler fitted on more post-drift rows.
        refinements = [e for e in events if e.kind == "refinement"]
        assert refinements and all(e.scaler_refreshed for e in refinements)

    def test_no_refresh_without_opt_in(self):
        rng = np.random.default_rng(9)
        state = AdaptationPolicy().start(_threshold(1.2))
        scores = np.concatenate([_normal(rng, 400), _normal(rng, 800, loc=3.0)])
        raw = rng.normal(0.0, 1.0, (1200, 3))
        events = _feed(state, scores, raw=raw)
        assert events and all(not e.scaler_refreshed for e in events)
        assert state.scaler is None


class TestCustomDetector:
    def test_policy_accepts_a_configured_detector_prototype(self):
        rng = np.random.default_rng(10)
        prototype = PageHinkley(delta=0.1, threshold=15.0)
        policy = AdaptationPolicy(drift_detector=prototype)
        state = policy.start(_threshold(1.2))
        assert state.detector is not prototype
        assert state.detector.threshold == 15.0
        scores = np.concatenate([_normal(rng, 400), _normal(rng, 800, loc=3.0)])
        assert _feed(state, scores)
