"""Unit tests for the score-stream drift detectors."""

import numpy as np
import pytest

from repro.drift import PageHinkley, TwoWindowDrift


def _first_flag(detector, values):
    for index, value in enumerate(values):
        if detector.update(value):
            return index
    return None


class TestPageHinkley:
    def test_no_false_alarm_on_stationary_stream(self):
        rng = np.random.default_rng(5)
        detector = PageHinkley()
        flags = [detector.update(v) for v in rng.normal(1.0, 0.2, 10_000)]
        assert not any(flags)

    def test_detects_upward_mean_shift_with_bounded_delay(self):
        rng = np.random.default_rng(0)
        stream = np.concatenate([
            rng.normal(1.0, 0.1, 500),
            rng.normal(2.0, 0.1, 500),
        ])
        flagged = _first_flag(PageHinkley(), stream)
        assert flagged is not None
        assert 500 <= flagged <= 600, f"flag at {flagged}, shift at 500"

    def test_detects_downward_shift_in_both_mode(self):
        rng = np.random.default_rng(1)
        stream = np.concatenate([
            rng.normal(2.0, 0.1, 500),
            rng.normal(1.0, 0.1, 500),
        ])
        flagged = _first_flag(PageHinkley(direction="both"), stream)
        assert flagged is not None and flagged >= 500
        # An up-only detector must stay silent on the same stream.
        assert _first_flag(PageHinkley(direction="up"), stream) is None

    def test_nan_inputs_are_ignored(self):
        detector = PageHinkley()
        rng = np.random.default_rng(2)
        for value in rng.normal(1.0, 0.1, 100):
            detector.update(value)
        statistic = detector.statistic
        assert detector.update(float("nan")) is False
        assert detector.update(float("inf")) is False
        assert detector.statistic == statistic

    def test_reset_forgets_history(self):
        rng = np.random.default_rng(3)
        detector = PageHinkley()
        stream = np.concatenate([rng.normal(1.0, 0.1, 500),
                                 rng.normal(5.0, 0.1, 200)])
        assert _first_flag(detector, stream) is not None
        detector.reset()
        assert detector.statistic == 0.0
        # After the reset the elevated level is the new baseline.
        assert _first_flag(detector, rng.normal(5.0, 0.1, 500)) is None

    def test_clone_is_fresh_and_configured(self):
        prototype = PageHinkley(delta=0.3, threshold=12.0, min_samples=50,
                                direction="up", normalize=False)
        rng = np.random.default_rng(4)
        for value in rng.normal(1.0, 0.1, 200):
            prototype.update(value)
        clone = prototype.clone()
        assert clone.statistic == 0.0
        assert (clone.delta, clone.threshold, clone.min_samples,
                clone.direction, clone.normalize) == (0.3, 12.0, 50, "up", False)

    @pytest.mark.parametrize("kwargs", [
        {"delta": -0.1},
        {"threshold": 0.0},
        {"min_samples": 1},
        {"direction": "sideways"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PageHinkley(**kwargs)


class TestTwoWindowDrift:
    def test_ks_statistic_matches_manual_computation(self):
        reference = np.array([0.0, 1.0, 2.0, 3.0])
        current = np.array([10.0, 11.0, 12.0, 13.0])
        # Disjoint supports: the CDF gap reaches 1.
        assert TwoWindowDrift.ks_statistic(reference, current) == 1.0
        assert TwoWindowDrift.ks_statistic(reference, reference) == 0.0

    def test_detects_mean_shift(self):
        rng = np.random.default_rng(0)
        stream = np.concatenate([rng.normal(1.0, 0.1, 600),
                                 rng.normal(2.0, 0.1, 300)])
        detector = TwoWindowDrift(reference_size=200, current_size=50,
                                  threshold=0.6, check_every=5)
        flagged = _first_flag(detector, stream)
        assert flagged is not None
        assert 600 <= flagged <= 700

    def test_quantile_mode_detects_shift(self):
        rng = np.random.default_rng(1)
        stream = np.concatenate([rng.normal(1.0, 0.1, 600),
                                 rng.normal(1.8, 0.1, 300)])
        detector = TwoWindowDrift(reference_size=200, current_size=50,
                                  statistic="quantile", threshold=3.0,
                                  check_every=5)
        flagged = _first_flag(detector, stream)
        assert flagged is not None and flagged >= 600

    def test_silent_until_primed(self):
        detector = TwoWindowDrift(reference_size=100, current_size=20)
        rng = np.random.default_rng(2)
        for value in rng.normal(0.0, 1.0, 119):
            assert detector.update(value) is False
        assert not detector.is_primed
        detector.update(0.0)
        assert detector.is_primed

    def test_no_false_alarm_on_stationary_stream(self):
        rng = np.random.default_rng(3)
        detector = TwoWindowDrift()
        assert _first_flag(detector, rng.normal(1.0, 0.2, 5000)) is None

    def test_reset_clears_buffer(self):
        rng = np.random.default_rng(4)
        detector = TwoWindowDrift(reference_size=100, current_size=20)
        for value in rng.normal(0.0, 1.0, 200):
            detector.update(value)
        detector.reset()
        assert not detector.is_primed
        assert detector.current_statistic() == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"reference_size": 5},
        {"current_size": 2},
        {"statistic": "t-test"},
        {"threshold": 0.0},
        {"statistic": "ks", "threshold": 1.5},
        {"quantile": 1.0},
        {"check_every": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TwoWindowDrift(**kwargs)
