"""Tests for the drift scenario generators (repro.data.drift, repro.robot.drift)."""

import numpy as np
import pytest

from repro.data import DRIFT_KINDS, build_drift_scenario
from repro.data.drift import (
    inject_channel_dropout,
    inject_gradual_ramp,
    inject_mean_shift,
    inject_sensor_gain,
)
from repro.robot import RecordingDriftInjector


class TestInjectors:
    @pytest.fixture()
    def base(self):
        rng = np.random.default_rng(0)
        return rng.normal(0.0, 1.0, (200, 4))

    def test_mean_shift_applies_offset_from_start(self, base):
        shifted, mask = inject_mean_shift(base, start=50, magnitude=2.0,
                                          channels=[1, 3])
        np.testing.assert_array_equal(shifted[:50], base[:50])
        np.testing.assert_allclose(shifted[50:, [1, 3]], base[50:, [1, 3]] + 2.0)
        np.testing.assert_array_equal(shifted[50:, [0, 2]], base[50:, [0, 2]])
        assert mask[:50].sum() == 0 and mask[50:].all()

    def test_input_is_never_modified(self, base):
        snapshot = base.copy()
        inject_mean_shift(base, 50, 2.0)
        inject_gradual_ramp(base, 50, 2.0, ramp_len=30)
        inject_sensor_gain(base, 50, 1.5)
        inject_channel_dropout(base, 50, channels=[0])
        np.testing.assert_array_equal(base, snapshot)

    def test_gradual_ramp_reaches_full_magnitude(self, base):
        ramped, mask = inject_gradual_ramp(base, start=50, magnitude=3.0,
                                           ramp_len=40, channels=[0])
        # During the ramp the offset is strictly between 0 and the magnitude.
        mid_offset = ramped[70, 0] - base[70, 0]
        assert 0.0 < mid_offset < 3.0
        np.testing.assert_allclose(ramped[90:, 0], base[90:, 0] + 3.0)
        assert mask[50:].all() and not mask[:50].any()

    def test_sensor_gain_scales_channels(self, base):
        gained, _ = inject_sensor_gain(base, start=100, gain=1.8, channels=[2])
        np.testing.assert_allclose(gained[100:, 2], base[100:, 2] * 1.8)
        np.testing.assert_array_equal(gained[:100], base[:100])

    def test_channel_dropout_freezes_channels(self, base):
        dropped, _ = inject_channel_dropout(base, start=80, channels=[0, 1],
                                            fill=0.5)
        assert (dropped[80:, [0, 1]] == 0.5).all()
        np.testing.assert_array_equal(dropped[80:, 2:], base[80:, 2:])

    def test_dropout_must_leave_live_channels(self, base):
        with pytest.raises(ValueError, match="live channel"):
            inject_channel_dropout(base, 10, channels=[0, 1, 2, 3])

    def test_bad_start_and_channels_raise(self, base):
        with pytest.raises(ValueError):
            inject_mean_shift(base, start=500, magnitude=1.0)
        with pytest.raises(ValueError):
            inject_mean_shift(base, start=-1, magnitude=1.0)
        with pytest.raises(ValueError):
            inject_mean_shift(base, start=10, magnitude=1.0, channels=[7])
        with pytest.raises(ValueError):
            inject_sensor_gain(base, start=10, gain=0.0)


class TestBuildDriftScenario:
    @pytest.mark.parametrize("kind", DRIFT_KINDS)
    def test_every_kind_produces_consistent_ground_truth(self, kind):
        scenario = build_drift_scenario(kind, n_train=400, n_test=900,
                                        drift_start=450, n_anomalies=8,
                                        seed=5)
        assert scenario.kind == kind
        assert scenario.train.shape == (400, 6)
        assert scenario.stream.shape == (900, 6)
        assert scenario.drift_start == 450
        assert scenario.labels.shape == (900,)
        assert scenario.labels.sum() > 0
        assert not scenario.drift_mask[:450].any()
        assert scenario.drift_mask[450:].all()

    def test_seeding_is_deterministic(self):
        first = build_drift_scenario("mean_shift", seed=9)
        second = build_drift_scenario("mean_shift", seed=9)
        np.testing.assert_array_equal(first.stream, second.stream)
        np.testing.assert_array_equal(first.labels, second.labels)

    def test_anomalies_present_on_both_sides_of_the_drift(self):
        scenario = build_drift_scenario("mean_shift", seed=11)
        start = scenario.drift_start
        assert scenario.labels[:start].sum() > 0
        assert scenario.labels[start:].sum() > 0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            build_drift_scenario("voltage_spike")


class TestRecordingDriftInjector:
    def test_offset_step_on_joint_accelerometer(self, tiny_normal_recording):
        injector = RecordingDriftInjector(tiny_normal_recording)
        names = injector.joint_channels(2)
        drifted, event = injector.offset_step(start=100, names=names, offset=3.0)

        assert event.kind == "mean_shift"
        assert event.start_index == 100
        assert event.channel_names == names
        # The drifted recording is a new object with shifted channels...
        assert drifted is not tiny_normal_recording
        for name in names:
            original = tiny_normal_recording.channel(name)
            np.testing.assert_allclose(drifted.channel(name)[100:],
                                       original[100:] + 3.0)
            np.testing.assert_array_equal(drifted.channel(name)[:100],
                                          original[:100])
        # ...and the anomaly labels are untouched: drift is not an anomaly.
        np.testing.assert_array_equal(drifted.labels,
                                      tiny_normal_recording.labels)

    def test_gain_dropout_and_ramp(self, tiny_normal_recording):
        injector = RecordingDriftInjector(tiny_normal_recording)
        power, _ = injector.gain_change(start=50, names=["power"], gain=2.0)
        np.testing.assert_allclose(power.channel("power")[50:],
                                   tiny_normal_recording.channel("power")[50:] * 2.0)

        dead, event = injector.sensor_dropout(start=50, names=["current"])
        assert (dead.channel("current")[50:] == 0.0).all()
        assert event.kind == "channel_dropout"

        ramped, event = injector.slow_ramp(start=50, names=["voltage"],
                                           magnitude=5.0, ramp_len=60)
        assert event.kind == "gradual_ramp"
        offset = ramped.channel("voltage") - tiny_normal_recording.channel("voltage")
        assert abs(offset[55]) < 5.0
        np.testing.assert_allclose(offset[120:], 5.0)

    def test_drift_mask_matches_event(self, tiny_normal_recording):
        injector = RecordingDriftInjector(tiny_normal_recording)
        drifted, event = injector.offset_step(
            start=30, names=["power"], offset=1.0)
        mask = RecordingDriftInjector.drift_mask(drifted, event)
        assert not mask[:30].any() and mask[30:].all()

    def test_unknown_channel_raises(self, tiny_normal_recording):
        injector = RecordingDriftInjector(tiny_normal_recording)
        with pytest.raises(KeyError, match="no_such_channel"):
            injector.offset_step(start=10, names=["no_such_channel"], offset=1.0)
