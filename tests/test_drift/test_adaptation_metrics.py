"""Unit tests for the drift-adaptation metrics (repro.eval.adaptation)."""

import numpy as np
import pytest

from repro.drift import AdaptationEvent
from repro.edge import StreamingResult
from repro.eval import (
    alarm_precision,
    compare_adaptation,
    drift_detection_delay,
    false_alarm_rate,
)


def _event(flagged_at, adapted_at, kind="recalibration"):
    return AdaptationEvent(flagged_at=flagged_at, adapted_at=adapted_at,
                           trigger="page-hinkley", old_threshold=1.0,
                           new_threshold=2.0, n_calibration_scores=48,
                           kind=kind)


def _result(scores, labels, alarms, events=()):
    scores = np.asarray(scores, dtype=np.float64)
    return StreamingResult(
        detector="test",
        scores=scores,
        labels=np.asarray(labels, dtype=np.int64),
        alarms=np.asarray(alarms, dtype=np.int64),
        latencies_s=np.zeros(int(np.isfinite(scores).sum())),
        samples_scored=int(np.isfinite(scores).sum()),
        adaptation_events=list(events),
    )


class TestDriftDetectionDelay:
    def test_measures_to_first_answering_event(self):
        events = [_event(80, 90), _event(120, 150), _event(300, 400)]
        assert drift_detection_delay(events, drift_start=100) == 50.0
        assert drift_detection_delay(events, drift_start=100, of="flagged") == 20.0

    def test_spurious_pre_drift_events_are_ignored(self):
        events = [_event(10, 20)]
        assert drift_detection_delay(events, drift_start=100) == float("inf")

    def test_refinements_of_a_spurious_adaptation_do_not_answer(self):
        """Post-drift refinements of a pre-drift recalibration are not credited."""
        events = [_event(10, 20), _event(120, 120, kind="refinement")]
        assert drift_detection_delay(events, drift_start=100) == float("inf")

    def test_post_drift_refinement_alone_is_not_a_detection(self):
        events = [_event(150, 150, kind="refinement")]
        assert drift_detection_delay(events, drift_start=100) == float("inf")

    def test_no_events_is_infinite(self):
        assert drift_detection_delay([], drift_start=0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError, match="'adapted' or 'flagged'"):
            drift_detection_delay([], 0, of="confirmed")
        with pytest.raises(ValueError, match="non-negative"):
            drift_detection_delay([], -1)


class TestAlarmMetrics:
    def test_precision_and_far_over_ranges(self):
        scores = [np.nan, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        labels = [0, 0, 1, 1, 0, 0, 0]
        alarms = [0, 1, 1, 0, 0, 1, 0]
        result = _result(scores, labels, alarms)
        # Full range: TP=1 (idx 2), FP=2 (idx 1, 5) -> precision 1/3.
        assert alarm_precision(result) == pytest.approx(1 / 3)
        # FP=2 of 4 scored normals -> FAR 0.5.
        assert false_alarm_rate(result) == pytest.approx(0.5)
        # Restricted range [4, 7): no TP, one FP.
        assert alarm_precision(result, 4, 7) == 0.0
        assert false_alarm_rate(result, 4, 7) == pytest.approx(1 / 3)

    def test_nan_prefix_is_excluded(self):
        result = _result([np.nan, np.nan, 1.0], [1, 1, 0], [0, 0, 0])
        assert false_alarm_rate(result) == 0.0

    def test_empty_prediction_set_is_nan(self):
        result = _result([1.0, 1.0], [0, 1], [0, 0])
        assert np.isnan(alarm_precision(result))

    def test_invalid_range_raises(self):
        result = _result([1.0, 1.0], [0, 1], [0, 0])
        with pytest.raises(ValueError, match="invalid sample range"):
            alarm_precision(result, 1, 1)


class TestCompareAdaptation:
    def _pair(self):
        n = 10
        scores = np.ones(n)
        labels = [0, 1, 0, 0, 0, 0, 1, 0, 0, 0]
        frozen_alarms = [0, 1, 0, 0, 0, 1, 1, 1, 1, 1]   # alarms on everything post-drift
        adaptive_alarms = [0, 1, 0, 0, 0, 1, 1, 0, 0, 0]  # recovers after settling
        events = [_event(5, 6)]
        frozen = _result(scores, labels, frozen_alarms)
        adaptive = _result(scores, labels, adaptive_alarms, events)
        return frozen, adaptive

    def test_report_fields(self):
        frozen, adaptive = self._pair()
        report = compare_adaptation(frozen, adaptive, drift_start=5)
        assert report.drift_start == 5
        # Default settle runs to the last answering event (index 6).
        assert report.settle_samples == 1
        assert report.detection_delay == 1.0
        assert report.pre_drift_precision == 1.0
        assert report.n_adaptations == 1
        # Post window [6, 10): frozen alarms 4 (1 TP), adaptive 1 (1 TP).
        assert report.post_precision_frozen == pytest.approx(0.25)
        assert report.post_precision_adaptive == 1.0
        assert report.precision_recovered == 1.0
        assert report.frozen_precision_retained == pytest.approx(0.25)

    def test_drift_start_zero_yields_nan_pre_metrics(self):
        frozen, adaptive = self._pair()
        report = compare_adaptation(frozen, adaptive, drift_start=0)
        assert np.isnan(report.pre_drift_precision)
        assert np.isnan(report.pre_drift_false_alarm_rate)
        assert np.isfinite(report.post_precision_frozen)

    def test_spurious_adaptation_charges_full_post_window(self):
        """With no answering recalibration, settle defaults to zero."""
        frozen, adaptive = self._pair()
        spurious = _result(adaptive.scores, adaptive.labels, adaptive.alarms,
                           [_event(1, 2), _event(7, 7, kind="refinement")])
        report = compare_adaptation(frozen, spurious, drift_start=5)
        assert report.detection_delay == float("inf")
        assert report.settle_samples == 0

    def test_mismatched_runs_raise(self):
        frozen, adaptive = self._pair()
        short = _result([1.0], [0], [0])
        with pytest.raises(ValueError, match="same stream"):
            compare_adaptation(frozen, short, drift_start=0)
        relabeled = _result(adaptive.scores, 1 - adaptive.labels,
                            adaptive.alarms)
        with pytest.raises(ValueError, match="different labels"):
            compare_adaptation(frozen, relabeled, drift_start=0)
        with pytest.raises(ValueError, match="drift_start"):
            compare_adaptation(frozen, adaptive, drift_start=99)
