"""Integration tests: drift adaptation wired into both streaming runtimes."""

import numpy as np
import pytest

from repro.baselines.knn import KNNConfig, KNNDetector
from repro.data import StreamReader, build_drift_scenario
from repro.drift import AdaptationPolicy
from repro.edge import MultiStreamRuntime, StreamingRuntime
from repro.eval import compare_adaptation, drift_detection_delay

SEED = 11


@pytest.fixture(scope="module")
def mean_shift_scenario():
    return build_drift_scenario("mean_shift", n_test=2400, seed=SEED)


@pytest.fixture(scope="module")
def fitted_knn(mean_shift_scenario):
    detector = KNNDetector(KNNConfig(
        n_channels=mean_shift_scenario.n_channels, max_reference_points=600))
    detector.fit(mean_shift_scenario.train)
    detector.calibrate_threshold(mean_shift_scenario.train)
    return detector


@pytest.fixture(scope="module")
def clean_stream(mean_shift_scenario):
    """A drift-free stream (anomaly bursts included) with its labels."""
    start = mean_shift_scenario.drift_start
    return (mean_shift_scenario.stream[:start],
            mean_shift_scenario.labels[:start])


class TestNoDriftBitIdentity:
    def test_single_stream_scores_and_alarms_identical(self, fitted_knn,
                                                       clean_stream):
        data, labels = clean_stream
        plain = StreamingRuntime(fitted_knn).run(StreamReader(data, labels))
        adaptive = StreamingRuntime(
            fitted_knn, adaptation=AdaptationPolicy()
        ).run(StreamReader(data, labels))
        assert adaptive.adaptation_events == []
        assert np.array_equal(plain.scores, adaptive.scores, equal_nan=True)
        assert np.array_equal(plain.alarms, adaptive.alarms)

    def test_fleet_scores_and_alarms_identical(self, fitted_knn, clean_stream):
        data, labels = clean_stream

        def readers():
            return [StreamReader(data, labels), StreamReader(data, labels)]

        plain = MultiStreamRuntime(fitted_knn).run(readers())
        adaptive = MultiStreamRuntime(
            fitted_knn, adaptation=AdaptationPolicy()
        ).run(readers())
        for plain_stream, adaptive_stream in zip(plain, adaptive):
            assert adaptive_stream.adaptation_events == []
            assert np.array_equal(plain_stream.scores, adaptive_stream.scores,
                                  equal_nan=True)
            assert np.array_equal(plain_stream.alarms, adaptive_stream.alarms)

    def test_threshold_trace_is_flat_without_drift(self, fitted_knn,
                                                   clean_stream):
        data, labels = clean_stream
        result = StreamingRuntime(
            fitted_knn, adaptation=AdaptationPolicy()
        ).run(StreamReader(data, labels))
        trace = result.threshold_trace
        assert trace is not None
        scored = np.isfinite(trace)
        assert scored.sum() == result.samples_scored
        assert np.unique(trace[scored]).size == 1
        assert trace[scored][0] == fitted_knn.threshold.threshold


class TestMeanShiftAdaptation:
    @pytest.fixture(scope="class")
    def runs(self, fitted_knn, mean_shift_scenario):
        scenario = mean_shift_scenario
        frozen = StreamingRuntime(fitted_knn).run(
            StreamReader(scenario.stream, scenario.labels))
        adaptive = StreamingRuntime(
            fitted_knn, adaptation=AdaptationPolicy()
        ).run(StreamReader(scenario.stream, scenario.labels))
        return frozen, adaptive

    def test_detection_delay_bounded(self, runs, mean_shift_scenario):
        _, adaptive = runs
        delay = drift_detection_delay(adaptive.adaptation_events,
                                      mean_shift_scenario.drift_start)
        assert np.isfinite(delay)
        assert delay <= 400

    def test_scores_unchanged_by_adaptation(self, runs):
        """Adaptation touches alarms only -- scores must stay bit-identical."""
        frozen, adaptive = runs
        assert np.array_equal(frozen.scores, adaptive.scores, equal_nan=True)

    def test_adaptive_raises_threshold_and_stops_false_alarms(
            self, runs, mean_shift_scenario):
        frozen, adaptive = runs
        report = compare_adaptation(frozen, adaptive,
                                    mean_shift_scenario.drift_start)
        assert report.post_far_frozen > 0.5
        assert report.post_far_adaptive < 0.05
        assert adaptive.adaptation_events[0].new_threshold > \
            adaptive.adaptation_events[0].old_threshold

    def test_threshold_trace_steps_at_adaptation(self, runs):
        _, adaptive = runs
        event = adaptive.adaptation_events[0]
        trace = adaptive.threshold_trace
        assert trace[event.adapted_at] == event.old_threshold
        assert trace[event.adapted_at + 1] == event.new_threshold


class TestFleetPerStreamAdaptation:
    def test_drift_in_one_stream_leaves_the_other_frozen(
            self, fitted_knn, mean_shift_scenario, clean_stream):
        clean_data, clean_labels = clean_stream
        scenario = mean_shift_scenario

        def readers():
            return [
                StreamReader(clean_data, clean_labels),
                StreamReader(scenario.stream, scenario.labels),
            ]

        fleet = MultiStreamRuntime(
            fitted_knn, adaptation=AdaptationPolicy()
        ).run(readers())
        clean_result, drifted_result = fleet[0], fleet[1]

        assert clean_result.adaptation_events == []
        assert drifted_result.adaptation_events

        # The clean lane stays bit-identical to the same fleet without
        # adaptation (same batch composition; adaptation is the only
        # variable -- a solo run would differ by BLAS batch-shape ULPs).
        frozen_fleet = MultiStreamRuntime(fitted_knn).run(readers())
        assert np.array_equal(frozen_fleet[0].scores, clean_result.scores,
                              equal_nan=True)
        assert np.array_equal(frozen_fleet[0].alarms, clean_result.alarms)

        # And its threshold never moved, while the drifted lane's did.
        clean_trace = clean_result.threshold_trace
        assert np.unique(clean_trace[np.isfinite(clean_trace)]).size == 1
        drifted_trace = drifted_result.threshold_trace
        assert np.unique(drifted_trace[np.isfinite(drifted_trace)]).size > 1

    def test_fleet_matches_single_stream_adaptation(self, fitted_knn,
                                                    mean_shift_scenario):
        """One drifted stream adapts identically under both runtimes."""
        scenario = mean_shift_scenario
        solo = StreamingRuntime(
            fitted_knn, adaptation=AdaptationPolicy()
        ).run(StreamReader(scenario.stream, scenario.labels))
        fleet = MultiStreamRuntime(
            fitted_knn, adaptation=AdaptationPolicy()
        ).run([StreamReader(scenario.stream, scenario.labels)])
        assert np.array_equal(solo.scores, fleet[0].scores, equal_nan=True)
        assert np.array_equal(solo.alarms, fleet[0].alarms)
        assert [e.new_threshold for e in solo.adaptation_events] == \
            [e.new_threshold for e in fleet[0].adaptation_events]


class TestAdaptationRequiresThreshold:
    def test_streaming_runtime_raises_without_threshold(self, clean_stream):
        data, labels = clean_stream
        detector = KNNDetector(KNNConfig(n_channels=data.shape[1],
                                         max_reference_points=100))
        detector.fit(data[:200])
        runtime = StreamingRuntime(detector, adaptation=AdaptationPolicy())
        with pytest.raises(ValueError, match="initial CalibratedThreshold"):
            runtime.run(StreamReader(data, labels))

    def test_fleet_runtime_raises_without_threshold(self, clean_stream):
        data, labels = clean_stream
        detector = KNNDetector(KNNConfig(n_channels=data.shape[1],
                                         max_reference_points=100))
        detector.fit(data[:200])
        runtime = MultiStreamRuntime(detector, adaptation=AdaptationPolicy())
        with pytest.raises(ValueError, match="initial CalibratedThreshold"):
            runtime.run([StreamReader(data, labels)])
