"""Unit tests for the structured alarm sinks."""

import json
import types

import pytest

from repro.obs import (AlarmSink, CallbackAlarmSink, FanOutAlarmSink,
                       JsonlAlarmSink, alarm_record)


def _sample(**overrides):
    base = dict(stream_id="press-3", index=57, score=9.25, threshold=1.5,
                alarm=True, latency_s=0.004, queue_delay_s=0.002)
    base.update(overrides)
    return types.SimpleNamespace(**base)


class TestAlarmRecord:
    def test_fields(self):
        record = json.loads(alarm_record(_sample(), wall_clock=lambda: 12.0))
        assert record == {"stream": "press-3", "index": 57, "score": 9.25,
                          "threshold": 1.5, "latency_s": 0.004,
                          "queue_delay_s": 0.002, "time_unix_s": 12.0}

    def test_non_finite_fields_become_null(self):
        record = json.loads(alarm_record(
            _sample(score=float("nan"), threshold=float("inf")),
            wall_clock=lambda: 0.0))
        assert record["score"] is None
        assert record["threshold"] is None


class TestJsonlSink:
    def test_appends_one_line_per_alarm(self, tmp_path):
        path = tmp_path / "alarms.jsonl"
        sink = JsonlAlarmSink(path, wall_clock=lambda: 1.0)
        sink.emit(_sample(index=1))
        sink.emit(_sample(index=2))
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["index"] for line in lines] == [1, 2]
        assert sink.emitted == 2

    def test_append_mode_preserves_existing_lines(self, tmp_path):
        path = tmp_path / "alarms.jsonl"
        path.write_text('{"existing": true}\n')
        sink = JsonlAlarmSink(path)
        sink.emit(_sample())
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_flush_every_batches_writes(self, tmp_path):
        path = tmp_path / "alarms.jsonl"
        sink = JsonlAlarmSink(path, flush_every=3)
        sink.emit(_sample(index=1))
        sink.emit(_sample(index=2))
        # Not yet flushed: a same-moment reader may see nothing.
        sink.emit(_sample(index=3))
        assert len(path.read_text().splitlines()) == 3
        sink.close()

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlAlarmSink(tmp_path / "x.jsonl", flush_every=0)

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlAlarmSink(tmp_path / "alarms.jsonl")
        sink.close()
        sink.close()


class TestCallbackSink:
    def test_invokes_with_sample(self):
        seen = []
        CallbackAlarmSink(seen.append).emit(_sample(index=9))
        assert seen[0].index == 9


class TestFanOutSink:
    def test_emits_to_all_children_in_order(self):
        order = []
        sink = FanOutAlarmSink([
            CallbackAlarmSink(lambda s: order.append(("a", s.index))),
            CallbackAlarmSink(lambda s: order.append(("b", s.index))),
        ])
        sink.emit(_sample(index=4))
        assert order == [("a", 4), ("b", 4)]

    def test_failing_child_does_not_stop_siblings(self):
        seen = []

        def boom(sample):
            raise RuntimeError("sink down")

        sink = FanOutAlarmSink([CallbackAlarmSink(boom),
                                CallbackAlarmSink(seen.append)])
        with pytest.raises(RuntimeError, match="sink down"):
            sink.emit(_sample())
        assert len(seen) == 1  # sibling still ran

    def test_close_closes_children(self, tmp_path):
        child = JsonlAlarmSink(tmp_path / "alarms.jsonl")
        FanOutAlarmSink([child]).close()
        child.emit = None  # closed handles must not be written again
        assert child._handle.closed

    def test_base_sink_is_abstract(self):
        with pytest.raises(NotImplementedError):
            AlarmSink().emit(_sample())
