"""Unit tests for the metrics registry and its Prometheus exposition."""

from pathlib import Path

import pytest

from repro.edge.monitor import StreamingHistogram
from repro.obs import Counter, Gauge, MetricsRegistry, Summary

GOLDEN = Path(__file__).parent / "golden_metrics.txt"


def _golden_registry() -> MetricsRegistry:
    """A deterministic registry covering every render path."""
    registry = MetricsRegistry()
    scored = registry.counter("demo_scored_total", "Samples scored.")
    scored.inc(42)
    backing = 7
    registry.counter("demo_readthrough_total", "Read-through counter.",
                     fn=lambda: backing)
    lag = registry.gauge("demo_lag", "Windows pending.")
    lag.set(2.5)
    special = registry.gauge("demo_special", "Non-finite rendering.")
    special.set(float("inf"))
    requests = registry.counter("demo_requests_total", "Requests by op.",
                                labels=("protocol", "op"))
    requests.labels(protocol="json", op="push").inc(3)
    requests.labels(protocol="binary", op="push").inc(5)
    requests.labels(protocol="json", op='we"ird\n').inc()
    latency = registry.summary("demo_latency_seconds", "Request latency.")
    for value in (0.001, 0.002, 0.004, 0.008):
        latency.observe(value)
    return registry


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_read_through_rejects_inc(self):
        counter = Counter(fn=lambda: 9)
        assert counter.value() == 9
        with pytest.raises(TypeError):
            counter.inc()


class TestGauge:
    def test_set(self):
        gauge = Gauge()
        gauge.set(1.5)
        assert gauge.value() == 1.5
        gauge.set(-2)
        assert gauge.value() == -2

    def test_read_through_rejects_set(self):
        with pytest.raises(TypeError):
            Gauge(fn=lambda: 1).set(2)


class TestSummary:
    def test_owned_histogram_observes(self):
        summary = Summary(histogram=StreamingHistogram.log_spaced())
        for value in (0.1, 0.2, 0.4):
            summary.observe(value)
        assert summary.histogram().count == 3

    def test_read_through_rejects_observe(self):
        hist = StreamingHistogram.log_spaced()
        summary = Summary(fn=lambda: hist)
        with pytest.raises(TypeError):
            summary.observe(1.0)

    def test_exactly_one_source_required(self):
        with pytest.raises(TypeError):
            Summary()
        with pytest.raises(TypeError):
            Summary(histogram=StreamingHistogram.log_spaced(),
                    fn=lambda: StreamingHistogram.log_spaced())


class TestRegistry:
    def test_reregistration_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "X.")
        first.inc(3)
        again = registry.counter("x_total", "X.")
        assert again is first
        assert again.value() == 3

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total", "X.")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.", labels=("op",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", "X.", labels=("protocol",))

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("1bad", "X.")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("x_total", "X.", labels=("bad-label",))

    def test_labelled_family_vends_cached_children(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "X.", labels=("op",))
        child = family.labels(op="push")
        child.inc()
        assert family.labels(op="push") is child
        assert family.labels(op="open") is not child
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(wrong="push")
        with pytest.raises(ValueError, match="use .labels"):
            family.default

    def test_summary_renders_quantiles_sum_count(self):
        registry = MetricsRegistry()
        summary = registry.summary("lat_seconds", "Latency.")
        for value in (1.0, 2.0, 3.0, 4.0):
            summary.observe(value)
        page = registry.render()
        assert 'lat_seconds{quantile="0.5"}' in page
        assert 'lat_seconds{quantile="0.95"}' in page
        assert 'lat_seconds{quantile="0.99"}' in page
        count = [line for line in page.splitlines()
                 if line.startswith("lat_seconds_count")]
        assert count == ["lat_seconds_count 4"]
        total = [line for line in page.splitlines()
                 if line.startswith("lat_seconds_sum")]
        assert float(total[0].split()[1]) == pytest.approx(10.0, rel=1e-6)

    def test_empty_summary_renders_without_samples(self):
        registry = MetricsRegistry()
        registry.summary("lat_seconds", "Latency.")
        page = registry.render()
        assert "lat_seconds_count 0" in page
        # StreamingHistogram reports 0 for an empty quantile.
        assert 'lat_seconds{quantile="0.5"} 0' in page

    def test_non_finite_values_render_as_literals(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "G.")
        for value, literal in ((float("nan"), "NaN"),
                               (float("inf"), "+Inf"),
                               (float("-inf"), "-Inf")):
            gauge.set(value)
            assert f"g {literal}" in registry.render()

    def test_page_ends_with_newline(self):
        assert MetricsRegistry().render() == "\n"
        assert _golden_registry().render().endswith("\n")


class TestGoldenSnapshot:
    """The exposition format is a wire contract: hold it to a golden page.

    Regenerate (after an intentional format change) with::

        PYTHONPATH=src:tests/test_obs python -c \
            "from test_obs_metrics import _golden_registry; \
             open('tests/test_obs/golden_metrics.txt', 'w')\
             .write(_golden_registry().render())"
    """

    def test_rendered_page_matches_golden(self):
        assert _golden_registry().render() == GOLDEN.read_text()

    def test_golden_page_parses_as_prometheus_text(self):
        """Every non-comment line: name{labels} value, value a float."""
        for line in GOLDEN.read_text().splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, _, value_part = line.rpartition(" ")
            assert name_part, line
            float(value_part)  # NaN/+Inf/-Inf all parse
            series = name_part.split("{", 1)[0]
            assert series.replace("_", "").isalnum(), line
