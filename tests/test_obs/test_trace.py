"""Unit tests for the bounded trace ring and its Chrome JSON export."""

import json

import pytest

from repro.obs import TraceRecorder


def _fake_clock(values):
    iterator = iter(values)
    return lambda: next(iterator)


def _events(trace):
    """Non-metadata events of an exported trace."""
    return [event for event in trace["traceEvents"] if event["ph"] != "M"]


class TestRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_oldest_events_evicted_and_counted(self):
        recorder = TraceRecorder(capacity=3, clock=_fake_clock([0.0]))
        for index in range(5):
            recorder.instant(f"e{index}", "track", ts_s=float(index))
        assert len(recorder) == 3
        assert recorder.dropped == 2
        names = [event["name"] for event in _events(recorder.to_chrome())]
        assert names == ["e2", "e3", "e4"]
        other = recorder.to_chrome()["otherData"]
        assert other == {"recorded": 3, "dropped": 2, "capacity": 3}

    def test_instant_stamps_clock_when_ts_omitted(self):
        recorder = TraceRecorder(capacity=4, clock=_fake_clock([1.0, 3.5]))
        recorder.instant("now", "track")
        (event,) = _events(recorder.to_chrome())
        assert event["ts"] == pytest.approx((3.5 - 1.0) * 1e6)


class TestChromeExport:
    def test_span_shape(self):
        recorder = TraceRecorder(capacity=8, clock=_fake_clock([10.0]))
        recorder.span("flush", "batcher", start_s=11.0, end_s=11.5, batch=4)
        (event,) = _events(recorder.to_chrome())
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1e6)
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["args"] == {"batch": 4}
        assert "s" not in event

    def test_instant_shape(self):
        recorder = TraceRecorder(capacity=8, clock=_fake_clock([0.0]))
        recorder.instant("alarm", "press-3", ts_s=2.0, index=57)
        (event,) = _events(recorder.to_chrome())
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert "dur" not in event
        assert event["args"] == {"index": 57}

    def test_tracks_become_named_thread_lanes(self):
        recorder = TraceRecorder(capacity=8, clock=_fake_clock([0.0]))
        recorder.instant("a", "batcher", ts_s=0.1)
        recorder.instant("b", "press-3", ts_s=0.2)
        recorder.instant("c", "batcher", ts_s=0.3)
        trace = recorder.to_chrome()
        threads = {event["args"]["name"]: event["tid"]
                   for event in trace["traceEvents"]
                   if event["ph"] == "M" and event["name"] == "thread_name"}
        assert set(threads) == {"batcher", "press-3"}
        by_name = {event["name"]: event for event in _events(trace)}
        assert by_name["a"]["tid"] == threads["batcher"]
        assert by_name["c"]["tid"] == threads["batcher"]
        assert by_name["b"]["tid"] == threads["press-3"]
        process = [event for event in trace["traceEvents"]
                   if event["name"] == "process_name"]
        assert process and process[0]["args"]["name"] == "repro.serve"

    def test_non_finite_args_become_null(self):
        recorder = TraceRecorder(capacity=8, clock=_fake_clock([0.0]))
        recorder.instant("adapt", "s", ts_s=0.1,
                         old_threshold=float("nan"),
                         nested={"v": float("inf")},
                         listed=[1.0, float("-inf")])
        text = recorder.dumps()  # would raise on NaN/Inf (allow_nan=False)
        (event,) = _events(json.loads(text))
        assert event["args"] == {"old_threshold": None,
                                 "nested": {"v": None},
                                 "listed": [1.0, None]}

    def test_round_trip_through_file(self, tmp_path):
        recorder = TraceRecorder(capacity=8, clock=_fake_clock([0.0]))
        recorder.span("flush", "batcher", start_s=0.1, end_s=0.2)
        path = tmp_path / "trace.json"
        recorder.write(path)
        loaded = json.loads(path.read_text())
        assert loaded == recorder.to_chrome()
        assert loaded["displayTimeUnit"] == "ms"
