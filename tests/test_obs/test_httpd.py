"""In-process tests for the plain-HTTP observability scrape endpoint."""

import asyncio

import pytest

from repro.obs import ObservabilityHTTPServer


async def _request(port, target, method="GET"):
    """One HTTP/1.0-style request; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {target} HTTP/1.1\r\n"
                 f"Host: localhost\r\nConnection: close\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def _serve(test, *, trace=None):
    """Run ``await test(port)`` against a live server, then stop it."""
    async def main():
        server = ObservabilityHTTPServer(
            metrics=lambda: "demo_total 1\n", trace=trace)
        port = await server.start()
        try:
            await test(port)
        finally:
            await server.stop()

    asyncio.run(main())


class TestRoutes:
    def test_metrics_page(self):
        async def check(port):
            status, headers, body = await _request(port, "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            assert "version=0.0.4" in headers["content-type"]
            assert int(headers["content-length"]) == len(body)
            assert body == b"demo_total 1\n"

        _serve(check)

    def test_healthz(self):
        async def check(port):
            status, _, body = await _request(port, "/healthz")
            assert (status, body) == (200, b"ok\n")

        _serve(check)

    def test_trace_served_when_wired(self):
        async def check(port):
            status, headers, body = await _request(port, "/trace")
            assert status == 200
            assert headers["content-type"].startswith("application/json")
            assert body == b'{"traceEvents":[]}'

        _serve(check, trace=lambda: '{"traceEvents":[]}')

    def test_trace_404_when_disabled(self):
        async def check(port):
            status, _, _ = await _request(port, "/trace")
            assert status == 404

        _serve(check)

    def test_unknown_path_404(self):
        async def check(port):
            status, _, _ = await _request(port, "/nope")
            assert status == 404

        _serve(check)

    def test_post_rejected(self):
        async def check(port):
            status, _, _ = await _request(port, "/metrics", method="POST")
            assert status == 405

        _serve(check)

    def test_head_omits_body(self):
        async def check(port):
            status, headers, body = await _request(port, "/metrics",
                                                   method="HEAD")
            assert status == 200
            assert int(headers["content-length"]) > 0
            assert body == b""

        _serve(check)


class TestLifecycle:
    def test_bound_port_requires_start(self):
        server = ObservabilityHTTPServer(metrics=lambda: "")
        with pytest.raises(RuntimeError):
            server.bound_port

    def test_metrics_callback_failure_yields_500(self):
        def boom():
            raise RuntimeError("registry gone")

        async def main():
            server = ObservabilityHTTPServer(metrics=boom)
            port = await server.start()
            try:
                status, _, _ = await _request(port, "/metrics")
                assert status == 500
            finally:
                await server.stop()

        asyncio.run(main())
