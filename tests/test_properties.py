"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.data.normalization import MinMaxScaler
from repro.data.streaming import RollingWindow, StreamReader
from repro.data.windowing import sliding_windows
from repro.eval.metrics import point_adjust, roc_auc_score
from repro.robot.quaternion import (
    euler_to_quaternion,
    quaternion_conjugate,
    quaternion_multiply,
    quaternion_to_euler,
)
from repro.trees.isolation_forest import average_path_length

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                          allow_infinity=False)


@st.composite
def small_matrices(draw, min_rows=2, max_rows=30, min_cols=1, max_cols=6):
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    return draw(hnp.arrays(np.float64, (rows, cols), elements=finite_floats))


class TestScalerProperties:
    @given(small_matrices())
    @settings(max_examples=40, deadline=None)
    def test_minmax_output_within_range(self, data):
        scaled = MinMaxScaler().fit_transform(data)
        assert np.all(scaled >= -1.0 - 1e-9)
        assert np.all(scaled <= 1.0 + 1e-9)

    @given(small_matrices())
    @settings(max_examples=40, deadline=None)
    def test_minmax_round_trip(self, data):
        scaler = MinMaxScaler().fit(data)
        recovered = scaler.inverse_transform(scaler.transform(data))
        # Constant channels cannot be recovered exactly (they map to the
        # midpoint); every non-constant channel must round-trip.
        span = data.max(axis=0) - data.min(axis=0)
        varying = span > 0
        if not varying.any():
            return
        np.testing.assert_allclose(recovered[:, varying], data[:, varying],
                                   atol=1e-6 * (1 + np.abs(data[:, varying]).max()))


class TestWindowingProperties:
    @given(st.integers(2, 40), st.integers(1, 5), st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_sliding_window_count(self, n_samples, n_channels, window, stride):
        if n_samples < window:
            return
        data = np.arange(n_samples * n_channels, dtype=float).reshape(n_samples, n_channels)
        windows = sliding_windows(data, window, stride)
        expected = (n_samples - window) // stride + 1
        assert windows.shape == (expected, window, n_channels)
        # Every window is a contiguous slice of the original stream.
        np.testing.assert_allclose(windows[-1], data[(expected - 1) * stride:
                                                     (expected - 1) * stride + window])


class TestRollingWindowProperties:
    @given(st.integers(1, 8), st.integers(1, 5), st.integers(0, 24))
    @settings(max_examples=60, deadline=None)
    def test_fill_level_and_oldest_first_ordering(self, window, n_channels, n_push):
        rolling = RollingWindow(window, n_channels)
        for value in range(n_push):
            rolling.push(np.full(n_channels, float(value)))
        assert len(rolling) == min(n_push, window)
        assert rolling.is_full == (n_push >= window)
        if rolling.is_full:
            array = rolling.as_array()
            assert array.shape == (window, n_channels)
            # Exactly the last `window` pushed samples, oldest first.
            np.testing.assert_array_equal(
                array[:, 0], np.arange(n_push - window, n_push, dtype=float)
            )
        else:
            with pytest.raises(RuntimeError):
                rolling.as_array()

    @given(st.integers(1, 6), st.integers(1, 4), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_clear_resets_and_window_refills(self, window, n_channels, n_push):
        rolling = RollingWindow(window, n_channels)
        for value in range(n_push):
            rolling.push(np.full(n_channels, float(value)))
        rolling.clear()
        assert len(rolling) == 0
        assert not rolling.is_full
        for value in range(window):
            rolling.push(np.full(n_channels, float(100 + value)))
        np.testing.assert_array_equal(
            rolling.as_array()[:, 0], np.arange(100, 100 + window, dtype=float)
        )

    @given(st.integers(1, 6), st.integers(1, 5), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_channel_mismatch_rejected(self, window, n_channels, wrong):
        if wrong == n_channels:
            wrong += 1
        rolling = RollingWindow(window, n_channels)
        with pytest.raises(ValueError):
            rolling.push(np.zeros(wrong))
        # A rejected push must not corrupt the fill level.
        assert len(rolling) == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RollingWindow(0, 3)
        with pytest.raises(ValueError):
            RollingWindow(4, 0)


class TestStreamReaderProperties:
    @given(small_matrices(min_rows=1, max_rows=25), st.floats(1.0, 500.0))
    @settings(max_examples=40, deadline=None)
    def test_replay_preserves_order_and_timing(self, data, sample_rate):
        reader = StreamReader(data, sample_rate=sample_rate)
        samples = list(reader)
        assert len(samples) == reader.n_samples == data.shape[0]
        for index, sample in enumerate(samples):
            assert sample.index == index
            assert sample.timestamp == index / sample_rate
            np.testing.assert_array_equal(sample.values, data[index])

    @given(st.integers(2, 30), st.integers(1, 4), st.integers(1, 6), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_windows_are_the_preceding_slices(self, n_samples, n_channels, window, stride):
        data = np.arange(n_samples * n_channels, dtype=float).reshape(n_samples, n_channels)
        reader = StreamReader(data)
        pairs = list(reader.windows(window, stride=stride))
        expected = len(range(window, n_samples, stride)) if n_samples > window else 0
        assert len(pairs) == expected
        for context, sample in pairs:
            assert sample.index >= window
            np.testing.assert_array_equal(
                context, data[sample.index - window:sample.index]
            )

    @given(small_matrices(min_rows=2, max_rows=10), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_label_length_mismatch_rejected(self, data, extra):
        labels = np.zeros(data.shape[0] + extra, dtype=np.int64)
        with pytest.raises(ValueError):
            StreamReader(data, labels=labels)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StreamReader(np.zeros(5))  # 1-D stream
        with pytest.raises(ValueError):
            StreamReader(np.zeros((5, 2)), sample_rate=0.0)


class TestMetricProperties:
    @given(st.integers(5, 60), st.integers(1, 1_000_000))
    @settings(max_examples=40, deadline=None)
    def test_auc_bounded_and_antisymmetric(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        labels = rng.integers(0, 2, size=n)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        auc = roc_auc_score(scores, labels)
        assert 0.0 <= auc <= 1.0
        assert roc_auc_score(-scores, labels) + auc == 1.0 or abs(
            roc_auc_score(-scores, labels) + auc - 1.0) < 1e-9

    @given(st.lists(st.integers(0, 1), min_size=3, max_size=40),
           st.lists(st.integers(0, 1), min_size=3, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_point_adjust_never_decreases_detections(self, labels, predictions):
        size = min(len(labels), len(predictions))
        labels = np.array(labels[:size])
        predictions = np.array(predictions[:size])
        adjusted = point_adjust(predictions, labels)
        assert adjusted.sum() >= predictions[labels.astype(bool)].sum()
        # Adjustment never flips a prediction off.
        assert np.all(adjusted >= (predictions & labels))


class TestQuaternionProperties:
    @given(st.floats(-1.4, 1.4), st.floats(-1.4, 1.4), st.floats(-1.4, 1.4))
    @settings(max_examples=60, deadline=None)
    def test_euler_round_trip(self, roll, pitch, yaw):
        q = euler_to_quaternion(roll, pitch, yaw)
        assert abs(np.linalg.norm(q) - 1.0) < 1e-9
        r, p, y = quaternion_to_euler(q)
        np.testing.assert_allclose([r, p, y], [roll, pitch, yaw], atol=1e-7)

    @given(st.floats(-3.0, 3.0), st.floats(-1.4, 1.4), st.floats(-3.0, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_multiply_by_conjugate_is_identity(self, roll, pitch, yaw):
        q = euler_to_quaternion(roll, pitch, yaw)
        identity = quaternion_multiply(q, quaternion_conjugate(q))
        np.testing.assert_allclose(identity, [1.0, 0.0, 0.0, 0.0], atol=1e-9)


class TestTensorProperties:
    @given(small_matrices(max_rows=6, max_cols=6), small_matrices(max_rows=6, max_cols=6))
    @settings(max_examples=40, deadline=None)
    def test_addition_commutes(self, a, b):
        rows = min(a.shape[0], b.shape[0])
        cols = min(a.shape[1], b.shape[1])
        a, b = a[:rows, :cols], b[:rows, :cols]
        left = (nn.Tensor(a) + nn.Tensor(b)).numpy()
        right = (nn.Tensor(b) + nn.Tensor(a)).numpy()
        np.testing.assert_allclose(left, right)

    @given(small_matrices(max_rows=6, max_cols=6))
    @settings(max_examples=40, deadline=None)
    def test_relu_idempotent_and_nonnegative(self, a):
        once = nn.Tensor(a).relu()
        twice = once.relu()
        assert np.all(once.numpy() >= 0)
        np.testing.assert_allclose(once.numpy(), twice.numpy())

    @given(small_matrices(max_rows=5, max_cols=5))
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, a):
        assert nn.Tensor(a).sum().item() == np.testing.assert_allclose(
            nn.Tensor(a).sum().item(), a.sum(), rtol=1e-9) or True


class TestIsolationForestProperties:
    @given(st.integers(2, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_average_path_length_positive_and_bounded(self, n):
        value = float(average_path_length(n))
        assert value >= 0.99 if n >= 2 else value == 0.0
        # c(n) <= 2 * H(n-1) <= 2 * (ln(n) + 1)
        assert value <= 2 * (np.log(max(n, 2)) + 1.0)
