"""Tests for the VARADE detector, the shared detector API and calibration."""

import numpy as np
import pytest

from repro.core import (
    CalibratedThreshold,
    ThresholdCalibrator,
    TrainingConfig,
    VaradeConfig,
    VaradeDetector,
)
from repro.eval import roc_auc_score


def synthetic_stream(n_samples=500, n_channels=5, seed=0, anomaly=False):
    """Smooth multivariate sinusoids with motion-dependent (heteroscedastic)
    noise, mimicking the structure of the robot stream; optional burst anomaly.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / 50.0
    envelope = 0.03 + 0.25 * np.abs(np.sin(2 * np.pi * 0.08 * t))
    data = np.stack([
        np.sin(2 * np.pi * (0.4 + 0.2 * c) * t + c)
        + envelope * rng.normal(0, 1.0, n_samples)
        for c in range(n_channels)
    ], axis=1)
    labels = np.zeros(n_samples, dtype=np.int64)
    if anomaly:
        start, stop = n_samples // 2, n_samples // 2 + 30
        data[start:stop] += rng.normal(0, 1.5, size=(stop - start, n_channels))
        labels[start:stop] = 1
    return data, labels


@pytest.fixture(scope="module")
def fitted_detector():
    train, _ = synthetic_stream(seed=1)
    config = VaradeConfig(n_channels=5, window=16, base_feature_maps=4, kl_weight=0.1)
    training = TrainingConfig(epochs=10, mean_warmup_epochs=4, learning_rate=3e-3,
                              variance_finetune_epochs=15, max_train_windows=300, seed=0)
    return VaradeDetector(config, training).fit(train)


class TestTraining:
    def test_fit_records_history(self, fitted_detector):
        assert len(fitted_detector.history.epoch_losses) == 10 + 15
        assert fitted_detector.history.wall_time_s > 0
        assert fitted_detector.history.final_loss is not None

    def test_fit_validates_channel_count(self):
        detector = VaradeDetector(VaradeConfig(n_channels=5, window=16, base_feature_maps=4))
        with pytest.raises(ValueError):
            detector.fit(np.zeros((100, 3)))

    def test_score_before_fit_raises(self):
        detector = VaradeDetector(VaradeConfig(n_channels=5, window=16, base_feature_maps=4))
        with pytest.raises(RuntimeError):
            detector.score_stream(np.zeros((50, 5)))


class TestScoring:
    def test_score_stream_alignment(self, fitted_detector):
        test, _ = synthetic_stream(seed=2)
        result = fitted_detector.score_stream(test)
        assert result.scores.shape[0] == test.shape[0]
        # Current-sample alignment: the first score sits at index window-1.
        assert not result.valid_mask[:15].any()
        assert result.valid_mask[15:].all()
        assert np.isnan(result.scores[0])
        assert np.isfinite(result.valid_scores()).all()

    def test_scores_are_positive_variances(self, fitted_detector):
        test, _ = synthetic_stream(seed=3)
        result = fitted_detector.score_stream(test)
        assert (result.valid_scores() > 0).all()

    def test_detects_burst_anomaly_better_than_chance(self, fitted_detector):
        test, labels = synthetic_stream(seed=4, anomaly=True)
        result = fitted_detector.score_stream(test)
        scores, aligned_labels = result.aligned(labels)
        assert roc_auc_score(scores, aligned_labels) > 0.6

    def test_score_window_matches_stream_scoring(self, fitted_detector):
        test, _ = synthetic_stream(seed=5)
        result = fitted_detector.score_stream(test)
        index = 40
        window = test[index - 15:index + 1]
        single = fitted_detector.score_window(window, test[index])
        assert single == pytest.approx(result.scores[index], rel=1e-9)

    def test_forecast_returns_mean_and_variance(self, fitted_detector):
        test, _ = synthetic_stream(seed=6)
        mean, variance = fitted_detector.forecast(test[:16])
        assert mean.shape == (5,)
        assert variance.shape == (5,)
        assert (variance > 0).all()

    def test_short_stream_yields_no_scores(self, fitted_detector):
        result = fitted_detector.score_stream(np.zeros((10, 5)))
        assert not result.valid_mask.any()

    def test_window_length_stream_yields_exactly_one_score(self, fitted_detector):
        """Regression: a window-state detector scores the last sample of the
        first full window, so a stream of exactly `window` rows must yield
        one score (matching the streaming runtimes), not an all-NaN result."""
        from repro.data import StreamReader
        from repro.edge import StreamingRuntime

        test, _ = synthetic_stream(seed=8)
        exact = test[:16]
        result = fitted_detector.score_stream(exact)
        assert result.valid_mask.sum() == 1
        assert result.valid_mask[15]
        streamed = StreamingRuntime(fitted_detector).run(StreamReader(exact))
        np.testing.assert_allclose(result.scores, streamed.scores,
                                   rtol=0, atol=1e-10, equal_nan=True)

    def test_score_windows_batch_matches_score_window_exactly(self, fitted_detector):
        test, _ = synthetic_stream(seed=9)
        windows = np.stack([test[i:i + 16] for i in range(6)])
        targets = test[16:22]
        batch = fitted_detector.score_windows_batch(windows, targets)
        singles = [fitted_detector.score_window(windows[i], targets[i]) for i in range(6)]
        np.testing.assert_array_equal(batch, singles)

    def test_aligned_requires_matching_length(self, fitted_detector):
        test, _ = synthetic_stream(seed=7)
        result = fitted_detector.score_stream(test)
        with pytest.raises(ValueError):
            result.aligned(np.zeros(3))


class TestInferenceCost:
    def test_cost_fields(self, fitted_detector):
        cost = fitted_detector.inference_cost()
        assert cost.flops > 0
        assert cost.parameter_bytes > 0
        assert cost.activation_bytes > 0
        assert 0.0 <= cost.gpu_fraction <= 1.0
        assert cost.memory_traffic_bytes >= cost.parameter_bytes

    def test_paper_configuration_costs_more_than_scaled(self, fitted_detector):
        paper_cost = VaradeDetector(VaradeConfig.paper(86)).inference_cost()
        assert paper_cost.flops > fitted_detector.inference_cost().flops


class TestThresholdCalibration:
    def test_quantile_threshold(self):
        scores = np.linspace(0, 1, 101)
        threshold = ThresholdCalibrator(method="quantile", quantile=0.95).calibrate(scores)
        assert threshold.threshold == pytest.approx(0.95)
        predictions = threshold.classify(np.array([0.5, 0.99]))
        np.testing.assert_array_equal(predictions, [0, 1])

    def test_mad_threshold(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(1.0, 0.1, 1000)
        threshold = ThresholdCalibrator(method="mad", mad_factor=6.0).calibrate(scores)
        assert threshold.threshold > 1.2
        assert threshold.method == "mad"

    def test_ignores_non_finite_scores(self):
        scores = np.array([0.1, 0.2, np.nan, np.inf, 0.3])
        threshold = ThresholdCalibrator(quantile=0.5).calibrate(scores)
        assert np.isfinite(threshold.threshold)

    def test_errors(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(method="other")
        with pytest.raises(ValueError):
            ThresholdCalibrator(quantile=1.5)
        with pytest.raises(ValueError):
            ThresholdCalibrator(mad_factor=0.0)
        with pytest.raises(ValueError):
            ThresholdCalibrator().calibrate(np.array([np.nan]))

    def test_empty_scores_raise_descriptive_error(self):
        """Regression: an empty array must raise, not propagate nan."""
        with pytest.raises(ValueError, match="empty score array"):
            ThresholdCalibrator().calibrate(np.array([]))

    def test_all_nan_scores_raise_descriptive_error(self):
        """Regression: all-NaN scores used to be indistinguishable from empty."""
        with pytest.raises(ValueError, match="all 4 scores are non-finite"):
            ThresholdCalibrator().calibrate(np.full(4, np.nan))
        with pytest.raises(ValueError, match="non-finite"):
            ThresholdCalibrator(method="mad").calibrate(
                np.array([np.inf, -np.inf, np.nan])
            )

    def test_threshold_is_never_nan(self):
        """Whatever survives validation must yield a finite threshold."""
        scores = np.array([np.nan, 0.4, np.nan, 0.6])
        for method in ("quantile", "mad"):
            threshold = ThresholdCalibrator(method=method).calibrate(scores)
            assert np.isfinite(threshold.threshold)


class TestDetectorThresholdWiring:
    def test_calibrate_threshold_attaches_and_returns(self, fitted_detector):
        stream, _ = synthetic_stream(n_samples=200, seed=3)
        calibrated = fitted_detector.calibrate_threshold(stream, quantile=0.9)
        try:
            assert fitted_detector.threshold is calibrated
            assert calibrated.method == "quantile"
            assert np.isfinite(calibrated.threshold)
            # The 0.9 quantile of the calibration scores themselves alarms on
            # roughly the top decile.
            scores = fitted_detector.score_stream(stream).valid_scores()
            rate = calibrated.classify(scores).mean()
            assert 0.0 < rate <= 0.2
        finally:
            fitted_detector.set_threshold(None)

    def test_set_threshold_clears(self, fitted_detector):
        fitted_detector.set_threshold(CalibratedThreshold(1.0, "quantile", 0.99))
        assert fitted_detector.threshold is not None
        fitted_detector.set_threshold(None)
        assert fitted_detector.threshold is None

    def test_runtimes_fall_back_to_detector_threshold(self, fitted_detector):
        from repro.edge import MultiStreamRuntime, StreamingRuntime

        marker = CalibratedThreshold(0.5, "quantile", 0.99)
        fitted_detector.set_threshold(marker)
        try:
            assert StreamingRuntime(fitted_detector)._resolve_threshold() is marker
            assert MultiStreamRuntime(fitted_detector)._resolve_threshold() is marker
            explicit = CalibratedThreshold(2.0, "mad", 6.0)
            runtime = StreamingRuntime(fitted_detector, explicit)
            assert runtime._resolve_threshold() is explicit
        finally:
            fitted_detector.set_threshold(None)

    def test_threshold_calibrated_after_runtime_construction_still_fires(self):
        """Regression: the fallback is resolved at run() time, not __init__."""
        from repro.data import StreamReader
        from repro.edge import StreamingRuntime

        stream, _ = synthetic_stream(n_samples=200, seed=9)
        detector = VaradeDetector(
            VaradeConfig(n_channels=5, window=16, base_feature_maps=4),
            TrainingConfig(epochs=2, mean_warmup_epochs=1, learning_rate=3e-3,
                           variance_finetune_epochs=1, max_train_windows=100, seed=0),
        ).fit(stream)
        runtime = StreamingRuntime(detector)          # built before calibration
        detector.calibrate_threshold(stream, quantile=0.5)
        result = runtime.run(StreamReader(stream))
        # With a median threshold roughly half the scored samples must alarm.
        assert result.alarms.sum() > 0.2 * result.samples_scored
