"""Tests for the VARADE configuration objects."""

import pytest

from repro.core import TrainingConfig, VaradeConfig


class TestVaradeConfig:
    def test_paper_configuration_matches_section_3_1(self):
        """T=512 gives 8 layers; feature maps double every 2 layers 128 -> 1024."""
        config = VaradeConfig.paper()
        assert config.window == 512
        assert config.n_layers == 8
        schedule = config.feature_map_schedule()
        assert schedule[0] == 128
        assert schedule[-1] == 1024
        assert schedule == [128, 128, 256, 256, 512, 512, 1024, 1024]
        assert config.head_time_steps == 2

    def test_layer_count_tracks_window(self):
        assert VaradeConfig(n_channels=4, window=16).n_layers == 3
        assert VaradeConfig(n_channels=4, window=64).n_layers == 5

    def test_feature_map_doubling_period(self):
        config = VaradeConfig(n_channels=4, window=32, base_feature_maps=8,
                              feature_map_doubling_period=1)
        assert config.feature_map_schedule() == [8, 16, 32, 64]

    def test_edge_scaled_constructor(self):
        config = VaradeConfig.edge_scaled(n_channels=10, window=32, base_feature_maps=8)
        assert config.n_channels == 10
        assert config.window == 32

    def test_window_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            VaradeConfig(n_channels=4, window=48)
        with pytest.raises(ValueError):
            VaradeConfig(n_channels=4, window=2)

    def test_other_validation(self):
        with pytest.raises(ValueError):
            VaradeConfig(n_channels=0)
        with pytest.raises(ValueError):
            VaradeConfig(n_channels=4, base_feature_maps=0)
        with pytest.raises(ValueError):
            VaradeConfig(n_channels=4, kl_weight=-1.0)


class TestTrainingConfig:
    def test_paper_settings(self):
        config = TrainingConfig.paper()
        assert config.learning_rate == pytest.approx(1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(mean_warmup_epochs=-1)
        with pytest.raises(ValueError):
            TrainingConfig(window_stride=0)
        with pytest.raises(ValueError):
            TrainingConfig(max_train_windows=0)
