"""Quantized-VARADE accuracy and contract tests.

Documented quantization tolerances (enforced here and reported by
``benchmarks/bench_quantized_inference.py``):

* int8 scores track float scores within ``QUANT_SCORE_RTOL`` relative error
  on in-distribution data;
* int8 AUC-ROC on the synthetic anomaly benchmark is within
  ``QUANT_AUC_TOLERANCE`` (2 points) of the float detector's.
"""

import numpy as np
import pytest

from repro.core import VaradeConfig, TrainingConfig, VaradeDetector
from repro.core.quantized import QuantizedVaradeDetector, coerce_calibration_windows
from repro.data import build_synthetic_anomaly_dataset
from repro.data.windowing import sliding_windows
from repro.eval import roc_auc_score

#: documented tolerance of int8 scores relative to float scores on
#: in-distribution (normal) data.
QUANT_SCORE_RTOL = 0.15
#: documented AUC tolerance (2 points) of int8 vs float.
QUANT_AUC_TOLERANCE = 0.02

N_CHANNELS = 5


@pytest.fixture(scope="module")
def anomaly_dataset():
    return build_synthetic_anomaly_dataset(n_channels=N_CHANNELS, seed=7)


@pytest.fixture(scope="module")
def float_detector(anomaly_dataset):
    config = VaradeConfig(n_channels=N_CHANNELS, window=16, base_feature_maps=4)
    training = TrainingConfig(learning_rate=3e-3, epochs=10, mean_warmup_epochs=4,
                              variance_finetune_epochs=15, max_train_windows=400,
                              seed=0)
    return VaradeDetector(config, training).fit(anomaly_dataset.train)


@pytest.fixture(scope="module")
def quantized_detector(float_detector, anomaly_dataset):
    return float_detector.quantize(anomaly_dataset.train)


class TestQuantizedContract:
    def test_quantize_returns_drop_in_detector(self, quantized_detector, float_detector):
        assert isinstance(quantized_detector, QuantizedVaradeDetector)
        assert quantized_detector.window == float_detector.window
        assert quantized_detector.scores_current_sample
        assert quantized_detector.name == "VARADE-int8"

    def test_fit_is_refused(self, quantized_detector, anomaly_dataset):
        with pytest.raises(RuntimeError, match="inference-only"):
            quantized_detector.fit(anomaly_dataset.train)

    def test_score_window_matches_batch(self, quantized_detector, anomaly_dataset):
        test = anomaly_dataset.test
        window = quantized_detector.window
        windows = sliding_windows(test, window, stride=1)[:16]
        targets = test[window - 1:window - 1 + 16]
        batch = quantized_detector.score_windows_batch(windows, targets)
        singles = np.array([
            quantized_detector.score_window(windows[i], targets[i]) for i in range(16)
        ])
        np.testing.assert_array_equal(singles, batch)

    def test_unsupported_detectors_raise(self, anomaly_dataset):
        from repro.baselines.knn import KNNConfig, KNNDetector

        detector = KNNDetector(KNNConfig(n_channels=N_CHANNELS)).fit(anomaly_dataset.train)
        with pytest.raises(NotImplementedError, match="quantization"):
            detector.quantize(anomaly_dataset.train)

    def test_calibration_input_shapes(self, float_detector, anomaly_dataset):
        window = float_detector.window
        windows = coerce_calibration_windows(anomaly_dataset.train, window, N_CHANNELS)
        assert windows.shape[1:] == (window, N_CHANNELS)
        with pytest.raises(ValueError, match="at least one full window"):
            coerce_calibration_windows(anomaly_dataset.train[:3], window, N_CHANNELS)
        with pytest.raises(ValueError, match="calibration"):
            coerce_calibration_windows(np.zeros((4,)), window, N_CHANNELS)

    def test_inference_cost_is_int8_and_smaller(self, quantized_detector, float_detector):
        quantized = quantized_detector.inference_cost()
        float_cost = float_detector.inference_cost()
        assert quantized.compute_dtype == "int8"
        assert quantized.parameter_bytes < float_cost.parameter_bytes / 2
        assert quantized.flops == pytest.approx(float_cost.flops, rel=0.05)

    def test_edge_estimator_rewards_int8(self, quantized_detector, float_detector):
        from repro.edge import EdgeEstimator, JETSON_AGX_ORIN

        estimator = EdgeEstimator(JETSON_AGX_ORIN)
        float_metrics = estimator.estimate(float_detector.inference_cost(), "VARADE")
        int8_metrics = estimator.estimate(quantized_detector.inference_cost(),
                                          "VARADE-int8")
        assert int8_metrics.inference_latency_s <= float_metrics.inference_latency_s
        assert int8_metrics.ram_mb <= float_metrics.ram_mb


class TestQuantizedAccuracy:
    def test_scores_within_documented_rtol(self, float_detector, quantized_detector,
                                           anomaly_dataset):
        """In-distribution drift: int8 tracks float on normal data.

        The rtol contract applies to in-distribution inputs (here: the clean
        training stream).  Anomalous windows are out of distribution by
        definition -- their absolute drift is unbounded, and what matters
        there is the *ranking*, covered by the AUC tolerance below.
        """
        clean = anomaly_dataset.train
        float_result = float_detector.score_stream(clean)
        int8_result = quantized_detector.score_stream(clean)
        np.testing.assert_array_equal(float_result.valid_mask, int8_result.valid_mask)
        float_scores = float_result.valid_scores()
        int8_scores = int8_result.valid_scores()
        relative = np.abs(int8_scores - float_scores) / np.abs(float_scores)
        assert relative.max() <= QUANT_SCORE_RTOL, (
            f"int8 score drift {relative.max():.3f} exceeds the documented "
            f"rtol {QUANT_SCORE_RTOL}"
        )

    def test_auc_within_two_points_of_float(self, float_detector, quantized_detector,
                                            anomaly_dataset):
        test, labels = anomaly_dataset.test, anomaly_dataset.test_labels
        float_scores, float_labels = float_detector.score_stream(test).aligned(labels)
        int8_scores, int8_labels = quantized_detector.score_stream(test).aligned(labels)
        float_auc = roc_auc_score(float_scores, float_labels)
        int8_auc = roc_auc_score(int8_scores, int8_labels)
        # The float detector must actually detect before the comparison means
        # anything.
        assert float_auc > 0.8, f"float VARADE AUC only {float_auc:.3f}"
        assert abs(float_auc - int8_auc) <= QUANT_AUC_TOLERANCE, (
            f"int8 AUC {int8_auc:.3f} deviates from float AUC {float_auc:.3f} "
            f"by more than {QUANT_AUC_TOLERANCE}"
        )

    def test_fleet_serves_quantized_detector_with_parity(self, quantized_detector,
                                                         anomaly_dataset):
        """Quantized fleet serving: batched == sequential, bit for bit."""
        from repro.data import StreamReader
        from repro.edge import MultiStreamRuntime, StreamingRuntime

        streams = [anomaly_dataset.test[offset:offset + 150]
                   for offset in (0, 100, 200, 300)]
        readers = [StreamReader(stream) for stream in streams]
        fleet = MultiStreamRuntime(quantized_detector).run(readers)
        for index, stream in enumerate(streams):
            sequential = StreamingRuntime(quantized_detector).run(StreamReader(stream))
            np.testing.assert_array_equal(
                fleet[index].scores, sequential.scores,
                err_msg=f"stream {index}: quantized fleet scores diverge"
            )
