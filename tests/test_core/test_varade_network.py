"""Tests for the VARADE network architecture."""

import numpy as np
import pytest

from repro import nn
from repro.core import VaradeConfig
from repro.core.varade import VaradeNetwork


@pytest.fixture(scope="module")
def small_config():
    return VaradeConfig(n_channels=6, window=16, base_feature_maps=4)


@pytest.fixture(scope="module")
def network(small_config):
    return VaradeNetwork(small_config, rng=np.random.default_rng(0))


class TestArchitecture:
    def test_output_shapes(self, network, small_config):
        batch = nn.Tensor(np.random.default_rng(1).normal(size=(5, 6, 16)))
        mean, log_var = network(batch)
        assert mean.shape == (5, 6)
        assert log_var.shape == (5, 6)

    def test_backbone_halves_time_dimension_each_layer(self, network):
        """Kernel-2 / stride-2 convolutions: 16 -> 8 -> 4 -> 2."""
        x = nn.Tensor(np.zeros((1, 6, 16)))
        lengths = []
        for layer in network.backbone:
            x = layer(x)
            if isinstance(layer, nn.Conv1d):
                lengths.append(x.shape[-1])
        assert lengths == [8, 4, 2]

    def test_feature_map_schedule_applied(self, network, small_config):
        convs = [layer for layer in network.backbone if isinstance(layer, nn.Conv1d)]
        assert [c.out_channels for c in convs] == small_config.feature_map_schedule()

    def test_paper_scale_parameter_count_order_of_magnitude(self):
        network = VaradeNetwork(VaradeConfig.paper(86), rng=np.random.default_rng(0))
        params = network.num_parameters()
        # 8 conv layers up to 1024 maps plus the two heads: a few million weights.
        assert 3_000_000 < params < 10_000_000

    def test_log_var_is_clipped(self, small_config):
        network = VaradeNetwork(small_config, rng=np.random.default_rng(0))
        huge = nn.Tensor(np.full((1, 6, 16), 1e6))
        _, log_var = network(huge)
        assert np.all(log_var.numpy() <= 10.0)
        assert np.all(log_var.numpy() >= -10.0)

    def test_variance_head_neutral_initialisation(self, small_config):
        network = VaradeNetwork(small_config, rng=np.random.default_rng(0))
        _, log_var = network(nn.Tensor(np.random.default_rng(2).normal(size=(3, 6, 16))))
        np.testing.assert_allclose(log_var.numpy(), small_config.initial_log_var, atol=1e-9)

    def test_delta_parameterisation(self):
        config = VaradeConfig(n_channels=3, window=8, base_feature_maps=2, predict_delta=True)
        network = VaradeNetwork(config, rng=np.random.default_rng(0))
        # Zero out the head so the prediction reduces to the last sample.
        network.head_mean.weight.data[:] = 0.0
        network.head_mean.bias.data[:] = 0.0
        window = np.random.default_rng(3).normal(size=(2, 3, 8))
        mean, _ = network(nn.Tensor(window))
        np.testing.assert_allclose(mean.numpy(), window[:, :, -1], atol=1e-9)

    def test_input_validation(self, network):
        with pytest.raises(ValueError):
            network(nn.Tensor(np.zeros((1, 6))))
        with pytest.raises(ValueError):
            network(nn.Tensor(np.zeros((1, 5, 16))))
        with pytest.raises(ValueError):
            network(nn.Tensor(np.zeros((1, 6, 8))))


class TestInference:
    def test_predict_distribution_accepts_stream_layout(self, network):
        windows = np.random.default_rng(4).normal(size=(7, 16, 6))
        mean, log_var = network.predict_distribution(windows)
        assert mean.shape == (7, 6)
        assert log_var.shape == (7, 6)

    def test_predict_distribution_single_window(self, network):
        mean, log_var = network.predict_distribution(np.zeros((16, 6)))
        assert mean.shape == (1, 6)

    def test_predict_distribution_batch_matches_single(self, small_config):
        """A window scores bit-identically alone or inside any batch.

        The multi-stream fleet relies on this: batched scores must equal the
        sequential runtime's one-window-at-a-time scores exactly.
        """
        rng = np.random.default_rng(11)
        network = VaradeNetwork(small_config, rng=rng)
        # Give the variance head structure so the check is not vacuous.
        network.head_log_var.weight.data = rng.normal(
            0.0, 0.3, network.head_log_var.weight.data.shape
        )
        windows = rng.normal(size=(9, 16, 6))
        mean_batch, log_var_batch = network.predict_distribution(windows)
        for index in range(windows.shape[0]):
            mean_one, log_var_one = network.predict_distribution(windows[index])
            np.testing.assert_array_equal(mean_batch[index], mean_one[0])
            np.testing.assert_array_equal(log_var_batch[index], log_var_one[0])

    def test_predict_distribution_matches_autograd_forward(self, network):
        """The fast graph-free path agrees with the training-time forward."""
        windows = np.random.default_rng(12).normal(size=(5, 16, 6))
        mean, log_var = network.predict_distribution(windows)
        with nn.no_grad():
            mean_ref, log_var_ref = network(nn.Tensor(np.transpose(windows, (0, 2, 1))))
        np.testing.assert_allclose(mean, mean_ref.numpy(), rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(log_var, log_var_ref.numpy(), rtol=1e-10, atol=1e-12)

    def test_predict_distribution_tracks_weight_updates(self, small_config):
        """The fast path reads live weights (no stale caching after training)."""
        network = VaradeNetwork(small_config, rng=np.random.default_rng(13))
        windows = np.random.default_rng(14).normal(size=(2, 16, 6))
        _, before = network.predict_distribution(windows)
        network.head_log_var.bias.data = network.head_log_var.bias.data + 1.0
        _, after = network.predict_distribution(windows)
        np.testing.assert_allclose(after, before + 1.0, atol=1e-12)

    def test_predict_distribution_input_validation(self, network):
        with pytest.raises(ValueError):
            network.predict_distribution(np.zeros((2, 16, 5)))  # wrong channels
        with pytest.raises(ValueError):
            network.predict_distribution(np.zeros((2, 8, 6)))   # wrong window

    def test_log_var_clipped_at_exact_boundary(self):
        """The clip saturates at exactly +/-10.0, and 10.0 itself passes through."""
        config = VaradeConfig(n_channels=3, window=8, base_feature_maps=2)
        windows = np.random.default_rng(15).normal(size=(4, 8, 3))
        for bias, expected in ((50.0, 10.0), (-50.0, -10.0),
                               (10.0, 10.0), (-10.0, -10.0)):
            network = VaradeNetwork(config, rng=np.random.default_rng(0))
            # The variance head's weights start at zero, so its output is the
            # bias exactly -- before and after the clip.
            network.head_log_var.bias.data[:] = bias
            _, log_var = network.predict_distribution(windows)
            np.testing.assert_array_equal(log_var, np.full_like(log_var, expected))
            with nn.no_grad():
                _, log_var_graph = network(nn.Tensor(np.transpose(windows, (0, 2, 1))))
            np.testing.assert_array_equal(
                log_var_graph.numpy(), np.full_like(log_var, expected)
            )

    def test_layer_summary(self, network):
        summary = network.layer_summary()
        assert len(summary) == 3 + 1
        assert "mean, log-variance" in summary[-1]

    def test_profile_hook_counts_all_parameters(self, network, small_config):
        profile = nn.profile_model(network, (small_config.n_channels, small_config.window))
        assert profile.total_parameters == network.num_parameters()
        assert profile.total_flops > 0
