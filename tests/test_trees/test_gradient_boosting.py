"""Tests for gradient boosting (single and multi-output)."""

import numpy as np
import pytest

from repro.trees import GradientBoostingRegressor, MultiOutputGradientBoosting


class TestGradientBoostingRegressor:
    def test_fits_nonlinear_function_better_than_mean(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(400, 2))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1] ** 2
        model = GradientBoostingRegressor(n_estimators=30, learning_rate=0.2, max_depth=3,
                                          rng=rng)
        model.fit(x, y)
        mse = np.mean((model.predict(x) - y) ** 2)
        assert mse < 0.2 * np.var(y)

    def test_training_error_decreases_with_stages(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 3))
        y = x[:, 0] - 2 * x[:, 1]
        model = GradientBoostingRegressor(n_estimators=20, learning_rate=0.3, rng=rng)
        model.fit(x, y)
        scores = model.train_scores_
        assert scores[-1] < scores[0]
        assert len(scores) == 20

    def test_staged_predict_shape_and_final_consistency(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 2))
        y = x[:, 0]
        model = GradientBoostingRegressor(n_estimators=10, rng=rng).fit(x, y)
        stages = model.staged_predict(x)
        assert stages.shape == (10, 100)
        np.testing.assert_allclose(stages[-1], model.predict(x))

    def test_subsample_runs(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(200, 2))
        y = x[:, 0]
        model = GradientBoostingRegressor(n_estimators=5, subsample=0.5, rng=rng).fit(x, y)
        assert model.predict(x).shape == (200,)

    def test_initial_prediction_is_target_mean(self):
        x = np.zeros((10, 1))
        y = np.arange(10.0)
        model = GradientBoostingRegressor(n_estimators=1).fit(x, y)
        assert model.initial_prediction_ == pytest.approx(4.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.zeros((10, 2)), np.zeros(5))


class TestMultiOutputGradientBoosting:
    def test_predicts_every_output(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = np.stack([x[:, 0], -x[:, 1], x[:, 2] * 2], axis=1)
        model = MultiOutputGradientBoosting(n_outputs=3, n_estimators=15, learning_rate=0.3,
                                            rng=rng)
        model.fit(x, y)
        predictions = model.predict(x)
        assert predictions.shape == (200, 3)
        assert np.mean((predictions - y) ** 2) < 0.3 * np.var(y)

    def test_single_output_column_vector(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 2))
        y = x[:, 0]
        model = MultiOutputGradientBoosting(n_outputs=1, n_estimators=5, rng=rng)
        model.fit(x, y)  # 1-D target accepted
        assert model.predict(x).shape == (100, 1)

    def test_wrong_output_count_raises(self):
        model = MultiOutputGradientBoosting(n_outputs=2, n_estimators=2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 2)), np.zeros((10, 3)))

    def test_invalid_output_count(self):
        with pytest.raises(ValueError):
            MultiOutputGradientBoosting(n_outputs=0)
