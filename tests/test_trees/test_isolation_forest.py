"""Tests for the Isolation Forest."""

import numpy as np
import pytest

from repro.trees import IsolationForest, average_path_length


class TestAveragePathLength:
    def test_known_values(self):
        assert float(average_path_length(1)) == pytest.approx(0.0)
        assert float(average_path_length(2)) == pytest.approx(1.0)
        # c(n) grows roughly like 2 ln(n)
        assert float(average_path_length(256)) == pytest.approx(
            2 * (np.log(255) + 0.5772156649) - 2 * 255 / 256, rel=1e-6
        )

    def test_monotonically_increasing(self):
        values = average_path_length(np.array([2, 4, 16, 64, 256, 1024]))
        assert np.all(np.diff(values) > 0)


class TestIsolationForest:
    def test_outliers_score_higher_than_inliers(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(0.0, 1.0, size=(500, 2))
        forest = IsolationForest(n_estimators=50, max_samples=128, rng=rng).fit(inliers)
        outliers = np.array([[8.0, 8.0], [-7.0, 9.0], [10.0, -10.0]])
        inlier_scores = forest.score_samples(inliers[:100])
        outlier_scores = forest.score_samples(outliers)
        assert outlier_scores.min() > np.quantile(inlier_scores, 0.9)

    def test_scores_in_unit_interval(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(300, 4))
        forest = IsolationForest(n_estimators=20, rng=rng).fit(data)
        scores = forest.score_samples(data)
        assert np.all((scores > 0) & (scores < 1))

    def test_predict_flags_contamination_fraction(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(400, 3))
        forest = IsolationForest(n_estimators=30, contamination=0.1, rng=rng).fit(data)
        predictions = forest.predict(data)
        flagged = np.mean(predictions == -1)
        assert 0.02 < flagged < 0.2

    def test_single_query_row(self):
        rng = np.random.default_rng(3)
        forest = IsolationForest(n_estimators=10, rng=rng).fit(rng.normal(size=(100, 2)))
        assert forest.score_samples(np.zeros(2)).shape == (1,)

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            IsolationForest().score_samples(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            IsolationForest().predict(np.zeros((1, 2)))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            IsolationForest(n_estimators=0)
        with pytest.raises(ValueError):
            IsolationForest(max_samples=1)
        with pytest.raises(ValueError):
            IsolationForest(contamination=0.8)

    def test_rejects_bad_data(self):
        with pytest.raises(ValueError):
            IsolationForest().fit(np.zeros(10))
        with pytest.raises(ValueError):
            IsolationForest().fit(np.zeros((1, 3)))

    def test_handles_constant_features(self):
        rng = np.random.default_rng(4)
        data = np.hstack([rng.normal(size=(200, 1)), np.ones((200, 1))])
        forest = IsolationForest(n_estimators=10, rng=rng).fit(data)
        assert np.isfinite(forest.score_samples(data)).all()
