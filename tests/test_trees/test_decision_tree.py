"""Tests for the CART regression tree."""

import numpy as np
import pytest

from repro.trees import DecisionTreeRegressor


class TestFitting:
    def test_fits_piecewise_constant_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(300, 1))
        y = np.where(x[:, 0] > 0.5, 2.0, -1.0)
        tree = DecisionTreeRegressor(max_depth=2)
        tree.fit(x, y)
        predictions = tree.predict(np.array([[0.2], [0.8]]))
        np.testing.assert_allclose(predictions, [-1.0, 2.0], atol=1e-6)

    def test_deeper_tree_fits_better(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-3, 3, size=(400, 1))
        y = np.sin(x[:, 0])
        shallow = DecisionTreeRegressor(max_depth=1).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(x, y)
        mse_shallow = np.mean((shallow.predict(x) - y) ** 2)
        mse_deep = np.mean((deep.predict(x) - y) ** 2)
        assert mse_deep < mse_shallow * 0.5

    def test_depth_zero_predicts_mean(self):
        x = np.arange(10.0).reshape(-1, 1)
        y = np.arange(10.0)
        tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y.mean())

    def test_respects_max_depth(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(x, y)

        def smallest_leaf(node, data_mask, features):
            if node.is_leaf:
                return data_mask.sum()
            left = data_mask & (features[:, node.feature] <= node.threshold)
            right = data_mask & ~ (features[:, node.feature] <= node.threshold)
            return min(smallest_leaf(node.left, left, features),
                       smallest_leaf(node.right, right, features))

        assert smallest_leaf(tree.root, np.ones(50, dtype=bool), x) >= 10

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(30, 2))
        y = np.full(30, 3.3)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.n_leaves == 1
        np.testing.assert_allclose(tree.predict(x), 3.3)

    def test_max_features_subsampling_still_fits(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(200, 6))
        y = x[:, 0] * 2.0
        tree = DecisionTreeRegressor(max_depth=4, max_features=3, rng=rng).fit(x, y)
        assert np.mean((tree.predict(x) - y) ** 2) < np.var(y)


class TestValidationAndIntrospection:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_wrong_feature_count_raises(self):
        tree = DecisionTreeRegressor().fit(np.zeros((10, 3)), np.zeros(10))
        with pytest.raises(ValueError):
            tree.predict(np.zeros((1, 5)))

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_rejects_bad_shapes(self):
        tree = DecisionTreeRegressor()
        with pytest.raises(ValueError):
            tree.fit(np.zeros(10), np.zeros(10))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((10, 2)), np.zeros(5))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0))

    def test_node_count_consistent_with_leaves(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert tree.node_count() == 2 * tree.n_leaves - 1

    def test_single_row_prediction(self):
        tree = DecisionTreeRegressor(max_depth=2).fit(np.arange(20.0).reshape(-1, 1),
                                                      np.arange(20.0))
        assert tree.predict(np.array([5.0])).shape == (1,)
