"""Tests for the IMU and power-meter sensor models."""

import numpy as np
import pytest

from repro.robot import (
    IMUConfig,
    IMUSensorModel,
    POWER_CHANNEL_NAMES,
    PowerMeterConfig,
    PowerMeterModel,
    plan_waypoint_trajectory,
)


@pytest.fixture(scope="module")
def trajectory():
    waypoints = [np.zeros(7), np.full(7, 0.6), np.full(7, -0.3), np.zeros(7)]
    return plan_waypoint_trajectory(waypoints, [1.5, 2.0, 1.5], sample_rate=50.0)


class TestIMUSensorModel:
    def test_reading_shapes(self, trajectory):
        model = IMUSensorModel(IMUConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        reading = model.measure(trajectory.positions, trajectory.velocities,
                                trajectory.accelerations, joint_index=2)
        n = trajectory.n_samples
        assert reading.acceleration.shape == (n, 3)
        assert reading.angular_velocity.shape == (n, 3)
        assert reading.quaternion.shape == (n, 4)
        assert reading.temperature.shape == (n,)
        assert reading.as_matrix().shape == (n, 11)

    def test_measure_all_stacks_every_joint(self, trajectory):
        model = IMUSensorModel(IMUConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        matrix = model.measure_all(trajectory.positions, trajectory.velocities,
                                   trajectory.accelerations)
        assert matrix.shape == (trajectory.n_samples, 7 * 11)

    def test_quaternions_are_unit_norm(self, trajectory):
        model = IMUSensorModel(IMUConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        reading = model.measure(trajectory.positions, trajectory.velocities,
                                trajectory.accelerations, joint_index=0)
        np.testing.assert_allclose(np.linalg.norm(reading.quaternion, axis=1), 1.0, atol=1e-9)

    def test_gravity_visible_at_rest(self):
        n = 100
        zeros = np.zeros((n, 7))
        model = IMUSensorModel(IMUConfig(sample_rate=50.0, apply_kalman=False),
                               rng=np.random.default_rng(0))
        reading = model.measure(zeros, zeros, zeros, joint_index=0)
        assert reading.acceleration[:, 2].mean() == pytest.approx(9.81, abs=0.2)

    def test_noise_scales_with_activity(self, trajectory):
        """Fast segments must show more measurement scatter than dwell phases."""
        model = IMUSensorModel(IMUConfig(sample_rate=50.0, apply_kalman=False),
                               rng=np.random.default_rng(0))
        reading = model.measure(trajectory.positions, trajectory.velocities,
                                trajectory.accelerations, joint_index=3)
        speed = np.abs(trajectory.velocities).sum(axis=1)
        active = speed > np.quantile(speed, 0.8)
        idle = speed < np.quantile(speed, 0.2)
        scatter_active = np.std(np.diff(reading.angular_velocity[active, 1]))
        scatter_idle = np.std(np.diff(reading.angular_velocity[idle, 1]))
        assert scatter_active > 2.0 * scatter_idle

    def test_temperature_rises_with_activity(self, trajectory):
        model = IMUSensorModel(IMUConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        reading = model.measure(trajectory.positions, trajectory.velocities,
                                trajectory.accelerations, joint_index=1)
        assert reading.temperature[-1] >= reading.temperature[0]

    def test_kalman_smoothing_reduces_jitter(self, trajectory):
        raw = IMUSensorModel(IMUConfig(sample_rate=50.0, apply_kalman=False),
                             rng=np.random.default_rng(5))
        smooth = IMUSensorModel(IMUConfig(sample_rate=50.0, apply_kalman=True),
                                rng=np.random.default_rng(5))
        raw_reading = raw.measure(trajectory.positions, trajectory.velocities,
                                  trajectory.accelerations, joint_index=0)
        smooth_reading = smooth.measure(trajectory.positions, trajectory.velocities,
                                        trajectory.accelerations, joint_index=0)
        assert np.std(np.diff(smooth_reading.acceleration[:, 0])) \
            < np.std(np.diff(raw_reading.acceleration[:, 0]))

    def test_invalid_joint_index(self, trajectory):
        model = IMUSensorModel()
        with pytest.raises(ValueError):
            model.measure(trajectory.positions, trajectory.velocities,
                          trajectory.accelerations, joint_index=9)

    def test_shape_validation(self):
        model = IMUSensorModel()
        with pytest.raises(ValueError):
            model.measure(np.zeros(5), np.zeros(5), np.zeros(5), joint_index=0)
        with pytest.raises(ValueError):
            model.measure(np.zeros((5, 7)), np.zeros((4, 7)), np.zeros((5, 7)), joint_index=0)


class TestPowerMeterModel:
    def test_channel_count_and_order(self, trajectory):
        model = PowerMeterModel(PowerMeterConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        channels = model.measure(trajectory.positions, trajectory.velocities,
                                 trajectory.accelerations)
        assert channels.shape == (trajectory.n_samples, len(POWER_CHANNEL_NAMES))

    def test_power_above_idle_baseline(self, trajectory):
        config = PowerMeterConfig(sample_rate=50.0)
        model = PowerMeterModel(config, rng=np.random.default_rng(0))
        channels = model.measure(trajectory.positions, trajectory.velocities,
                                 trajectory.accelerations)
        power = channels[:, POWER_CHANNEL_NAMES.index("power")]
        assert power.mean() > config.idle_power * 0.9

    def test_motion_draws_more_power_than_rest(self, trajectory):
        model = PowerMeterModel(PowerMeterConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        mechanical = model.mechanical_power(trajectory.positions, trajectory.velocities,
                                            trajectory.accelerations)
        speed = np.abs(trajectory.velocities).sum(axis=1)
        assert mechanical[speed > np.quantile(speed, 0.8)].mean() \
            > mechanical[speed < np.quantile(speed, 0.2)].mean()

    def test_electrical_consistency(self, trajectory):
        """Apparent power must satisfy S^2 = P^2 + Q^2 and I = S / V."""
        model = PowerMeterModel(PowerMeterConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        channels = model.measure(trajectory.positions, trajectory.velocities,
                                 trajectory.accelerations)
        names = list(POWER_CHANNEL_NAMES)
        power = channels[:, names.index("power")]
        reactive = channels[:, names.index("reactive_power")]
        voltage = channels[:, names.index("voltage")]
        current = channels[:, names.index("current")]
        factor = channels[:, names.index("power_factor")]
        apparent = np.sqrt(power ** 2 + reactive ** 2)
        np.testing.assert_allclose(current, apparent / voltage, rtol=1e-9)
        np.testing.assert_allclose(power / apparent, factor, rtol=1e-9)

    def test_import_energy_is_monotonic(self, trajectory):
        model = PowerMeterModel(PowerMeterConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        channels = model.measure(trajectory.positions, trajectory.velocities,
                                 trajectory.accelerations)
        energy = channels[:, POWER_CHANNEL_NAMES.index("import_energy")]
        assert np.all(np.diff(energy) >= 0)

    def test_extra_power_increases_reading(self, trajectory):
        model = PowerMeterModel(PowerMeterConfig(sample_rate=50.0), rng=np.random.default_rng(0))
        surge = np.full(trajectory.n_samples, 300.0)
        base = PowerMeterModel(PowerMeterConfig(sample_rate=50.0), rng=np.random.default_rng(0)) \
            .measure(trajectory.positions, trajectory.velocities, trajectory.accelerations)
        boosted = model.measure(trajectory.positions, trajectory.velocities,
                                trajectory.accelerations, extra_power=surge)
        power_index = POWER_CHANNEL_NAMES.index("power")
        assert boosted[:, power_index].mean() > base[:, power_index].mean() + 200

    def test_extra_power_shape_validation(self, trajectory):
        model = PowerMeterModel()
        with pytest.raises(ValueError):
            model.measure(trajectory.positions, trajectory.velocities,
                          trajectory.accelerations, extra_power=np.zeros(3))
