"""Tests for forward kinematics, trajectories and the action library."""

import numpy as np
import pytest

from repro.robot import (
    ActionLibrary,
    JOINT_LIMITS_RAD,
    JointTrajectory,
    KukaLBRIiwa,
    plan_waypoint_trajectory,
)


class TestKinematics:
    def test_joint_positions_shape(self):
        robot = KukaLBRIiwa()
        positions = robot.joint_positions(np.zeros(7))
        assert positions.shape == (7, 3)

    def test_home_pose_is_vertical_stack(self):
        robot = KukaLBRIiwa()
        positions = robot.joint_positions(np.zeros(7))
        # At the zero configuration the arm points straight up: x = y = 0.
        np.testing.assert_allclose(positions[:, :2], 0.0, atol=1e-12)
        assert positions[-1, 2] == pytest.approx(0.360 + 0.420 + 0.400 + 0.126, abs=1e-9)

    def test_positions_within_reach(self):
        robot = KukaLBRIiwa()
        rng = np.random.default_rng(0)
        for _ in range(10):
            q = rng.uniform(-1.0, 1.0, 7) * JOINT_LIMITS_RAD
            positions = robot.joint_positions(q)
            assert np.linalg.norm(positions[-1]) <= robot.reach() + 1e-9

    def test_clamp_joints(self):
        robot = KukaLBRIiwa()
        clamped = robot.clamp_joints(np.full(7, 10.0))
        np.testing.assert_allclose(clamped, JOINT_LIMITS_RAD)

    def test_wrong_joint_count_raises(self):
        with pytest.raises(ValueError):
            KukaLBRIiwa().joint_positions(np.zeros(5))

    def test_trajectory_helpers(self):
        robot = KukaLBRIiwa()
        trajectory = np.zeros((4, 7))
        assert robot.trajectory_positions(trajectory).shape == (4, 7, 3)
        assert robot.trajectory_orientations(trajectory).shape == (4, 7, 3)


class TestQuinticTrajectory:
    def test_boundary_conditions(self):
        start = np.zeros(7)
        end = np.ones(7) * 0.5
        trajectory = plan_waypoint_trajectory([start, end], [2.0], sample_rate=100.0)
        np.testing.assert_allclose(trajectory.positions[0], start, atol=1e-9)
        np.testing.assert_allclose(trajectory.positions[-1], end, atol=1e-2)
        # Quintic profiles start and end at rest.
        np.testing.assert_allclose(trajectory.velocities[0], 0.0, atol=1e-9)
        np.testing.assert_allclose(trajectory.accelerations[0], 0.0, atol=1e-6)

    def test_sample_count_matches_duration(self):
        trajectory = plan_waypoint_trajectory([np.zeros(2), np.ones(2)], [1.5], sample_rate=40.0)
        assert trajectory.n_samples == 60
        assert trajectory.duration == pytest.approx(59 / 40.0)

    def test_velocity_is_derivative_of_position(self):
        trajectory = plan_waypoint_trajectory([np.zeros(1), np.ones(1)], [1.0], sample_rate=200.0)
        numeric = np.gradient(trajectory.positions[:, 0], trajectory.times)
        np.testing.assert_allclose(numeric[5:-5], trajectory.velocities[5:-5, 0], atol=0.02)

    def test_multi_segment(self):
        waypoints = [np.zeros(3), np.ones(3), np.zeros(3)]
        trajectory = plan_waypoint_trajectory(waypoints, [1.0, 1.0], sample_rate=50.0)
        assert trajectory.n_samples == 100

    def test_concatenate(self):
        a = plan_waypoint_trajectory([np.zeros(2), np.ones(2)], [1.0], 50.0)
        b = plan_waypoint_trajectory([np.ones(2), np.zeros(2)], [1.0], 50.0)
        joined = a.concatenate(b)
        assert joined.n_samples == a.n_samples + b.n_samples
        assert np.all(np.diff(joined.times) > 0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_waypoint_trajectory([np.zeros(2)], [], 50.0)
        with pytest.raises(ValueError):
            plan_waypoint_trajectory([np.zeros(2), np.ones(2)], [1.0, 2.0], 50.0)
        with pytest.raises(ValueError):
            plan_waypoint_trajectory([np.zeros(2), np.ones(2)], [-1.0], 50.0)
        with pytest.raises(ValueError):
            plan_waypoint_trajectory([np.zeros(2), np.ones(2)], [1.0], 0.0)


class TestActionLibrary:
    def test_default_has_thirty_actions(self):
        library = ActionLibrary()
        assert len(library) == 30
        assert library.action_ids == list(range(30))

    def test_actions_are_deterministic_for_a_seed(self):
        a = ActionLibrary(num_actions=5, seed=11)
        b = ActionLibrary(num_actions=5, seed=11)
        for action_id in range(5):
            np.testing.assert_allclose(a[action_id].waypoints[1], b[action_id].waypoints[1])

    def test_different_actions_differ(self):
        library = ActionLibrary(num_actions=5, seed=2)
        assert not np.allclose(library[0].waypoints[1], library[1].waypoints[1])

    def test_waypoints_within_limits(self):
        library = ActionLibrary(num_actions=10, seed=3)
        for action in library:
            for waypoint in action.waypoints:
                assert np.all(np.abs(waypoint) <= JOINT_LIMITS_RAD + 1e-9)

    def test_plan_produces_trajectory(self):
        library = ActionLibrary(num_actions=3, seed=4)
        trajectory = library[0].plan(sample_rate=50.0)
        assert isinstance(trajectory, JointTrajectory)
        assert trajectory.positions.shape[1] == 7

    def test_schedule_covers_duration(self):
        library = ActionLibrary(num_actions=4, seed=5)
        schedule = library.schedule(total_duration=30.0)
        total = sum(library[a].duration for a in schedule)
        assert total >= 30.0

    def test_unknown_action_raises(self):
        with pytest.raises(KeyError):
            ActionLibrary(num_actions=3)[99]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ActionLibrary(num_actions=0)
        with pytest.raises(ValueError):
            ActionLibrary(min_waypoints=1)
        with pytest.raises(ValueError):
            ActionLibrary(amplitude_scale=0.0)
        with pytest.raises(ValueError):
            ActionLibrary().schedule(0.0)
