"""Tests for the Kalman filters used by the IMU sensor model."""

import numpy as np
import pytest

from repro.robot import ConstantVelocityKalman, KalmanFilter1D, smooth_series


class TestKalmanFilter1D:
    def test_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        truth = np.sin(np.linspace(0, 4 * np.pi, 500))
        noisy = truth + rng.normal(0, 0.3, truth.size)
        filtered = KalmanFilter1D(process_variance=1e-3, measurement_variance=0.09,
                                  initial_estimate=noisy[0]).filter(noisy)
        assert np.var(filtered - truth) < np.var(noisy - truth)

    def test_converges_to_constant(self):
        filtered = KalmanFilter1D(initial_estimate=0.0).filter(np.full(200, 5.0))
        assert filtered[-1] == pytest.approx(5.0, abs=0.05)

    def test_variance_shrinks(self):
        kalman = KalmanFilter1D()
        initial = kalman.variance
        kalman.filter(np.zeros(50))
        assert kalman.variance < initial

    def test_invalid_variances(self):
        with pytest.raises(ValueError):
            KalmanFilter1D(process_variance=0.0)


class TestConstantVelocityKalman:
    def test_tracks_ramp(self):
        times = np.arange(300) * 0.01
        truth = 2.0 * times
        rng = np.random.default_rng(1)
        noisy = truth + rng.normal(0, 0.05, truth.size)
        kalman = ConstantVelocityKalman(dt=0.01, process_noise=1e-2, measurement_noise=2.5e-3)
        filtered = kalman.filter(noisy)
        assert abs(filtered[-1] - truth[-1]) < 0.1
        # Velocity state should approach the true slope.
        assert kalman.state[1, 0] == pytest.approx(2.0, abs=0.5)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            ConstantVelocityKalman(dt=0.0)


class TestSmoothSeries:
    def test_smooths(self):
        rng = np.random.default_rng(2)
        noisy = np.ones(200) + rng.normal(0, 0.2, 200)
        smoothed = smooth_series(noisy)
        assert np.std(np.diff(smoothed)) < np.std(np.diff(noisy))

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            smooth_series(np.zeros((3, 3)))
