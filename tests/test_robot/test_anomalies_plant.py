"""Tests for collision injection and the full robot-cell simulator."""

import numpy as np
import pytest

from repro.robot import (
    CollisionInjector,
    N_TOTAL_CHANNELS,
    RobotCellConfig,
    RobotCellSimulator,
)


class TestCollisionInjector:
    def test_samples_requested_number_of_events(self):
        injector = CollisionInjector(sample_rate=50.0, rng=np.random.default_rng(0))
        events = injector.sample_events(n_samples=20000, n_collisions=30)
        assert len(events) == 30

    def test_events_do_not_overlap(self):
        injector = CollisionInjector(sample_rate=50.0, rng=np.random.default_rng(1))
        events = injector.sample_events(n_samples=30000, n_collisions=40)
        events = sorted(events, key=lambda e: e.start_index)
        for first, second in zip(events, events[1:]):
            assert first.end_index <= second.start_index

    def test_labels_match_events(self):
        injector = CollisionInjector(sample_rate=50.0, rng=np.random.default_rng(2))
        events = injector.sample_events(n_samples=5000, n_collisions=5)
        labels = injector.labels(5000, events)
        assert labels.sum() == sum(e.duration_samples for e in events)

    def test_injection_only_modifies_collision_windows(self):
        injector = CollisionInjector(sample_rate=50.0, rng=np.random.default_rng(3))
        channels = np.zeros((2000, 77))
        events = injector.sample_events(2000, n_collisions=3)
        modified = injector.apply_to_joint_channels(channels, events)
        labels = injector.labels(2000, events).astype(bool)
        assert np.abs(modified[~labels]).max() == 0.0
        assert np.abs(modified[labels]).max() > 1.0

    def test_power_surge_nonnegative_and_local(self):
        injector = CollisionInjector(sample_rate=50.0, rng=np.random.default_rng(4))
        events = injector.sample_events(2000, n_collisions=3)
        surge = injector.power_surge(2000, events)
        labels = injector.labels(2000, events).astype(bool)
        assert np.all(surge >= 0)
        assert surge[~labels].max() == 0.0
        assert surge[labels].max() > 10.0

    def test_too_short_recording_raises(self):
        injector = CollisionInjector(sample_rate=50.0)
        with pytest.raises(ValueError):
            injector.sample_events(n_samples=10, n_collisions=1)

    def test_zero_collisions(self):
        injector = CollisionInjector(sample_rate=50.0, rng=np.random.default_rng(5))
        assert injector.sample_events(5000, n_collisions=0) == []


class TestRobotCellSimulator:
    def test_normal_recording_shape_and_schema(self, tiny_normal_recording):
        recording = tiny_normal_recording
        assert recording.data.shape[1] == N_TOTAL_CHANNELS == 86
        assert len(recording.channel_names) == 86
        assert recording.channel_names[0] == "action_id"
        assert recording.channel_names[-1] == "import_energy"
        assert recording.labels.sum() == 0
        assert recording.duration_s == pytest.approx(20.0, rel=0.05)

    def test_collision_recording_has_labelled_events(self, tiny_collision_recording):
        recording = tiny_collision_recording
        assert len(recording.events) == 4
        assert recording.labels.sum() > 0
        assert 0.0 < recording.anomaly_fraction < 0.5

    def test_action_id_channel_within_library(self, tiny_normal_recording):
        action_ids = tiny_normal_recording.channel("action_id")
        assert set(np.unique(action_ids)).issubset(set(range(5)))

    def test_channel_lookup_by_name(self, tiny_normal_recording):
        assert tiny_normal_recording.channel("power").shape[0] == tiny_normal_recording.n_samples
        with pytest.raises(KeyError):
            tiny_normal_recording.channel("does_not_exist")

    def test_reproducible_with_same_seed(self):
        config = RobotCellConfig(sample_rate=20.0, num_actions=3)
        a = RobotCellSimulator(config=config, seed=9).record_normal(6.0)
        b = RobotCellSimulator(config=config, seed=9).record_normal(6.0)
        np.testing.assert_allclose(a.data, b.data)

    def test_different_seeds_differ(self):
        config = RobotCellConfig(sample_rate=20.0, num_actions=3)
        a = RobotCellSimulator(config=config, seed=1).record_normal(6.0)
        b = RobotCellSimulator(config=config, seed=2).record_normal(6.0)
        assert not np.allclose(a.data, b.data)

    def test_collisions_visible_in_kinematic_channels(self, tiny_collision_recording):
        """Collision windows must show much stronger high-frequency content
        (the impact ringing) than normal operation."""
        recording = tiny_collision_recording
        labels = recording.labels.astype(bool)
        acc_columns = [i for i, name in enumerate(recording.channel_names) if "Acc" in name]
        jerk = np.abs(np.diff(recording.data[:, acc_columns], axis=0)).mean(axis=1)
        jerk_labels = labels[1:]
        anomalous_energy = jerk[jerk_labels].mean()
        normal_energy = jerk[~jerk_labels].mean()
        assert anomalous_energy > 1.5 * normal_energy

    def test_invalid_duration(self, tiny_simulator):
        with pytest.raises(ValueError):
            tiny_simulator.record_normal(0.0)
