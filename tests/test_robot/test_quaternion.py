"""Tests for quaternion utilities."""

import numpy as np
import pytest

from repro.robot import quaternion as quat


class TestConversions:
    def test_identity_rotation(self):
        q = quat.euler_to_quaternion(0.0, 0.0, 0.0)
        np.testing.assert_allclose(q, [1.0, 0.0, 0.0, 0.0], atol=1e-12)

    def test_round_trip_euler(self):
        rng = np.random.default_rng(0)
        roll = rng.uniform(-1.2, 1.2, 50)
        pitch = rng.uniform(-1.2, 1.2, 50)
        yaw = rng.uniform(-1.2, 1.2, 50)
        q = quat.euler_to_quaternion(roll, pitch, yaw)
        r2, p2, y2 = quat.quaternion_to_euler(q)
        np.testing.assert_allclose(r2, roll, atol=1e-9)
        np.testing.assert_allclose(p2, pitch, atol=1e-9)
        np.testing.assert_allclose(y2, yaw, atol=1e-9)

    def test_unit_norm(self):
        q = quat.euler_to_quaternion(np.array([0.3, -1.0]), np.array([0.2, 0.9]),
                                     np.array([-0.7, 0.1]))
        np.testing.assert_allclose(np.linalg.norm(q, axis=-1), 1.0, atol=1e-12)

    def test_vectorised_shapes(self):
        angles = np.zeros((5, 3))
        q = quat.euler_to_quaternion(angles[:, 0], angles[:, 1], angles[:, 2])
        assert q.shape == (5, 4)


class TestAlgebra:
    def test_multiply_by_conjugate_gives_identity(self):
        q = quat.euler_to_quaternion(0.4, -0.3, 1.1)
        product = quat.quaternion_multiply(q, quat.quaternion_conjugate(q))
        np.testing.assert_allclose(product, [1.0, 0.0, 0.0, 0.0], atol=1e-12)

    def test_multiplication_composes_rotations(self):
        qa = quat.axis_angle_to_quaternion(np.array([0.0, 0.0, 1.0]), np.array(0.3))
        qb = quat.axis_angle_to_quaternion(np.array([0.0, 0.0, 1.0]), np.array(0.5))
        combined = quat.quaternion_multiply(qa, qb)
        expected = quat.axis_angle_to_quaternion(np.array([0.0, 0.0, 1.0]), np.array(0.8))
        np.testing.assert_allclose(combined, expected, atol=1e-12)

    def test_normalize_handles_zero(self):
        result = quat.quaternion_normalize(np.zeros(4))
        assert np.isfinite(result).all()

    def test_normalize_unit_output(self):
        q = quat.quaternion_normalize(np.array([2.0, 0.0, 0.0, 0.0]))
        np.testing.assert_allclose(q, [1.0, 0.0, 0.0, 0.0])


class TestSlerp:
    def test_endpoints(self):
        qa = quat.euler_to_quaternion(0.0, 0.0, 0.0)
        qb = quat.euler_to_quaternion(0.0, 0.0, 1.0)
        np.testing.assert_allclose(quat.quaternion_slerp(qa, qb, 0.0), qa, atol=1e-9)
        np.testing.assert_allclose(quat.quaternion_slerp(qa, qb, 1.0), qb, atol=1e-9)

    def test_midpoint_half_angle(self):
        qa = quat.axis_angle_to_quaternion(np.array([0.0, 0.0, 1.0]), np.array(0.0))
        qb = quat.axis_angle_to_quaternion(np.array([0.0, 0.0, 1.0]), np.array(1.0))
        mid = quat.quaternion_slerp(qa, qb, 0.5)
        expected = quat.axis_angle_to_quaternion(np.array([0.0, 0.0, 1.0]), np.array(0.5))
        np.testing.assert_allclose(mid, expected, atol=1e-9)

    def test_nearly_identical_quaternions(self):
        qa = quat.euler_to_quaternion(0.1, 0.0, 0.0)
        qb = quat.euler_to_quaternion(0.1 + 1e-7, 0.0, 0.0)
        result = quat.quaternion_slerp(qa, qb, 0.5)
        assert np.linalg.norm(result) == pytest.approx(1.0)
