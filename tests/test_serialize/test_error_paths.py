"""load_detector error-path hardening: distinct, descriptive exceptions.

Each failure mode raises its own exception class -- all subclasses of
:class:`repro.serialize.SerializationError`, so pre-existing ``except``
sites keep working -- with a message that names the offending path/field.
"""

import json

import numpy as np
import pytest

from repro.baselines.knn import KNNConfig, KNNDetector
from repro.serialize import (ArtifactNotFoundError, SerializationError,
                             UnknownDetectorError, UnsupportedFormatError,
                             load_detector, read_manifest, save_detector)


@pytest.fixture()
def artifact(tmp_path):
    detector = KNNDetector(KNNConfig(n_channels=2, max_reference_points=30))
    detector.fit(np.random.default_rng(0).normal(size=(60, 2)))
    return save_detector(detector, tmp_path / "artifact")


def _edit_manifest(artifact, **changes):
    manifest_path = artifact / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest.update(changes)
    manifest_path.write_text(json.dumps(manifest))


def test_missing_directory_raises_artifact_not_found(tmp_path):
    missing = tmp_path / "never-saved"
    with pytest.raises(ArtifactNotFoundError, match="manifest.json is missing"):
        load_detector(missing)


def test_missing_manifest_raises_artifact_not_found(artifact):
    (artifact / "manifest.json").unlink()
    with pytest.raises(ArtifactNotFoundError, match="manifest.json"):
        load_detector(artifact)


def test_missing_arrays_raises_artifact_not_found_naming_the_file(artifact):
    (artifact / "arrays.npz").unlink()
    with pytest.raises(ArtifactNotFoundError, match="arrays.npz"):
        load_detector(artifact)


def test_unknown_format_version_raises_unsupported_format(artifact):
    _edit_manifest(artifact, format_version=99)
    with pytest.raises(UnsupportedFormatError, match="99"):
        load_detector(artifact)


def test_missing_format_version_raises_unsupported_format(artifact):
    manifest_path = artifact / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["format_version"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(UnsupportedFormatError, match="None"):
        load_detector(artifact)


def test_registry_unknown_detector_kind_raises_unknown_detector(artifact):
    _edit_manifest(artifact, detector_class="FrobnicatorDetector")
    with pytest.raises(UnknownDetectorError, match="FrobnicatorDetector"):
        load_detector(artifact)


def test_corrupt_manifest_json_raises_serialization_error(artifact):
    (artifact / "manifest.json").write_text("{not valid json")
    with pytest.raises(SerializationError, match="not valid JSON"):
        load_detector(artifact)


def test_all_error_classes_subclass_serialization_error():
    for cls in (ArtifactNotFoundError, UnsupportedFormatError,
                UnknownDetectorError):
        assert issubclass(cls, SerializationError)


def test_read_manifest_happy_path_returns_the_manifest(artifact):
    manifest = read_manifest(artifact)
    assert manifest["detector_class"] == "KNNDetector"
    assert manifest["format_version"] == 1


def test_save_unregistered_class_raises_unknown_detector(tmp_path):
    class HomemadeDetector:
        name = "homemade"
        _fitted = True

    with pytest.raises(UnknownDetectorError, match="HomemadeDetector"):
        save_detector(HomemadeDetector(), tmp_path / "nope")


def test_extra_manifest_cannot_shadow_reserved_keys(tmp_path):
    detector = KNNDetector(KNNConfig(n_channels=2, max_reference_points=30))
    detector.fit(np.random.default_rng(0).normal(size=(60, 2)))
    with pytest.raises(SerializationError, match="reserved"):
        save_detector(detector, tmp_path / "clash",
                      extra_manifest={"window": 5})
