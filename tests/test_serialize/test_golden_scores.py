"""Golden-score regression suite.

Retrains every detector in the exact configuration frozen by
``tests/golden/golden_harness.py`` and compares full-stream scores against
the committed ``tests/golden/golden_scores.npz``.  Any unintended numeric
drift -- in the data generator, windowing, training loops, the fast paths or
threshold calibration -- fails here; intentional changes are re-frozen with::

    PYTHONPATH=src python tests/golden/golden_harness.py --write

The tolerance is tight enough to catch algorithmic drift while absorbing
run-to-run differences in low-level summation order across BLAS builds.
"""

import numpy as np

RTOL = 1e-6
ATOL = 1e-9


def test_fixture_has_all_detectors(golden, golden_fixture):
    for name in golden.DETECTOR_NAMES:
        assert f"scores.{name}" in golden_fixture
        assert f"threshold.{name}" in golden_fixture


def test_stream_generator_matches_fixture(golden_streams, golden_fixture):
    """The seeded generator must reproduce the frozen stream bit-for-bit."""
    np.testing.assert_array_equal(golden_streams["train"], golden_fixture["stream.train"])
    np.testing.assert_array_equal(golden_streams["test"], golden_fixture["stream.test"])
    np.testing.assert_array_equal(golden_streams["labels"], golden_fixture["stream.labels"])


def test_scores_match_golden(golden, golden_streams, golden_fixture, fitted_detectors):
    scores = golden.score_all(fitted_detectors, golden_streams["test"])
    for name in golden.DETECTOR_NAMES:
        expected = golden_fixture[f"scores.{name}"]
        actual = scores[name]
        assert actual.shape == expected.shape, name
        # NaN alignment (the unscored context prefix) must match exactly.
        np.testing.assert_array_equal(np.isnan(actual), np.isnan(expected),
                                      err_msg=f"{name}: NaN alignment drifted")
        mask = ~np.isnan(expected)
        np.testing.assert_allclose(
            actual[mask], expected[mask], rtol=RTOL, atol=ATOL,
            err_msg=(f"{name}: scores drifted from the golden fixture; if this "
                     "change is intentional, regenerate with "
                     "`PYTHONPATH=src python tests/golden/golden_harness.py --write`"),
        )


def test_calibrated_thresholds_match_golden(golden, golden_fixture, fitted_detectors):
    for name in golden.DETECTOR_NAMES:
        expected = float(golden_fixture[f"threshold.{name}"][0])
        actual = fitted_detectors[name].threshold.threshold
        np.testing.assert_allclose(actual, expected, rtol=RTOL, atol=ATOL,
                                   err_msg=f"{name}: calibrated threshold drifted")
