"""Fixtures shared by the serialization and golden-score suites.

The golden harness (``tests/golden/golden_harness.py``) is the single source
of truth for the stream, the detector configurations and the scoring
protocol; it is loaded here by path so the tests and the regeneration script
can never disagree.
"""

import importlib.util
from pathlib import Path

import pytest

_HARNESS_PATH = Path(__file__).resolve().parents[1] / "golden" / "golden_harness.py"


def _load_harness():
    spec = importlib.util.spec_from_file_location("golden_harness", _HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="session")
def golden():
    """The golden harness module (stream + detector builders + protocol)."""
    return _load_harness()


@pytest.fixture(scope="session")
def golden_fixture(golden):
    """The committed frozen arrays (stream, per-detector scores, thresholds)."""
    return golden.load_fixture()


@pytest.fixture(scope="session")
def golden_streams(golden):
    train, test, labels = golden.generate_stream()
    return {"train": train, "test": test, "labels": labels}


@pytest.fixture(scope="session")
def fitted_detectors(golden, golden_streams):
    """All six detectors trained + threshold-calibrated per the golden recipe.

    Session scoped: training happens once and is shared by the golden-score
    comparison, the round-trip suite and the quantization tests.
    """
    return golden.fit_and_calibrate(golden_streams["train"])
