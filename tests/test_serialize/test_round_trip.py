"""Round-trip parity: ``load_detector(save_detector(d))`` is bit-identical.

For every detector in the study (and the int8-quantized VARADE) a reloaded
artifact must reproduce ``score_windows_batch`` and ``score_stream``
bit-for-bit, classify identically under the restored calibrated threshold,
and carry the fitted scaler and training history.  The suite also pins the
artifact format's failure modes (unfitted detectors, overwrites, corrupt or
future-version manifests).
"""

import json

import numpy as np
import pytest

from repro.core.quantized import QuantizedVaradeDetector
from repro.data.normalization import MinMaxScaler, StandardScaler
from repro.data.windowing import sliding_windows
from repro.serialize import (
    ARRAYS_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SerializationError,
    load_detector,
    save_detector,
)

N_BATCH = 64


def _batch_for(detector, stream):
    window = detector.window
    windows = sliding_windows(stream, window, stride=1)[:N_BATCH]
    targets = stream[window - 1:window - 1 + windows.shape[0]]
    return windows, targets


@pytest.fixture(scope="module")
def saved_detectors(golden, fitted_detectors, tmp_path_factory):
    root = tmp_path_factory.mktemp("artifacts")
    paths = {}
    for name, detector in fitted_detectors.items():
        paths[name] = save_detector(detector, root / name.replace(" ", "_"))
    return paths


def test_score_windows_batch_round_trips_bit_identically(
        golden, golden_streams, fitted_detectors, saved_detectors):
    for name in golden.DETECTOR_NAMES:
        original = fitted_detectors[name]
        restored = load_detector(saved_detectors[name])
        windows, targets = _batch_for(original, golden_streams["test"])
        before = original.score_windows_batch(windows, targets)
        after = restored.score_windows_batch(windows, targets)
        np.testing.assert_array_equal(
            before, after, err_msg=f"{name}: reloaded scores are not bit-identical"
        )


def test_score_stream_round_trips_with_nan_alignment(
        golden, golden_streams, fitted_detectors, saved_detectors):
    test = golden_streams["test"]
    for name in golden.DETECTOR_NAMES:
        restored = load_detector(saved_detectors[name])
        before = fitted_detectors[name].score_stream(test)
        after = restored.score_stream(test)
        np.testing.assert_array_equal(before.valid_mask, after.valid_mask)
        np.testing.assert_array_equal(before.scores[before.valid_mask],
                                      after.scores[after.valid_mask],
                                      err_msg=f"{name}: stream scores drifted")


def test_threshold_round_trips_and_classifies_identically(
        golden, golden_streams, fitted_detectors, saved_detectors):
    test = golden_streams["test"]
    for name in golden.DETECTOR_NAMES:
        original = fitted_detectors[name]
        restored = load_detector(saved_detectors[name])
        assert restored.threshold == original.threshold, name
        scores = original.score_stream(test).valid_scores()
        np.testing.assert_array_equal(
            original.threshold.classify(scores),
            restored.threshold.classify(scores),
            err_msg=f"{name}: calibrated-threshold classification drifted",
        )


def test_history_round_trips(golden, fitted_detectors, saved_detectors):
    for name in golden.DETECTOR_NAMES:
        original = fitted_detectors[name]
        restored = load_detector(saved_detectors[name])
        assert restored.history.epoch_losses == pytest.approx(original.history.epoch_losses)
        assert restored.history.wall_time_s == pytest.approx(original.history.wall_time_s)


def test_manifest_is_versioned_json(golden, saved_detectors):
    for name in golden.DETECTOR_NAMES:
        with open(saved_detectors[name] / MANIFEST_NAME, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["name"] == name
        assert (saved_detectors[name] / ARRAYS_NAME).is_file()
        # Every declared array must exist in the npz payload.
        with np.load(saved_detectors[name] / ARRAYS_NAME) as payload:
            assert set(manifest["arrays"]) <= set(payload.files)


def test_scaler_round_trips(fitted_detectors, golden_streams, tmp_path):
    train = golden_streams["train"]
    detector = fitted_detectors["kNN"]
    for scaler in (MinMaxScaler().fit(train), StandardScaler().fit(train)):
        detector.scaler = scaler
        try:
            restored = load_detector(save_detector(
                detector, tmp_path / type(scaler).__name__))
        finally:
            detector.scaler = None
        assert type(restored.scaler) is type(scaler)
        np.testing.assert_array_equal(scaler.transform(train[:20]),
                                      restored.scaler.transform(train[:20]))


def test_quantized_varade_round_trips_bit_identically(
        golden_streams, fitted_detectors, tmp_path):
    original = fitted_detectors["VARADE"]
    quantized = original.quantize(golden_streams["train"])
    assert isinstance(quantized, QuantizedVaradeDetector)
    windows, targets = _batch_for(quantized, golden_streams["test"])
    before = quantized.score_windows_batch(windows, targets)

    restored = load_detector(save_detector(quantized, tmp_path / "varade_int8"))
    after = restored.score_windows_batch(windows, targets)
    np.testing.assert_array_equal(before, after)
    # The quantized artifact inherits (and round-trips) the float threshold.
    assert restored.threshold == original.threshold
    # Int8 codes survive exactly.
    for conv_before, conv_after in zip(quantized.plan.conv_layers,
                                       restored.plan.conv_layers):
        np.testing.assert_array_equal(conv_before.weight_q, conv_after.weight_q)
        assert conv_after.weight_q.dtype == np.int8


def test_save_refuses_unfitted_detector(golden, tmp_path):
    detector = golden.build_detectors()["kNN"]
    with pytest.raises(SerializationError, match="unfitted"):
        save_detector(detector, tmp_path / "unfitted")


def test_save_refuses_overwrite_unless_asked(fitted_detectors, tmp_path):
    detector = fitted_detectors["Isolation Forest"]
    path = save_detector(detector, tmp_path / "forest")
    with pytest.raises(SerializationError, match="overwrite"):
        save_detector(detector, path)
    save_detector(detector, path, overwrite=True)
    assert load_detector(path).name == detector.name


def test_load_rejects_non_artifacts_and_future_versions(
        fitted_detectors, tmp_path):
    with pytest.raises(SerializationError, match="not a saved detector"):
        load_detector(tmp_path / "missing")
    path = save_detector(fitted_detectors["kNN"], tmp_path / "knn")
    manifest_path = path / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = FORMAT_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SerializationError, match="format version"):
        load_detector(path)


def test_runtimes_pick_up_restored_threshold(golden_streams, fitted_detectors,
                                             saved_detectors):
    """Deployment wiring: a loaded artifact alarms without extra plumbing."""
    from repro.data import StreamReader
    from repro.edge import StreamingRuntime

    restored = load_detector(saved_detectors["VARADE"])
    assert restored.threshold is not None
    runtime = StreamingRuntime(restored)
    assert runtime._resolve_threshold() == restored.threshold
    result = runtime.run(StreamReader(golden_streams["test"][:80]))
    # The injected anomaly region is beyond sample 80, so on this clean
    # prefix the 0.98-quantile threshold should fire rarely if at all.
    assert result.alarms.sum() <= result.samples_scored
