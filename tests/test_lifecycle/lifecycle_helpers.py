"""Shared constants and builders for the model-lifecycle suite."""

from pathlib import Path

import numpy as np

from repro.pipeline import (CalibrationSpec, DataSpec, DeploymentSpec,
                            DetectorSpec, Pipeline, ServiceSpec)

N_CHANNELS = 3
WINDOW = 8


def tiny_spec(seed: int = 0) -> DeploymentSpec:
    """A seconds-not-minutes VARADE deployment through the real pipeline."""
    return DeploymentSpec(
        detector=DetectorSpec(
            kind="varade",
            params={"n_channels": N_CHANNELS, "window": WINDOW,
                    "base_feature_maps": 4},
            training={"epochs": 2, "mean_warmup_epochs": 1,
                      "variance_finetune_epochs": 1, "learning_rate": 3e-3,
                      "max_train_windows": 100},
        ),
        data=DataSpec(source="synthetic",
                      params={"n_channels": N_CHANNELS, "train_samples": 300,
                              "test_samples": 120}),
        calibration=CalibrationSpec(method="quantile", quantile=0.95),
        service=ServiceSpec(max_batch=8, max_delay_ms=2.0),
        seed=seed,
    )


def package_tiny(spec: DeploymentSpec, out: Path) -> Path:
    pipeline = Pipeline.from_spec(spec)
    data = spec.data.build(spec.seed)
    pipeline.fit(data.train).calibrate()
    pipeline.package(out)
    return out


def make_stream(n_samples: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / 20.0
    return np.stack(
        [np.sin(2 * np.pi * (0.4 + 0.2 * c) * t + c)
         + 0.05 * rng.normal(size=n_samples)
         for c in range(N_CHANNELS)],
        axis=1,
    )
