"""Meta-watcher: EWMA watches, breach accounting, and the armed task."""

import asyncio
import math

import pytest

from repro.edge.monitor import StreamingHistogram
from repro.lifecycle import EwmaWatch, MetaWatcher, WatchPolicy


def snapshot(samples=0, alarms=0, sink_errors=0, queue_delay=None):
    return {"samples_scored": samples, "alarms_total": alarms,
            "sink_errors": sink_errors, "queue_delay": queue_delay,
            "fingerprint": "fp"}


class TestWatchPolicy:
    def test_defaults_are_valid(self):
        policy = WatchPolicy()
        assert policy.patience == 3
        assert math.isinf(policy.max_p99_s)
        assert policy.to_dict()["max_p99_s"] is None

    @pytest.mark.parametrize("kwargs", [
        {"interval_s": 0.0},
        {"alpha": 0.0},
        {"alpha": 1.5},
        {"k": 0.0},
        {"warmup_ticks": 0},
        {"patience": 0},
        {"max_alarm_rate": 0.0},
        {"max_p99_s": 0.0},
        {"max_sink_errors": -1},
    ])
    def test_bad_policy_raises(self, kwargs):
        with pytest.raises(ValueError):
            WatchPolicy(**kwargs)


class TestEwmaWatch:
    def test_steady_signal_never_breaches(self):
        watch = EwmaWatch(alpha=0.2, k=6.0, warmup_ticks=3)
        assert not any(watch.observe(0.1) for _ in range(50))

    def test_no_breach_during_warmup(self):
        watch = EwmaWatch(alpha=0.2, k=3.0, warmup_ticks=10)
        assert not any(watch.observe(value)
                       for value in (0.0, 0.0, 100.0, 0.0, 1000.0))

    def test_spike_after_warmup_breaches(self):
        watch = EwmaWatch(alpha=0.2, k=3.0, warmup_ticks=3)
        for _ in range(10):
            watch.observe(1.0)
        assert watch.observe(100.0)

    def test_breaching_ticks_freeze_the_mean(self):
        """A sustained regression keeps breaching instead of being learned."""
        watch = EwmaWatch(alpha=0.5, k=3.0, warmup_ticks=3)
        for _ in range(10):
            watch.observe(1.0)
        assert all(watch.observe(100.0) for _ in range(20))


class TestMetaWatcherObserve:
    def test_first_snapshot_only_primes(self):
        watcher = MetaWatcher(WatchPolicy(max_alarm_rate=0.01))
        assert watcher.observe(snapshot(samples=100, alarms=100)) == []
        assert watcher.breaches == 0

    def test_alarm_rate_ceiling_breach(self):
        watcher = MetaWatcher(WatchPolicy(max_alarm_rate=0.2, patience=2))
        watcher.observe(snapshot())
        breaches = watcher.observe(snapshot(samples=100, alarms=90))
        assert "alarm_rate:ceiling" in breaches
        assert watcher.breaches >= 1
        assert not watcher.should_rollback          # patience=2, streak=1
        watcher.observe(snapshot(samples=200, alarms=180))
        assert watcher.should_rollback

    def test_streak_resets_on_healthy_tick(self):
        watcher = MetaWatcher(WatchPolicy(max_alarm_rate=0.2, patience=2))
        watcher.observe(snapshot())
        watcher.observe(snapshot(samples=100, alarms=90))
        watcher.observe(snapshot(samples=200, alarms=91))   # healthy delta
        watcher.observe(snapshot(samples=300, alarms=181))
        assert not watcher.should_rollback

    def test_sink_error_ceiling_breach(self):
        watcher = MetaWatcher(WatchPolicy(max_sink_errors=0))
        watcher.observe(snapshot())
        breaches = watcher.observe(snapshot(samples=10, sink_errors=1))
        assert breaches == ["sink_errors:ceiling"]

    def test_p99_ceiling_breach_from_histogram_delta(self):
        histogram = StreamingHistogram.linear(0.0, 1.0, 10)
        for _ in range(50):
            histogram.add(0.05)
        before = histogram.to_state()
        for _ in range(50):
            histogram.add(0.95)
        after = histogram.to_state()
        watcher = MetaWatcher(WatchPolicy(max_p99_s=0.5))
        watcher.observe(snapshot(samples=50, queue_delay=before))
        breaches = watcher.observe(
            snapshot(samples=100, queue_delay=after))
        assert "p99_s:ceiling" in breaches

    def test_ewma_breach_on_alarm_rate_spike(self):
        watcher = MetaWatcher(WatchPolicy(alpha=0.2, k=3.0, warmup_ticks=3,
                                          max_alarm_rate=1.0))
        samples = alarms = 0
        watcher.observe(snapshot())
        for _ in range(10):                   # learn a steady 1% alarm rate
            samples += 1000
            alarms += 10
            assert watcher.observe(snapshot(samples=samples,
                                            alarms=alarms)) == []
        samples += 1000
        alarms += 400                          # 40% tick, under the ceiling
        assert "alarm_rate:ewma" in watcher.observe(
            snapshot(samples=samples, alarms=alarms))

    def test_zero_scored_tick_is_quiet(self):
        watcher = MetaWatcher(WatchPolicy(max_alarm_rate=0.01))
        watcher.observe(snapshot(samples=100, alarms=90))
        assert watcher.observe(snapshot(samples=100, alarms=90)) == []


class TestArmDisarm:
    def test_arm_twice_raises(self):
        async def scenario():
            watcher = MetaWatcher(WatchPolicy(interval_s=10.0))

            class Service:
                def health_snapshot(self):
                    return snapshot()

            service = Service()
            watcher.arm(service)
            assert watcher.armed
            with pytest.raises(RuntimeError, match="already armed"):
                watcher.arm(service)
            watcher.disarm()
            await asyncio.sleep(0)
            assert not watcher.armed

        asyncio.run(scenario())

    def test_armed_watch_rolls_back_and_disarms(self):
        async def scenario():
            rollbacks = []

            class Service:
                def __init__(self):
                    self.samples = 0
                    self.alarms = 0

                def health_snapshot(self):
                    self.samples += 100
                    self.alarms += 95          # every tick is an alarm storm
                    return snapshot(samples=self.samples, alarms=self.alarms)

                async def rollback(self, *, reason):
                    rollbacks.append(reason)

            watcher = MetaWatcher(WatchPolicy(
                interval_s=0.01, patience=2, max_alarm_rate=0.5))
            watcher.arm(Service())
            for _ in range(200):
                await asyncio.sleep(0.01)
                if rollbacks:
                    break
            assert rollbacks and rollbacks[0].startswith("watch:")
            assert "alarm_rate" in rollbacks[0]
            assert watcher.rollbacks == 1
            await asyncio.sleep(0.02)
            assert not watcher.armed           # one promotion, one guard

        asyncio.run(scenario())

    def test_watch_exits_when_service_stops(self):
        async def scenario():
            class Service:
                def health_snapshot(self):
                    raise RuntimeError("service is not running")

            watcher = MetaWatcher(WatchPolicy(interval_s=0.01))
            watcher.arm(Service())
            await asyncio.sleep(0.05)
            assert not watcher.armed

        asyncio.run(scenario())
