"""Lifecycle over the wire: alarm fingerprints, control ops, cluster fan-out."""

import asyncio
import threading
import time

import pytest

from repro.cluster import ClusterHarness, WorkerConfig
from repro.pipeline import Pipeline
from repro.serialize import artifact_fingerprint
from repro.serve import (AnomalyTCPServer, BinaryClient, ServiceConfig,
                         TCPClient)
from repro.serve import wire

from lifecycle_helpers import make_stream

GATES = {"min_samples": 32, "alarm_rate_slack": 0.02}


class TestAlarmEventFrame:
    def test_round_trips_with_fingerprint(self):
        frame = wire.AlarmEvent("cell-1", 42, 3.25, 1.5, "fp-abc123")
        decoded, consumed = wire.decode_frame(wire.encode(frame))
        assert consumed == len(wire.encode(frame))
        assert decoded == frame
        assert decoded.fingerprint == "fp-abc123"

    def test_round_trips_without_fingerprint(self):
        frame = wire.AlarmEvent("cell-1", 42, 3.25, None)
        decoded, _ = wire.decode_frame(wire.encode(frame))
        assert decoded == frame
        assert decoded.fingerprint is None

    def test_fingerprintless_encoding_matches_prelifecycle_layout(self):
        """A fingerprint-less frame is byte-identical to the old format:
        stream string + the fixed ALARM tail, nothing trailing."""
        frame = wire.AlarmEvent("s", 7, 2.0, 0.5)
        payload = frame.encode_payload()
        legacy = wire.AlarmEvent("s", 7, 2.0, 0.5, "fp").encode_payload()
        assert len(legacy) > len(payload)
        assert legacy[:len(payload)] == payload

    def test_trailing_garbage_raises(self):
        payload = wire.AlarmEvent("s", 7, 2.0, 0.5, "fp").encode_payload()
        with pytest.raises(wire.CorruptPayloadError):
            wire.AlarmEvent.decode_payload(payload + b"\x00")


class LifecycleServer:
    """A wire server over ``Pipeline.load(artifact).deploy_service()``.

    Unlike the generic server helper in the serve suite, the service keeps
    the artifact's fingerprint and calibrated threshold, so lifecycle ops
    see exactly what ``repro serve`` would give them.
    """

    def __init__(self, artifact):
        self.service = Pipeline.load(artifact).deploy_service(
            config=ServiceConfig(max_batch=8, max_delay_ms=1.0))
        self.server = AnomalyTCPServer(self.service, port=0)
        self._ready = threading.Event()
        self.port = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(self.server.serve_forever(ready=ready))
            await ready.wait()
            self.port = self.server.bound_port
            self._ready.set()
            await task

        asyncio.run(main())

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(30.0), "server did not come up"
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            try:
                with TCPClient(port=self.port, timeout_s=5.0) as client:
                    client.shutdown()
            except (OSError, RuntimeError):
                pass
        self.thread.join(10.0)
        assert not self.thread.is_alive(), "server thread did not exit"


def push_baseline_traffic(client):
    """The exact traffic artifact_b's golden baseline was recorded on."""
    for stream, (length, seed) in {"s50": (80, 50), "s51": (60, 51)}.items():
        client.open(stream)
        client.push_stream(stream, make_stream(length, seed=seed))
    for stream in ("s50", "s51"):
        client.close_stream(stream)


class TestServerOps:
    def test_canary_promote_rollback_over_the_wire(self, artifact_a,
                                                   artifact_b):
        fp_a = artifact_fingerprint(artifact_a)
        fp_b = artifact_fingerprint(artifact_b)
        with LifecycleServer(artifact_a) as server:
            with TCPClient(port=server.port) as client:
                attached = client.canary(str(artifact_b), fraction=1.0,
                                         gates=GATES)
                assert attached["fingerprint"] == fp_b
                assert attached["gates"]["min_samples"] == 32
                assert client.canary_status()["verdict"] == "undecided"
                push_baseline_traffic(client)
                report = client.canary_status()
                assert report["verdict"] == "promote", report
                promoted = client.promote()
                assert promoted["promoted"]
                assert promoted["fingerprint"] == fp_b
                assert promoted["previous_fingerprint"] == fp_a
                assert promoted["migrated_sessions"] == 0  # streams closed
                rolled = client.rollback(reason="test")
                assert rolled["rolled_back"]
                assert rolled["fingerprint"] == fp_a

    def test_gated_promote_refuses_an_undecided_canary(self, artifact_a,
                                                       artifact_b):
        fp_a = artifact_fingerprint(artifact_a)
        with LifecycleServer(artifact_a) as server:
            with TCPClient(port=server.port) as client:
                client.canary(str(artifact_b), fraction=1.0,
                              gates={"min_samples": 100_000})
                push_baseline_traffic(client)
                result = client.promote()
                assert not result["promoted"]
                assert result["report"]["verdict"] == "undecided"
                assert result["fingerprint"] == fp_a
                # ... but force wins, and canary_stop afterwards errors
                # because promotion already detached the canary.
                assert client.promote(force=True)["promoted"]
                with pytest.raises(RuntimeError, match="no canary"):
                    client.canary_stop()

    def test_canary_stop_detaches_and_reports(self, artifact_a, artifact_b):
        with LifecycleServer(artifact_a) as server:
            with TCPClient(port=server.port) as client:
                client.canary(str(artifact_b), fraction=1.0, gates=GATES)
                push_baseline_traffic(client)
                stopped = client.canary_stop()
                assert stopped["report"]["samples"] > 0
                with pytest.raises(RuntimeError, match="no canary"):
                    client.canary_status()

    def test_lifecycle_ops_without_a_canary_error(self, artifact_a):
        with LifecycleServer(artifact_a) as server:
            with TCPClient(port=server.port) as client:
                with pytest.raises(RuntimeError, match="no canary"):
                    client.promote()
                with pytest.raises(RuntimeError, match="no pinned"):
                    client.rollback()
                with pytest.raises(RuntimeError, match="no such file|no golden|does not exist|artifact"):
                    client.canary("/nonexistent/artifact")

    def test_binary_client_refuses_lifecycle_ops(self, artifact_a,
                                                 artifact_b):
        with LifecycleServer(artifact_a) as server:
            with BinaryClient(port=server.port) as client:
                assert client.ping()["ok"]
                with pytest.raises(ValueError, match="JSON-only"):
                    client.promote()

    def test_wire_alarms_carry_the_fingerprint(self, artifact_a):
        fp_a = artifact_fingerprint(artifact_a)
        data = make_stream(40, seed=60)
        data[20:24] += 30.0    # unmistakable burst
        with LifecycleServer(artifact_a) as server:
            with TCPClient(port=server.port) as client:
                client.open("cell")
                client.push_stream("cell", data)
                client.close_stream("cell")
                for _ in range(100):
                    if client.alarms:
                        break
                    client.ping()
                    time.sleep(0.01)
                assert client.alarms, "expected alarms over the wire"
                for alarm in client.alarms:
                    assert alarm["fingerprint"] == fp_a

    def test_snapshot_and_healthz_fingerprint(self, artifact_a):
        fp_a = artifact_fingerprint(artifact_a)
        with LifecycleServer(artifact_a) as server:
            with TCPClient(port=server.port) as client:
                snapshot = client.snapshot()
                (entry,) = snapshot["services"].values()
                assert entry["fingerprint"] == fp_a


class TestClusterLifecycle:
    def test_fleet_canary_status_and_forced_promotion(self, artifact_a,
                                                      artifact_b):
        fp_b = artifact_fingerprint(artifact_b)
        configs = [WorkerConfig(name=f"w{i}",
                                artifacts={"default": artifact_a})
                   for i in range(2)]
        with ClusterHarness(configs) as cluster:
            with TCPClient(port=cluster.port) as client:
                attached = client.canary(str(artifact_b), fraction=1.0,
                                         gates=GATES)
                assert attached["fingerprint"] == fp_b
                assert set(attached["workers"]) == {"w0", "w1"}
                push_baseline_traffic(client)
                status = client.canary_status()
                assert set(status["workers"]) == {"w0", "w1"}
                assert status["verdict"] in ("promote", "undecided")
                # Each worker judges only its slice, so unanimity is not
                # guaranteed with two streams; force makes the swap
                # deterministic for this test.
                promoted = client.promote(force=True)
                assert promoted["promoted"]
                assert all(entry["promoted"]
                           for entry in promoted["workers"].values())
                rolled = client.rollback(reason="test")
                assert rolled["ok"]
                assert set(rolled["workers"]) == {"w0", "w1"}

    def test_fleet_canary_is_all_or_nothing(self, artifact_a, artifact_b):
        """A second canary attach fails fleet-wide: the first worker's
        accepted attach is compensated, leaving no half-attached fleet."""
        configs = [WorkerConfig(name=f"w{i}",
                                artifacts={"default": artifact_a})
                   for i in range(2)]
        with ClusterHarness(configs) as cluster:
            with TCPClient(port=cluster.port) as client:
                client.canary(str(artifact_b), fraction=1.0, gates=GATES)
                with pytest.raises(RuntimeError, match="already active"):
                    client.canary(str(artifact_b), fraction=1.0)
                # The original canary is still attached on every worker.
                status = client.canary_status()
                assert set(status["workers"]) == {"w0", "w1"}
