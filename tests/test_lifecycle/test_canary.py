"""Canary controller: shadow membership, the shadow lane, and the gates."""

import numpy as np
import pytest

from repro.lifecycle import (CanaryController, CanaryGates, GoldenBaseline,
                             load_baseline)
from repro.lifecycle.baseline import latency_histogram, score_histogram
from repro.serve.session import ScoringSession

from lifecycle_helpers import make_stream


def empty_baseline(alarms: int = 0, samples: int = 0) -> GoldenBaseline:
    return GoldenBaseline(
        fingerprint="fp-test", detector="VARADE", streams=1,
        samples_scored=samples, alarms=alarms,
        score_histogram=score_histogram(),
        latency_histogram=latency_histogram())


def submit_all(session: ScoringSession, stream: np.ndarray):
    requests = []
    for row in stream:
        request = session.submit(row)
        if request is not None:
            requests.append(request)
    return requests


class TestGatesValidation:
    def test_defaults_are_valid(self):
        gates = CanaryGates()
        assert gates.min_samples == 256
        assert gates.to_dict()["max_latency_p99_s"] == 0.025

    @pytest.mark.parametrize("kwargs", [
        {"min_samples": 0},
        {"max_score_shift": 0.0},
        {"max_score_shift": 1.5},
        {"max_alarm_ratio": 0.5},
        {"alarm_rate_slack": -0.1},
        {"max_latency_p99_s": 0.0},
    ])
    def test_bad_limits_raise(self, kwargs):
        with pytest.raises(ValueError):
            CanaryGates(**kwargs)

    def test_bad_fraction_raises(self, detector_b):
        for fraction in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="fraction"):
                CanaryController(detector_b, baseline=empty_baseline(),
                                 fraction=fraction)


class TestShadowMembership:
    def test_deterministic_across_controllers(self, detector_b):
        first = CanaryController(detector_b, baseline=empty_baseline(),
                                 fraction=0.5)
        second = CanaryController(detector_b, baseline=empty_baseline(),
                                  fraction=0.5)
        ids = [f"stream-{n}" for n in range(64)]
        assert [first.is_shadowed(i) for i in ids] == \
            [second.is_shadowed(i) for i in ids]

    def test_fraction_one_shadows_everything(self, detector_b):
        controller = CanaryController(detector_b, baseline=empty_baseline(),
                                      fraction=1.0)
        assert all(controller.is_shadowed(f"s{n}") for n in range(32))

    def test_fraction_splits_roughly(self, detector_b):
        controller = CanaryController(detector_b, baseline=empty_baseline(),
                                      fraction=0.5)
        shadowed = sum(controller.is_shadowed(f"stream-{n}")
                       for n in range(400))
        assert 120 <= shadowed <= 280


class TestShadowLane:
    def test_observe_flush_scores_shadowed_rows(self, detector_a,
                                                detector_b, artifact_b):
        baseline = load_baseline(artifact_b)
        controller = CanaryController(detector_b, baseline=baseline,
                                      fraction=1.0)
        session = ScoringSession(detector_a, "shadow-me", record=False)
        requests = submit_all(session, make_stream(40, seed=9))
        controller.observe_flush(requests)
        assert controller.samples == len(requests)
        assert controller.score_histogram.count == len(requests)
        assert controller.errors == 0

    def test_unshadowed_rows_are_skipped(self, detector_a, detector_b,
                                         artifact_b):
        baseline = load_baseline(artifact_b)
        controller = CanaryController(detector_b, baseline=baseline,
                                      fraction=1.0)
        controller._membership["skip-me"] = False
        session = ScoringSession(detector_a, "skip-me", record=False)
        controller.observe_flush(submit_all(session, make_stream(30, seed=9)))
        assert controller.samples == 0

    def test_shadow_scores_match_direct_batch_scoring(self, detector_a,
                                                      detector_b, artifact_b):
        """The lane re-scores the live windows exactly as a direct call."""
        baseline = load_baseline(artifact_b)
        controller = CanaryController(detector_b, baseline=baseline,
                                      fraction=1.0)
        session = ScoringSession(detector_a, "parity", record=False)
        requests = submit_all(session, make_stream(30, seed=10))
        controller.observe_flush(requests)
        windows = np.stack([request.context for request in requests])
        targets = np.stack([request.target for request in requests])
        direct = detector_b.score_windows_batch(windows, targets)
        expected = score_histogram()
        for score in direct:
            expected.add(float(score))
        assert controller.score_histogram.to_state()["counts"] == \
            expected.to_state()["counts"]

    def test_errors_are_swallowed_and_lane_self_disables(self, artifact_b):
        class Exploding:
            threshold = None

            def score_windows_batch(self, windows, targets):
                raise RuntimeError("boom")

        baseline = load_baseline(artifact_b)
        controller = CanaryController(Exploding(), baseline=baseline,
                                      fraction=1.0)

        class Request:
            def __init__(self):
                self.session = type("S", (), {"stream_id": "s"})()
                self.context = np.zeros((8, 3))
                self.target = np.zeros(3)

        for _ in range(3):
            controller.observe_flush([Request()])   # never raises
        assert controller.errors == 3
        assert controller.stopped
        controller.observe_flush([Request()])       # lane is off
        assert controller.errors == 3
        assert controller.evaluate().verdict == "reject"


class TestEvaluate:
    def test_undecided_until_min_samples(self, detector_b, artifact_b):
        baseline = load_baseline(artifact_b)
        controller = CanaryController(
            detector_b, baseline=baseline,
            gates=CanaryGates(min_samples=10_000), fraction=1.0)
        assert controller.evaluate().verdict == "undecided"

    def test_promotes_when_live_matches_baseline(self, detector_a,
                                                 detector_b, artifact_b):
        """Shadow stats from the baseline's own traffic pass the gates."""
        baseline = load_baseline(artifact_b)
        controller = CanaryController(
            detector_b, baseline=baseline,
            gates=CanaryGates(min_samples=32, max_alarm_ratio=3.0,
                              alarm_rate_slack=0.02),
            fraction=1.0, fingerprint=baseline.fingerprint)
        for seed, length in ((50, 80), (51, 60)):
            session = ScoringSession(detector_a, f"live-{seed}", record=False)
            controller.observe_flush(
                submit_all(session, make_stream(length, seed=seed)))
        report = controller.evaluate()
        assert report.verdict == "promote", report.to_dict()
        assert report.fingerprint == baseline.fingerprint
        assert all(gate.ok for gate in report.gates)

    def test_rejects_on_score_shift(self, detector_a, detector_b,
                                    artifact_b):
        baseline = load_baseline(artifact_b)
        controller = CanaryController(
            detector_b, baseline=baseline,
            gates=CanaryGates(min_samples=16), fraction=1.0)
        session = ScoringSession(detector_a, "weird", record=False)
        # Traffic nothing like the baseline's: large off-manifold values.
        controller.observe_flush(
            submit_all(session, 25.0 + 10 * make_stream(60, seed=52)))
        report = controller.evaluate()
        assert report.verdict == "reject"
        gates = {gate.name: gate for gate in report.gates}
        assert not gates["score_shift"].ok or not gates["alarm_rate"].ok

    def test_rejects_on_latency_budget(self, detector_a, detector_b,
                                       artifact_b):
        baseline = load_baseline(artifact_b)
        clock_value = [0.0]

        def slow_clock():
            clock_value[0] += 0.5    # every call advances half a second
            return clock_value[0]

        controller = CanaryController(
            detector_b, baseline=baseline,
            gates=CanaryGates(min_samples=16, max_latency_p99_s=0.001),
            fraction=1.0, clock=slow_clock)
        session = ScoringSession(detector_a, "slow", record=False)
        for seed, length in ((50, 80), (51, 60)):
            controller.observe_flush(
                submit_all(session, make_stream(length, seed=seed)))
        report = controller.evaluate()
        gates = {gate.name: gate for gate in report.gates}
        assert not gates["latency_p99_s"].ok
        assert report.verdict == "reject"

    def test_report_round_trips_to_dict(self, detector_b, artifact_b):
        baseline = load_baseline(artifact_b)
        controller = CanaryController(detector_b, baseline=baseline,
                                      fraction=0.5, fingerprint="fp-b")
        report = controller.evaluate().to_dict()
        assert report["verdict"] == "undecided"
        assert report["fingerprint"] == "fp-b"
        assert {gate["name"] for gate in report["gates"]} == {
            "samples", "score_shift", "alarm_rate", "latency_p99_s",
            "shadow_errors"}
