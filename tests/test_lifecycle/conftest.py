"""Shared fixtures for the model-lifecycle suite.

Two tiny VARADE artifacts (different seeds) are trained and packaged once
per session through the real ``fit -> calibrate -> package`` path; the
second one -- the promotion candidate -- also gets its golden baseline
recorded.  Builders live in ``lifecycle_helpers.py`` so test modules can
import them directly.
"""

from pathlib import Path

import pytest

from repro.lifecycle import record_baseline
from repro.serialize import load_detector

from lifecycle_helpers import make_stream, package_tiny, tiny_spec


@pytest.fixture(scope="session")
def artifact_a(tmp_path_factory) -> Path:
    """The live artifact every lifecycle test starts from."""
    return package_tiny(tiny_spec(seed=0),
                        tmp_path_factory.mktemp("lifecycle") / "artifact-a")


@pytest.fixture(scope="session")
def artifact_b(tmp_path_factory) -> Path:
    """The promotion candidate, with its golden baseline recorded."""
    artifact = package_tiny(
        tiny_spec(seed=7),
        tmp_path_factory.mktemp("lifecycle") / "artifact-b")
    record_baseline(artifact, [make_stream(80, seed=50),
                               make_stream(60, seed=51)])
    return artifact


@pytest.fixture(scope="session")
def detector_a(artifact_a):
    return load_detector(artifact_a)


@pytest.fixture(scope="session")
def detector_b(artifact_b):
    return load_detector(artifact_b)
