"""LifecycleSpec parsing, Pipeline lifecycle methods, and the CLI surface."""

import socket

import pytest

from repro.lifecycle import CanaryController, load_baseline
from repro.pipeline import (DeploymentSpec, LifecycleSpec, Pipeline,
                            PipelineStageError, ServiceSpec, SpecError)
from repro.serialize import artifact_fingerprint

from lifecycle_helpers import make_stream, tiny_spec


class TestLifecycleSpec:
    def test_defaults_build_runtime_objects(self):
        spec = LifecycleSpec()
        gates = spec.gates()
        assert gates.min_samples == 256
        policy = spec.watch_policy()
        assert policy.patience == 3

    def test_round_trips_through_mapping(self):
        spec = tiny_spec(seed=0)
        payload = spec.to_dict()
        payload["service"]["lifecycle"] = {"fraction": 0.5,
                                           "min_samples": 64,
                                           "watch_patience": 2}
        parsed = DeploymentSpec.from_dict(payload)
        lifecycle = parsed.service.lifecycle
        assert lifecycle.fraction == 0.5
        assert lifecycle.gates().min_samples == 64
        assert lifecycle.watch_policy().patience == 2

    def test_absent_lifecycle_entry_stays_none(self):
        parsed = DeploymentSpec.from_dict(tiny_spec(seed=0).to_dict())
        assert parsed.service.lifecycle is None

    @pytest.mark.parametrize("kwargs,match", [
        ({"fraction": 0.0}, "fraction"),
        ({"fraction": 2.0}, "fraction"),
        ({"fraction": True}, "fraction"),
        ({"watch": "yes"}, "watch"),
        ({"min_samples": 0}, "invalid lifecycle entry"),
        ({"max_score_shift": 5.0}, "invalid lifecycle entry"),
        ({"watch_patience": 0}, "invalid lifecycle entry"),
    ])
    def test_bad_values_surface_as_spec_errors(self, kwargs, match):
        with pytest.raises(SpecError, match=match):
            LifecycleSpec(**kwargs)

    def test_unknown_mapping_key_is_rejected(self):
        payload = tiny_spec(seed=0).to_dict()
        payload["service"]["lifecycle"] = {"fractoin": 0.5}
        with pytest.raises(SpecError):
            DeploymentSpec.from_dict(payload)


class TestPipelineLifecycle:
    def test_record_baseline_requires_a_packaged_artifact(self):
        pipeline = Pipeline.from_spec(tiny_spec(seed=0))
        with pytest.raises(PipelineStageError, match="packaged artifact"):
            pipeline.record_baseline(make_stream(40, seed=1))

    def test_record_baseline_on_a_loaded_artifact(self, artifact_a):
        pipeline = Pipeline.load(artifact_a)
        baseline = pipeline.record_baseline(make_stream(40, seed=2),
                                            write=False)
        assert baseline.fingerprint == artifact_fingerprint(artifact_a)
        assert baseline.samples_scored > 0

    def test_deploy_service_carries_the_fingerprint(self, artifact_a):
        service = Pipeline.load(artifact_a).deploy_service()
        assert service.artifact_fingerprint == \
            artifact_fingerprint(artifact_a)

    def test_deploy_canary_uses_spec_lifecycle_defaults(self, artifact_a,
                                                        artifact_b):
        pipeline = Pipeline.load(artifact_a)
        spec_payload = pipeline.spec.to_dict()
        spec_payload["service"]["lifecycle"] = {"fraction": 0.75,
                                                "min_samples": 48}
        pipeline.spec = DeploymentSpec.from_dict(spec_payload)
        controller = pipeline.deploy_canary(artifact_b)
        assert isinstance(controller, CanaryController)
        assert controller.fraction == 0.75
        assert controller.gates.min_samples == 48
        assert controller.fingerprint == artifact_fingerprint(artifact_b)
        assert controller.baseline.fingerprint == \
            load_baseline(artifact_b).fingerprint

    def test_deploy_canary_overrides_beat_the_spec(self, artifact_a,
                                                   artifact_b):
        controller = Pipeline.load(artifact_a).deploy_canary(
            artifact_b, fraction=1.0)
        assert controller.fraction == 1.0
        assert controller.gates.min_samples == 256    # runtime default


class TestCLI:
    @pytest.fixture(scope="class")
    def packaged_workdir(self, tmp_path_factory):
        from repro.cli import main

        workdir = tmp_path_factory.mktemp("lifecycle-cli")
        assert main(["train", "--fast", "--workdir", str(workdir)]) == 0
        assert main(["quantize", "--workdir", str(workdir)]) == 0
        assert main(["package", "--workdir", str(workdir)]) == 0
        return workdir

    def test_baseline_records_a_sidecar(self, packaged_workdir, capsys):
        from repro.cli import main
        from repro.lifecycle import BASELINE_NAME

        assert main(["baseline", "--workdir", str(packaged_workdir)]) == 0
        out = capsys.readouterr().out
        assert "baseline:" in out
        assert "alarm rate" in out
        sidecars = list(packaged_workdir.rglob(BASELINE_NAME))
        assert sidecars, "baseline sidecar not written"

    def test_baseline_without_a_package_fails_cleanly(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        assert main(["baseline", "--workdir", str(tmp_path / "none")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_wire_commands_report_connection_errors(self, capsys):
        from repro.cli import main

        # Grab a port that is certainly closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["canary", "--connect", f"127.0.0.1:{port}",
                     "--status"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["promote", "--connect", f"127.0.0.1:{port}"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_endpoint_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert main(["canary", "--connect", "nonsense", "--status"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_full_canary_flow_against_a_live_server(self, artifact_a,
                                                    artifact_b, capsys):
        from repro.cli import main
        from repro.serve import TCPClient
        from test_wire_lifecycle import LifecycleServer, push_baseline_traffic

        with LifecycleServer(artifact_a) as server:
            endpoint = f"127.0.0.1:{server.port}"
            assert main(["canary", "--connect", endpoint,
                         "--artifact", str(artifact_b),
                         "--fraction", "1.0"]) == 0
            assert "shadow-scoring candidate" in capsys.readouterr().out
            with TCPClient(port=server.port) as client:
                push_baseline_traffic(client)
            assert main(["canary", "--connect", endpoint, "--status"]) == 0
            out = capsys.readouterr().out
            assert "verdict undecided" in out     # default gates: 256 min
            assert "samples" in out
            # Gates hold the promotion back -> exit 1 with a hint.
            assert main(["promote", "--connect", endpoint]) == 1
            assert "--force" in capsys.readouterr().out
            assert main(["promote", "--connect", endpoint, "--force"]) == 0
            assert "promoted" in capsys.readouterr().out
            assert main(["promote", "--connect", endpoint,
                         "--rollback"]) == 0
            assert "rolled back" in capsys.readouterr().out
