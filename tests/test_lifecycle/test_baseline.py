"""Golden baselines: recording, the JSON sidecar, and histogram math."""

import json

import numpy as np
import pytest

from repro.edge.monitor import StreamingHistogram
from repro.lifecycle import (BASELINE_NAME, GoldenBaseline, LifecycleError,
                             distribution_shift, load_baseline,
                             record_baseline, save_baseline)
from repro.lifecycle.baseline import (latency_histogram, score_histogram,
                                      windowed_quantile)
from repro.serialize import artifact_fingerprint

from lifecycle_helpers import WINDOW, make_stream


class TestRecordBaseline:
    def test_records_and_writes_sidecar(self, artifact_a, tmp_path):
        traffic = [make_stream(70, seed=1), make_stream(55, seed=2)]
        baseline = record_baseline(artifact_a, traffic)
        assert baseline.fingerprint == artifact_fingerprint(artifact_a)
        assert baseline.streams == 2
        # Every complete window of each stream scores.
        expected = sum(len(stream) - WINDOW + 1 for stream in traffic)
        assert baseline.samples_scored == expected
        assert baseline.score_histogram.count == expected
        assert baseline.latency_histogram.count == expected
        assert 0.0 <= baseline.alarm_rate <= 1.0
        assert (artifact_a / BASELINE_NAME).is_file()

    def test_deterministic_scores(self, artifact_a):
        traffic = make_stream(60, seed=3)
        first = record_baseline(artifact_a, traffic, write=False)
        second = record_baseline(artifact_a, traffic, write=False)
        assert first.score_histogram.to_state() == \
            second.score_histogram.to_state()
        assert first.alarms == second.alarms

    def test_single_2d_stream_normalises(self, artifact_a):
        baseline = record_baseline(artifact_a, make_stream(50, seed=4),
                                   write=False)
        assert baseline.streams == 1
        assert baseline.samples_scored == 50 - WINDOW + 1


class TestSidecarRoundTrip:
    def test_load_round_trips(self, artifact_a):
        recorded = record_baseline(artifact_a, make_stream(60, seed=5))
        loaded = load_baseline(artifact_a)
        assert loaded.fingerprint == recorded.fingerprint
        assert loaded.samples_scored == recorded.samples_scored
        assert loaded.alarms == recorded.alarms
        assert loaded.score_histogram.to_state() == \
            recorded.score_histogram.to_state()

    def test_missing_sidecar_raises(self, tmp_path):
        with pytest.raises(LifecycleError, match="no golden baseline"):
            load_baseline(tmp_path)

    def test_stale_fingerprint_raises(self, artifact_a, tmp_path):
        baseline = record_baseline(artifact_a, make_stream(50, seed=6),
                                   write=False)
        stale = GoldenBaseline(
            fingerprint="not-the-artifact", detector=baseline.detector,
            streams=baseline.streams,
            samples_scored=baseline.samples_scored, alarms=baseline.alarms,
            score_histogram=baseline.score_histogram,
            latency_histogram=baseline.latency_histogram)
        save_baseline(stale, artifact_a)
        try:
            with pytest.raises(LifecycleError, match="fingerprint"):
                load_baseline(artifact_a)
            assert load_baseline(artifact_a, verify=False).fingerprint \
                == "not-the-artifact"
        finally:
            save_baseline(baseline, artifact_a)   # restore for later tests

    def test_corrupt_sidecar_raises(self, artifact_a):
        path = artifact_a / BASELINE_NAME
        original = path.read_text()
        try:
            path.write_text("{not json")
            with pytest.raises(LifecycleError):
                load_baseline(artifact_a)
            payload = json.loads(original)
            payload["version"] = 99
            path.write_text(json.dumps(payload))
            with pytest.raises(LifecycleError, match="version"):
                load_baseline(artifact_a)
        finally:
            path.write_text(original)


class TestDistributionShift:
    def test_identical_histograms_have_zero_shift(self):
        histogram = score_histogram()
        for value in (0.01, 0.5, 2.0, 80.0):
            histogram.add(value)
        assert distribution_shift(histogram, histogram) == 0.0

    def test_disjoint_histograms_have_full_shift(self):
        low, high = score_histogram(), score_histogram()
        for _ in range(32):
            low.add(1e-3)
            high.add(1e3)
        assert distribution_shift(low, high) == pytest.approx(1.0)

    def test_empty_vs_populated_is_full_shift(self):
        populated = score_histogram()
        populated.add(1.0)
        assert distribution_shift(score_histogram(), populated) == 1.0
        assert distribution_shift(score_histogram(), score_histogram()) == 0.0

    def test_mismatched_edges_raise(self):
        scores, latencies = score_histogram(), latency_histogram()
        scores.add(1.0)
        latencies.add(1.0)
        with pytest.raises(ValueError, match="bin layouts"):
            distribution_shift(scores, latencies)

    def test_small_perturbation_is_small(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(0.0, 1.0, size=500)
        expected, observed = score_histogram(), score_histogram()
        for value in values:
            expected.add(value)
            observed.add(value * 1.01)
        assert distribution_shift(expected, observed) < 0.2


class TestWindowedQuantile:
    def test_quantile_of_the_delta_window_only(self):
        histogram = StreamingHistogram.linear(0.0, 10.0, 10)
        for _ in range(100):
            histogram.add(1.5)              # old traffic: fast
        before = histogram.to_state()
        for _ in range(100):
            histogram.add(8.5)              # this window: slow
        after = histogram.to_state()
        p99 = windowed_quantile(before, after)
        assert p99 >= 8.5                   # upper-edge conservative
        assert p99 <= 10.0

    def test_empty_window_is_zero(self):
        histogram = StreamingHistogram.linear(0.0, 1.0, 4)
        histogram.add(0.5)
        state = histogram.to_state()
        assert windowed_quantile(state, state) == 0.0
