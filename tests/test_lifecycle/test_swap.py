"""Hot-swap promotion on a live AnomalyService: drain, migrate, roll back."""

import asyncio

import numpy as np
import pytest

from repro.lifecycle import (CanaryController, CanaryGates, MetaWatcher,
                             WatchPolicy, load_baseline)
from repro.serve import AnomalyService, ServiceConfig

from lifecycle_helpers import WINDOW, make_stream

CONFIG = ServiceConfig(max_batch=8, max_delay_ms=1.0)


async def collect_events(service, events):
    async for event in service.events():
        events.append(event)


async def run_with_events(service, scenario):
    """Start ``service``, run ``scenario`` with an event collector attached."""
    events = []
    await service.start()
    task = asyncio.create_task(collect_events(service, events))
    await asyncio.sleep(0)
    await scenario(service)
    await service.stop()
    await task
    return events


class TestSwapDetector:
    def test_swap_migrates_every_session_without_drops(self, detector_a,
                                                       detector_b):
        data = make_stream(60, seed=30)

        async def scenario(service):
            for row in data[:30]:
                await service.push("s0", row)
                await service.push("s1", row + 0.1)
            migrated = await service.swap_detector(detector_b,
                                                   fingerprint="fp-b")
            assert migrated == 2
            for row in data[30:]:
                await service.push("s0", row)
                await service.push("s1", row + 0.1)
            await service.close_session("s0")
            await service.close_session("s1")

        async def main():
            service = AnomalyService(detector_a, config=CONFIG,
                                     fingerprint="fp-a")
            events = await run_with_events(service, scenario)
            return service, events, service.stats()

        service, events, stats = asyncio.run(main())
        per_session = len(data) - WINDOW + 1
        assert stats.samples_scored == 2 * per_session
        assert stats.samples_dropped == 0
        assert len(events) == 2 * per_session
        assert service.artifact_fingerprint == "fp-b"
        assert service.previous_detector is detector_a
        assert service.previous_fingerprint == "fp-a"

    def test_alarms_carry_the_serving_fingerprint(self, detector_a,
                                                  detector_b):
        """Satellite (a): every alarm is stamped with the fingerprint of the
        artifact that raised it, across a mid-stream swap."""
        from repro.core.calibration import CalibratedThreshold

        data = make_stream(40, seed=31)
        # A threshold below every score turns each event into an alarm.
        alarm_always = CalibratedThreshold(threshold=-1e9, method="quantile",
                                           parameter=0.0)

        async def scenario(service):
            for row in data[:20]:
                await service.push("s0", row)
            # swap_detector drains pending windows under the old model
            await service.swap_detector(detector_b, fingerprint="fp-b")
            for row in data[20:]:
                await service.push("s0", row)
            await service.close_session("s0")

        async def main():
            service = AnomalyService(detector_a, config=CONFIG,
                                     threshold=alarm_always,
                                     fingerprint="fp-a")
            return await run_with_events(service, scenario)

        events = asyncio.run(main())
        assert all(event.alarm for event in events)
        stamps = [event.fingerprint for event in events]
        assert set(stamps) == {"fp-a", "fp-b"}
        # Stamps partition cleanly: once fp-b appears, fp-a never returns.
        assert stamps.index("fp-b") == len(stamps) - stamps[::-1].count("fp-b")

    def test_post_swap_scores_bit_identical_to_fresh_service(self, detector_a,
                                                             detector_b):
        """After the swap the migrated session scores exactly what a fresh
        service on the candidate would have scored for the same history."""
        data = make_stream(50, seed=32)
        split = 25

        async def swapped():
            service = AnomalyService(detector_a, config=CONFIG)

            async def scenario(svc):
                for row in data[:split]:
                    await svc.push("s0", row)
                await svc.swap_detector(detector_b)
                for row in data[split:]:
                    await svc.push("s0", row)
                await svc.close_session("s0")

            return await run_with_events(service, scenario)

        async def fresh():
            service = AnomalyService(detector_b, config=CONFIG)

            async def scenario(svc):
                for row in data:
                    await svc.push("s0", row)
                await svc.close_session("s0")

            return await run_with_events(service, scenario)

        swapped_events = asyncio.run(swapped())
        fresh_events = asyncio.run(fresh())
        swapped_scores = {event.index: event.score
                         for event in swapped_events}
        fresh_scores = {event.index: event.score for event in fresh_events}
        assert set(swapped_scores) == set(fresh_scores)
        for index in range(split, len(data)):
            assert swapped_scores[index] == fresh_scores[index], index

    def test_swap_to_the_active_detector_raises(self, detector_a):
        async def main():
            service = AnomalyService(detector_a, config=CONFIG)
            await service.start()
            with pytest.raises(ValueError, match="already active"):
                await service.swap_detector(detector_a)
            await service.stop()

        asyncio.run(main())

    def test_rollback_restores_the_pinned_artifact(self, detector_a,
                                                   detector_b):
        async def main():
            service = AnomalyService(detector_a, config=CONFIG,
                                     fingerprint="fp-a")
            await service.start()
            for row in make_stream(20, seed=33):
                await service.push("s0", row)
            await service.swap_detector(detector_b, fingerprint="fp-b")
            result = await service.rollback(reason="operator")
            assert result["rolled_back"]
            assert result["reason"] == "operator"
            assert service.artifact_fingerprint == "fp-a"
            assert service.detector is detector_a
            await service.stop()

        asyncio.run(main())

    def test_rollback_without_a_pin_raises(self, detector_a):
        async def main():
            service = AnomalyService(detector_a, config=CONFIG)
            await service.start()
            with pytest.raises(RuntimeError, match="no pinned"):
                await service.rollback()
            await service.stop()

        asyncio.run(main())


class TestCanaryOnService:
    def _controller(self, detector_b, artifact_b, **gate_kwargs):
        baseline = load_baseline(artifact_b)
        gates = CanaryGates(**gate_kwargs) if gate_kwargs else None
        return CanaryController(detector_b, baseline=baseline, gates=gates,
                                fraction=1.0, fingerprint="fp-b")

    def test_attach_requires_running_and_is_exclusive(self, detector_a,
                                                      detector_b, artifact_b):
        controller = self._controller(detector_b, artifact_b)

        async def main():
            service = AnomalyService(detector_a, config=CONFIG)
            with pytest.raises(RuntimeError):
                service.attach_canary(controller)
            await service.start()
            service.attach_canary(controller)
            with pytest.raises(RuntimeError, match="already active"):
                service.attach_canary(controller)
            with pytest.raises(RuntimeError, match="no canary"):
                service.stop_canary()
                service.stop_canary()
            await service.stop()

        asyncio.run(main())

    def test_canary_shadow_scores_live_traffic(self, detector_a, detector_b,
                                               artifact_b):
        controller = self._controller(detector_b, artifact_b)

        async def main():
            service = AnomalyService(detector_a, config=CONFIG)
            await service.start()
            service.attach_canary(controller)
            for row in make_stream(40, seed=34):
                await service.push("s0", row)
            await service.close_session("s0")
            await service.stop()
            return service.stats()

        stats = asyncio.run(main())
        assert controller.samples == stats.samples_scored
        assert controller.samples == 40 - WINDOW + 1
        assert controller.errors == 0

    def test_promote_respects_a_failing_gate(self, detector_a, detector_b,
                                             artifact_b):
        controller = self._controller(detector_b, artifact_b,
                                      min_samples=100_000)

        async def main():
            service = AnomalyService(detector_a, config=CONFIG,
                                     fingerprint="fp-a")
            await service.start()
            service.attach_canary(controller)
            for row in make_stream(30, seed=35):
                await service.push("s0", row)
            result = await service.promote()
            assert not result["promoted"]
            assert result["report"]["verdict"] == "undecided"
            assert service.artifact_fingerprint == "fp-a"
            assert service.canary is controller      # still shadow-scoring
            await service.stop()

        asyncio.run(main())

    def test_force_promote_swaps_and_detaches_the_canary(self, detector_a,
                                                         detector_b,
                                                         artifact_b):
        controller = self._controller(detector_b, artifact_b,
                                      min_samples=100_000)

        async def main():
            service = AnomalyService(detector_a, config=CONFIG,
                                     fingerprint="fp-a")
            await service.start()
            service.attach_canary(controller)
            for row in make_stream(30, seed=36):
                await service.push("s0", row)
            result = await service.promote(force=True)
            assert result["promoted"]
            assert result["fingerprint"] == "fp-b"
            assert result["previous_fingerprint"] == "fp-a"
            assert result["migrated_sessions"] == 1
            assert service.canary is None
            assert service.detector is detector_b
            await service.stop()

        asyncio.run(main())

    def test_promote_without_a_canary_raises(self, detector_a):
        async def main():
            service = AnomalyService(detector_a, config=CONFIG)
            await service.start()
            with pytest.raises(RuntimeError, match="no canary"):
                await service.promote()
            await service.stop()

        asyncio.run(main())


class TestWatcherAutoRollback:
    def test_regression_after_promotion_rolls_back(self, detector_a,
                                                   detector_b, artifact_b):
        """Promote by force, then storm the new model with alarming traffic;
        the armed watcher must restore the pinned previous artifact."""
        baseline = load_baseline(artifact_b)
        controller = CanaryController(
            detector_b, baseline=baseline, fraction=1.0, fingerprint="fp-b",
            gates=CanaryGates(min_samples=100_000))
        watcher = MetaWatcher(WatchPolicy(
            interval_s=0.02, patience=1, max_alarm_rate=0.25))

        async def main():
            service = AnomalyService(detector_a, config=CONFIG,
                                     threshold=detector_a.threshold,
                                     fingerprint="fp-a")
            await service.start()
            service.attach_watcher(watcher)
            service.attach_canary(controller)
            quiet = make_stream(30, seed=37)
            for row in quiet:
                await service.push("s0", row)
            result = await service.promote(force=True)
            assert result["promoted"]
            assert watcher.armed
            # Alarm storm: every window scores far beyond the threshold.
            storm = quiet + 40.0
            for _ in range(100):
                for row in storm:
                    await service.push("s0", row)
                await asyncio.sleep(0.03)   # let the scheduler flush + tick
                if service.artifact_fingerprint == "fp-a":
                    break
            assert service.artifact_fingerprint == "fp-a"
            assert service.detector is detector_a
            assert watcher.rollbacks == 1
            assert not watcher.armed
            await service.stop()

        asyncio.run(main())
