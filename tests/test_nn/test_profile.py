"""Tests for model profiling (parameter / FLOP / activation accounting)."""

import numpy as np

from repro import nn
from repro.nn.utils import profile_model


class TestProfileModel:
    def test_linear_profile(self):
        layer = nn.Linear(4, 8, rng=np.random.default_rng(0))
        profile = profile_model(layer, (4,))
        assert profile.total_parameters == layer.num_parameters()
        assert profile.total_flops == 2 * 4 * 8
        assert profile.layers[0].output_shape == (8,)

    def test_conv_stack_profile_tracks_time_halving(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv1d(6, 8, kernel_size=2, stride=2, rng=rng),
            nn.ReLU(),
            nn.Conv1d(8, 16, kernel_size=2, stride=2, rng=rng),
        )
        profile = profile_model(model, (6, 16))
        conv_layers = [layer for layer in profile.layers if layer.kind == "Conv1d"]
        assert conv_layers[0].output_shape == (8, 8)
        assert conv_layers[1].output_shape == (16, 4)
        assert profile.total_parameters == model.num_parameters()

    def test_lstm_profile(self):
        lstm = nn.LSTM(4, 8, num_layers=2, rng=np.random.default_rng(0))
        profile = profile_model(lstm, (10, 4))
        assert profile.total_parameters == lstm.num_parameters()
        assert profile.total_flops > 0
        assert profile.layers[0].output_shape == (10, 8)

    def test_residual_block_profiles_children(self):
        block = nn.ResidualBlock1d(4, 8, stride=2, rng=np.random.default_rng(0))
        profile = profile_model(block, (4, 16))
        assert profile.total_parameters == block.num_parameters()
        assert len(profile.layers) >= 3  # conv1, conv2, shortcut

    def test_memory_traffic_positive_and_consistent(self):
        layer = nn.Linear(10, 10, rng=np.random.default_rng(0))
        profile = profile_model(layer, (10,))
        assert profile.parameter_bytes == profile.total_parameters * 4
        assert profile.memory_traffic_bytes == profile.parameter_bytes \
            + profile.total_activation_bytes

    def test_summary_lines(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        lines = profile_model(layer, (4,)).summary_lines()
        assert any("Linear" in line for line in lines)
        assert "TOTAL" in lines[-1]
