"""Tests for the neural-network layers and the Module system."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(4, 7, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(np.ones((5, 4))))
        assert out.shape == (5, 7)

    def test_matches_manual_computation(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(nn.Tensor(x)).numpy(), expected)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_trainable_on_regression(self):
        rng = np.random.default_rng(0)
        true_w = rng.normal(size=(1, 5))
        x = rng.normal(size=(200, 5))
        y = x @ true_w.T
        layer = nn.Linear(5, 1, rng=rng)
        optimizer = nn.Adam(layer.parameters(), lr=0.05)
        for _ in range(200):
            loss = nn.mse_loss(layer(nn.Tensor(x)), nn.Tensor(y))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)


class TestConv1d:
    def test_output_shape_and_length(self):
        conv = nn.Conv1d(3, 8, kernel_size=2, stride=2, rng=np.random.default_rng(0))
        out = conv(nn.Tensor(np.ones((2, 3, 16))))
        assert out.shape == (2, 8, 8)
        assert conv.output_length(16) == 8

    def test_padding_preserves_length(self):
        conv = nn.Conv1d(2, 4, kernel_size=3, stride=1, padding=1, rng=np.random.default_rng(0))
        out = conv(nn.Tensor(np.ones((1, 2, 10))))
        assert out.shape == (1, 4, 10)

    def test_parameter_count(self):
        conv = nn.Conv1d(3, 8, kernel_size=2, rng=np.random.default_rng(0))
        assert conv.num_parameters() == 3 * 8 * 2 + 8

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            nn.Conv1d(3, 8, kernel_size=0)


class TestConvTranspose1d:
    def test_output_length(self):
        deconv = nn.ConvTranspose1d(4, 2, kernel_size=4, stride=2, padding=1,
                                    rng=np.random.default_rng(0))
        out = deconv(nn.Tensor(np.ones((2, 4, 8))))
        assert out.shape == (2, 2, 16)
        assert deconv.output_length(8) == 16

    def test_upsamples_then_downsamples_to_same_length(self):
        rng = np.random.default_rng(0)
        down = nn.Conv1d(2, 4, kernel_size=2, stride=2, rng=rng)
        up = nn.ConvTranspose1d(4, 2, kernel_size=2, stride=2, rng=rng)
        x = nn.Tensor(np.ones((1, 2, 12)))
        assert up(down(x)).shape == x.shape


class TestActivationsAndUtility:
    def test_relu_clips_negative(self):
        out = nn.ReLU()(nn.Tensor(np.array([-1.0, 0.5])))
        np.testing.assert_allclose(out.numpy(), [0.0, 0.5])

    def test_leaky_relu(self):
        out = nn.LeakyReLU(0.1)(nn.Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.numpy(), [-0.1, 2.0])

    def test_tanh_sigmoid_ranges(self):
        x = nn.Tensor(np.linspace(-5, 5, 11))
        assert np.all(np.abs(nn.Tanh()(x).numpy()) <= 1.0)
        sig = nn.Sigmoid()(x).numpy()
        assert np.all((sig > 0) & (sig < 1))

    def test_identity(self):
        x = nn.Tensor(np.arange(4.0))
        np.testing.assert_allclose(nn.Identity()(x).numpy(), x.numpy())

    def test_flatten(self):
        out = nn.Flatten()(nn.Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_global_average_pool(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        out = nn.GlobalAveragePool1d()(nn.Tensor(x))
        np.testing.assert_allclose(out.numpy(), x.mean(axis=-1))


class TestDropout:
    def test_eval_mode_is_identity(self):
        dropout = nn.Dropout(0.5, rng=np.random.default_rng(0))
        dropout.eval()
        x = nn.Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(dropout(x).numpy(), x.numpy())

    def test_training_mode_zeroes_some_values(self):
        dropout = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = dropout(nn.Tensor(np.ones((20, 20)))).numpy()
        assert (out == 0).any()
        # Inverted dropout keeps the expectation roughly constant.
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestLayerNorm:
    def test_normalises_last_dim(self):
        layer = nn.LayerNorm(8)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8))
        out = layer(nn.Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)


class TestSequentialAndResidual:
    def test_sequential_runs_in_order(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        assert len(model) == 3
        out = model(nn.Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_sequential_append_and_index(self):
        model = nn.Sequential(nn.ReLU())
        model.append(nn.Tanh())
        assert isinstance(model[1], nn.Tanh)
        assert len(list(iter(model))) == 2

    def test_residual_block_shape_preserving(self):
        block = nn.ResidualBlock1d(4, 4, kernel_size=3, rng=np.random.default_rng(0))
        out = block(nn.Tensor(np.ones((2, 4, 16))))
        assert out.shape == (2, 4, 16)

    def test_residual_block_downsampling(self):
        block = nn.ResidualBlock1d(4, 8, kernel_size=3, stride=2, rng=np.random.default_rng(0))
        out = block(nn.Tensor(np.ones((2, 4, 16))))
        assert out.shape == (2, 8, 8)


class TestModuleSystem:
    def test_parameters_discovered_recursively(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        assert len(model.parameters()) == 4
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names and "layer2.bias" in names

    def test_num_parameters(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        loss = layer(nn.Tensor(np.ones((2, 3)))).sum()
        loss.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_round_trip(self):
        rng = np.random.default_rng(0)
        source = nn.Linear(4, 2, rng=rng)
        target = nn.Linear(4, 2, rng=np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(target.weight.data, source.weight.data)

    def test_state_dict_mismatch_raises(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((2, 4))})
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_parameter_repr_and_registration(self):
        module = Module()
        module.register_parameter("p", Parameter(np.zeros(3), name="p"))
        assert len(module.parameters()) == 1
