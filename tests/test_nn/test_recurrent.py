"""Tests for the LSTM cell and stacked LSTM."""

import numpy as np
import pytest

from repro import nn


class TestLSTMCell:
    def test_state_shapes(self):
        cell = nn.LSTMCell(4, 8, rng=np.random.default_rng(0))
        h, c = cell.initial_state(3)
        h2, c2 = cell(nn.Tensor(np.ones((3, 4))), (h, c))
        assert h2.shape == (3, 8)
        assert c2.shape == (3, 8)

    def test_forget_gate_bias_is_one(self):
        cell = nn.LSTMCell(4, 8, rng=np.random.default_rng(0))
        np.testing.assert_allclose(cell.bias.data[8:16], 1.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.LSTMCell(0, 8)

    def test_hidden_state_bounded_by_tanh(self):
        cell = nn.LSTMCell(4, 8, rng=np.random.default_rng(0))
        state = cell.initial_state(2)
        x = nn.Tensor(np.full((2, 4), 100.0))
        for _ in range(5):
            state = cell(x, state)
        assert np.all(np.abs(state[0].numpy()) <= 1.0)


class TestLSTM:
    def test_output_shapes(self):
        lstm = nn.LSTM(5, 7, num_layers=2, rng=np.random.default_rng(0))
        outputs, states = lstm(nn.Tensor(np.ones((3, 10, 5))))
        assert outputs.shape == (3, 10, 7)
        assert len(states) == 2
        assert states[0][0].shape == (3, 7)

    def test_last_hidden(self):
        lstm = nn.LSTM(5, 7, num_layers=1, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 6, 5))
        outputs, _ = lstm(nn.Tensor(x))
        np.testing.assert_allclose(lstm.last_hidden(nn.Tensor(x)).numpy(),
                                   outputs.numpy()[:, -1, :])

    def test_rejects_wrong_rank(self):
        lstm = nn.LSTM(5, 7, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            lstm(nn.Tensor(np.ones((3, 5))))

    def test_rejects_wrong_state_count(self):
        lstm = nn.LSTM(5, 7, num_layers=2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            lstm(nn.Tensor(np.ones((1, 4, 5))), states=[lstm.cells[0].initial_state(1)])

    def test_gradients_flow_to_first_layer(self):
        lstm = nn.LSTM(3, 4, num_layers=2, rng=np.random.default_rng(0))
        outputs, _ = lstm(nn.Tensor(np.random.default_rng(1).normal(size=(2, 5, 3))))
        outputs.sum().backward()
        assert lstm.cells[0].weight_ih.grad is not None
        assert np.abs(lstm.cells[0].weight_ih.grad).sum() > 0

    def test_can_learn_to_remember_first_input(self):
        """The LSTM should learn a task that requires memory over time."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 6, 1))
        y = x[:, 0, :]  # remember the first element
        lstm = nn.LSTM(1, 8, num_layers=1, rng=rng)
        head = nn.Linear(8, 1, rng=rng)
        params = lstm.parameters() + head.parameters()
        optimizer = nn.Adam(params, lr=0.02)
        first_loss = None
        for step in range(150):
            prediction = head(lstm.last_hidden(nn.Tensor(x)))
            loss = nn.mse_loss(prediction, nn.Tensor(y))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < first_loss * 0.5
