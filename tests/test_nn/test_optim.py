"""Tests for the optimisers and gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def _quadratic_step(optimizer_factory, steps=150):
    """Minimise ||x - target||^2 and return the final distance."""
    target = np.array([1.0, -2.0, 3.0])
    parameter = Parameter(np.zeros(3))
    optimizer = optimizer_factory([parameter])
    for _ in range(steps):
        diff = parameter - nn.Tensor(target)
        loss = (diff * diff).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return float(np.abs(parameter.data - target).max())


class TestOptimizers:
    def test_sgd_converges(self):
        assert _quadratic_step(lambda p: nn.SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert _quadratic_step(lambda p: nn.SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert _quadratic_step(lambda p: nn.Adam(p, lr=0.1), steps=300) < 1e-2

    def test_rmsprop_converges(self):
        assert _quadratic_step(lambda p: nn.RMSprop(p, lr=0.05), steps=300) < 1e-2

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([5.0]))
        optimizer = nn.SGD([parameter], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            loss = (parameter * 0.0).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert abs(parameter.data[0]) < 0.1

    def test_step_skips_parameters_without_grad(self):
        parameter = Parameter(np.ones(2))
        optimizer = nn.Adam([parameter], lr=0.1)
        optimizer.step()  # no gradient accumulated: must not raise or move
        np.testing.assert_allclose(parameter.data, 1.0)

    def test_zero_grad_clears(self):
        parameter = Parameter(np.ones(2))
        optimizer = nn.SGD([parameter], lr=0.1)
        (parameter * 2).sum().backward()
        optimizer.zero_grad()
        assert parameter.grad is None

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.ones(1))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.ones(1))], lr=0.1, betas=(1.1, 0.9))


class TestGradClipping:
    def test_clip_reduces_norm(self):
        parameter = Parameter(np.ones(4))
        parameter.grad = np.full(4, 10.0)
        norm = nn.clip_grad_norm([parameter], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        parameter = Parameter(np.ones(4))
        parameter.grad = np.full(4, 0.1)
        nn.clip_grad_norm([parameter], max_norm=10.0)
        np.testing.assert_allclose(parameter.grad, 0.1)

    def test_clip_handles_missing_grads(self):
        assert nn.clip_grad_norm([Parameter(np.ones(3))], max_norm=1.0) == 0.0
