"""Bit-parity suite for the incremental forward plans (float and int8).

The contract under test: ``IncrementalForwardPlan.push`` /
``IncrementalQuantizedPlan.push`` (and their chunked ``push_many``) produce
**bit-identical** head outputs to the batch plans' ``forward`` on the same
window -- not approximately equal, ``assert_array_equal`` equal.  The
deterministic classes pin the mechanics (warm-up, reset, compaction,
fallback guards); the Hypothesis class sweeps conv shapes, chunk splits,
NaN warm-up prefixes and mid-stream resets.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.nn.fastpath import FastForwardPlan, IncrementalForwardPlan
from repro.nn.quant import IncrementalQuantizedPlan, QuantizedForwardPlan


def _stack(rng, channels, window, feature_maps, min_length=2):
    """A VARADE-shaped stride-2 conv stack with two linear heads."""
    layers, length, width = [], window, channels
    while length > min_length:
        layers += [nn.Conv1d(width, feature_maps, kernel_size=2, stride=2,
                             rng=rng), nn.ReLU()]
        width = feature_maps
        length //= 2
    backbone = nn.Sequential(*layers)
    heads = {"log_var": nn.Linear(width * length, channels, rng=rng),
             "mean": nn.Linear(width * length, channels, rng=rng)}
    return backbone, heads


def _float_plan(rng, channels, window, feature_maps):
    backbone, heads = _stack(rng, channels, window, feature_maps)
    return FastForwardPlan(backbone, heads, in_channels=channels,
                           in_length=window)


def _quant_plan(rng, channels, window, feature_maps):
    backbone, heads = _stack(rng, channels, window, feature_maps)
    calibration = rng.normal(size=(32, channels, window))
    return QuantizedForwardPlan.from_network(
        backbone, heads, in_channels=channels, in_length=window,
        calibration=calibration)


def _batch_float(plan, stream, window):
    """Batch-plan outputs for every full window of ``stream`` (S, C)."""
    xs = np.ascontiguousarray(np.stack(
        [stream[t - window + 1:t + 1].T
         for t in range(window - 1, stream.shape[0])]))
    return {name: out.copy() for name, out in plan.forward(xs).items()}


def _batch_quant(plan, stream, window):
    xs = np.stack([stream[t - window + 1:t + 1]
                   for t in range(window - 1, stream.shape[0])])
    return {name: out.copy()
            for name, out in plan.forward(xs, layout="nlc").items()}


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestIncrementalForwardPlan:
    def test_push_matches_batch_bit_identical(self, rng):
        window, channels = 16, 3
        plan = _float_plan(rng, channels, window, feature_maps=4)
        inc = IncrementalForwardPlan(plan)
        stream = rng.normal(size=(60, channels))
        batch = _batch_float(plan, stream, window)
        row = 0
        for t in range(stream.shape[0]):
            heads = inc.push(stream[t])
            if t < window - 1:
                assert heads is None
            else:
                for name in batch:
                    np.testing.assert_array_equal(heads[name][0],
                                                  batch[name][row])
                row += 1

    @pytest.mark.parametrize("chunks", [(60,), (1, 3, 7, 49), (13, 13, 34)])
    def test_push_many_matches_batch_with_odd_chunks(self, rng, chunks):
        window, channels = 16, 3
        plan = _float_plan(rng, channels, window, feature_maps=4)
        inc = IncrementalForwardPlan(plan)
        stream = rng.normal(size=(sum(chunks), channels))
        batch = _batch_float(plan, stream, window)
        outs = {name: [] for name in batch}
        offset = 0
        for chunk in chunks:
            result = inc.push_many(stream[offset:offset + chunk])
            for name in outs:
                outs[name].append(result[name].copy())
            offset += chunk
        for name in batch:
            rows = np.concatenate(outs[name])
            assert np.isnan(rows[:window - 1]).all()
            np.testing.assert_array_equal(rows[window - 1:], batch[name])

    def test_reset_restarts_warmup_and_matches_fresh_state(self, rng):
        window, channels = 8, 2
        plan = _float_plan(rng, channels, window, feature_maps=3)
        inc = IncrementalForwardPlan(plan)
        inc.push_many(rng.normal(size=(20, channels)))
        inc.reset()
        assert inc.samples_seen == 0 and not inc.warm
        tail = rng.normal(size=(30, channels))
        after_reset = inc.push_many(tail)["log_var"]
        fresh = IncrementalForwardPlan(plan).push_many(tail)["log_var"]
        np.testing.assert_array_equal(after_reset, fresh)

    def test_long_stream_exercises_buffer_compaction(self, rng):
        """Streams far longer than the buffer capacity stay bit-exact."""
        window, channels = 8, 2
        plan = _float_plan(rng, channels, window, feature_maps=3)
        inc = IncrementalForwardPlan(plan)
        stream = rng.normal(size=(700, channels))     # > in_length + block
        batch = _batch_float(plan, stream, window)
        rows = inc.push_many(stream)["log_var"]
        np.testing.assert_array_equal(rows[window - 1:], batch["log_var"])

    def test_nan_warmup_prefix_propagates_exactly(self, rng):
        window, channels = 8, 2
        plan = _float_plan(rng, channels, window, feature_maps=3)
        stream = rng.normal(size=(30, channels))
        stream[:3] = np.nan
        batch = _batch_float(plan, stream, window)
        rows = IncrementalForwardPlan(plan).push_many(stream)["log_var"]
        # NaN windows and clean windows alike must match the batch bits.
        np.testing.assert_array_equal(rows[window - 1:], batch["log_var"])
        assert np.isnan(rows[window - 1]).all()       # covers a NaN sample

    def test_head_restriction_does_not_change_bits(self, rng):
        window, channels = 16, 3
        plan = _float_plan(rng, channels, window, feature_maps=4)
        stream = rng.normal(size=(40, channels))
        full = IncrementalForwardPlan(plan).push_many(stream)
        only = IncrementalForwardPlan(plan, heads=("log_var",)).push_many(stream)
        assert set(only) == {"log_var"}
        np.testing.assert_array_equal(only["log_var"], full["log_var"])

    def test_unknown_head_rejected(self, rng):
        plan = _float_plan(rng, 2, 8, feature_maps=3)
        with pytest.raises(ValueError, match="unknown heads"):
            IncrementalForwardPlan(plan, heads=("sigma",))

    def test_padded_conv_is_rejected_and_supports_says_so(self, rng):
        backbone = nn.Sequential(
            nn.Conv1d(2, 3, kernel_size=3, stride=1, padding=1, rng=rng),
            nn.ReLU())
        heads = {"out": nn.Linear(3 * 8, 2, rng=rng)}
        plan = FastForwardPlan(backbone, heads, in_channels=2, in_length=8)
        assert not IncrementalForwardPlan.supports(plan)
        with pytest.raises(ValueError):
            IncrementalForwardPlan(plan)

    def test_misaligned_stride_is_rejected(self, rng):
        # (L_in - kernel) % stride != 0: the final tap is not right-anchored
        # on the window, so a causal per-sample update cannot reproduce it.
        backbone = nn.Sequential(
            nn.Conv1d(2, 3, kernel_size=2, stride=2, rng=rng), nn.ReLU())
        heads = {"out": nn.Linear(3 * 4, 2, rng=rng)}
        plan = FastForwardPlan(backbone, heads, in_channels=2, in_length=9)
        assert not IncrementalForwardPlan.supports(plan)

    def test_wrong_channel_count_rejected_on_push(self, rng):
        inc = IncrementalForwardPlan(_float_plan(rng, 3, 8, feature_maps=3))
        with pytest.raises(ValueError, match="channels"):
            inc.push(np.zeros(5))

    def test_reads_live_weights(self, rng):
        """Incremental state reads the same live weight views as the batch
        plan, so a weight update between streams is picked up."""
        plan = _float_plan(rng, 2, 8, feature_maps=3)
        stream = rng.normal(size=(20, 2))
        before = IncrementalForwardPlan(plan).push_many(stream)["log_var"]
        for kind, layer in plan._steps:
            if kind == "conv":
                layer.weight.data *= 1.5
        after = IncrementalForwardPlan(plan).push_many(stream)["log_var"]
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(
            after[7:], _batch_float(plan, stream, 8)["log_var"])


class TestIncrementalQuantizedPlan:
    def test_push_matches_batch_bit_identical(self, rng):
        window, channels = 16, 3
        plan = _quant_plan(rng, channels, window, feature_maps=4)
        inc = IncrementalQuantizedPlan(plan)
        stream = rng.normal(size=(50, channels))
        batch = _batch_quant(plan, stream, window)
        row = 0
        for t in range(stream.shape[0]):
            heads = inc.push(stream[t])
            if t < window - 1:
                assert heads is None
            else:
                for name in batch:
                    np.testing.assert_array_equal(heads[name][0],
                                                  batch[name][row])
                row += 1

    @pytest.mark.parametrize("chunks", [(50,), (2, 5, 11, 32)])
    def test_push_many_matches_batch_with_odd_chunks(self, rng, chunks):
        window, channels = 8, 2
        plan = _quant_plan(rng, channels, window, feature_maps=3)
        inc = IncrementalQuantizedPlan(plan)
        stream = rng.normal(size=(sum(chunks), channels))
        batch = _batch_quant(plan, stream, window)
        rows, offset = [], 0
        for chunk in chunks:
            rows.append(inc.push_many(stream[offset:offset + chunk])["log_var"]
                        .copy())
            offset += chunk
        rows = np.concatenate(rows)
        assert np.isnan(rows[:window - 1]).all()
        np.testing.assert_array_equal(rows[window - 1:], batch["log_var"])

    def test_reset_matches_fresh_state(self, rng):
        plan = _quant_plan(rng, 2, 8, feature_maps=3)
        inc = IncrementalQuantizedPlan(plan)
        inc.push_many(rng.normal(size=(15, 2)))
        inc.reset()
        tail = rng.normal(size=(25, 2))
        np.testing.assert_array_equal(
            inc.push_many(tail)["log_var"],
            IncrementalQuantizedPlan(plan).push_many(tail)["log_var"])

    def test_long_stream_exercises_buffer_compaction(self, rng):
        window, channels = 8, 2
        plan = _quant_plan(rng, channels, window, feature_maps=3)
        stream = rng.normal(size=(700, channels))
        batch = _batch_quant(plan, stream, window)
        rows = IncrementalQuantizedPlan(plan).push_many(stream)["log_var"]
        np.testing.assert_array_equal(rows[window - 1:], batch["log_var"])

    def test_supports_matches_constructor(self, rng):
        plan = _quant_plan(rng, 2, 8, feature_maps=3)
        assert IncrementalQuantizedPlan.supports(plan)


class TestIncrementalParityProperties:
    """Hypothesis sweep: arbitrary VARADE-shaped stacks, chunkings, NaN
    prefixes and mid-stream resets never break bit parity with the batch
    plan."""

    @given(
        window_exp=st.integers(3, 5),
        channels=st.integers(1, 3),
        feature_maps=st.integers(1, 4),
        extra=st.integers(1, 40),
        chunk=st.integers(1, 17),
        nan_prefix=st.integers(0, 4),
        seed=st.integers(0, 2**16),
        quantized=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_chunked_incremental_matches_batch(self, window_exp, channels,
                                               feature_maps, extra, chunk,
                                               nan_prefix, seed, quantized):
        window = 2 ** window_exp
        rng = np.random.default_rng(seed)
        stream = rng.normal(size=(window + extra, channels))
        if quantized:
            plan = _quant_plan(rng, channels, window, feature_maps)
            inc = IncrementalQuantizedPlan(plan)
            batch = _batch_quant(plan, stream, window)
        else:
            stream[:nan_prefix] = np.nan
            plan = _float_plan(rng, channels, window, feature_maps)
            inc = IncrementalForwardPlan(plan)
            batch = _batch_float(plan, stream, window)
        rows = []
        for offset in range(0, stream.shape[0], chunk):
            rows.append(inc.push_many(stream[offset:offset + chunk])
                        ["log_var"].copy())
        rows = np.concatenate(rows)
        assert np.isnan(rows[:window - 1]).all()
        np.testing.assert_array_equal(rows[window - 1:], batch["log_var"])

    @given(
        window_exp=st.integers(3, 4),
        channels=st.integers(1, 3),
        reset_at=st.integers(1, 30),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_reset_mid_stream_equals_fresh_plan(self, window_exp, channels,
                                                reset_at, seed):
        window = 2 ** window_exp
        rng = np.random.default_rng(seed)
        plan = _float_plan(rng, channels, window, feature_maps=3)
        inc = IncrementalForwardPlan(plan)
        inc.push_many(rng.normal(size=(reset_at, channels)))
        inc.reset()
        tail = rng.normal(size=(window + 10, channels))
        np.testing.assert_array_equal(
            inc.push_many(tail)["log_var"],
            IncrementalForwardPlan(plan).push_many(tail)["log_var"])
