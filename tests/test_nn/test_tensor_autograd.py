"""Numerical gradient checks and behavioural tests for the autograd engine."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, no_grad


def numerical_gradient(func, arrays, index, epsilon=1e-6):
    """Central-difference gradient of ``func`` w.r.t. ``arrays[index]``."""
    base = [a.copy() for a in arrays]
    grad = np.zeros_like(base[index])
    flat = grad.ravel()
    target = base[index].ravel()
    for position in range(target.size):
        original = target[position]
        target[position] = original + epsilon
        plus = func(*base)
        target[position] = original - epsilon
        minus = func(*base)
        target[position] = original
        flat[position] = (plus - minus) / (2 * epsilon)
    return grad


def check_gradients(op, shapes, seed=0, atol=1e-5):
    """Compare autograd gradients against numerical ones for every input."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=shape) for shape in shapes]

    def scalar_func(*values):
        tensors = [Tensor(v) for v in values]
        return float(op(*tensors).data.sum())

    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    output = op(*tensors)
    output.sum().backward()
    for index, tensor in enumerate(tensors):
        expected = numerical_gradient(scalar_func, arrays, index)
        assert tensor.grad is not None, f"input {index} received no gradient"
        np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=1e-4,
                                   err_msg=f"gradient mismatch for input {index}")


class TestElementwiseGradients:
    def test_add(self):
        check_gradients(lambda a, b: a + b, [(3, 4), (3, 4)])

    def test_add_broadcast(self):
        check_gradients(lambda a, b: a + b, [(3, 4), (4,)])

    def test_sub(self):
        check_gradients(lambda a, b: a - b, [(2, 5), (2, 5)])

    def test_mul(self):
        check_gradients(lambda a, b: a * b, [(3, 4), (3, 4)])

    def test_mul_broadcast(self):
        check_gradients(lambda a, b: a * b, [(2, 3, 4), (1, 3, 1)])

    def test_div(self):
        check_gradients(lambda a, b: a / (b * b + 1.0), [(3, 3), (3, 3)])

    def test_pow(self):
        check_gradients(lambda a: (a * a + 1.0) ** 1.5, [(4, 4)])

    def test_neg(self):
        check_gradients(lambda a: -a, [(5,)])

    def test_exp(self):
        check_gradients(lambda a: a.exp(), [(3, 4)])

    def test_log(self):
        check_gradients(lambda a: (a * a + 1.0).log(), [(3, 4)])

    def test_sqrt(self):
        check_gradients(lambda a: (a * a + 1.0).sqrt(), [(3, 4)])

    def test_tanh(self):
        check_gradients(lambda a: a.tanh(), [(3, 4)])

    def test_sigmoid(self):
        check_gradients(lambda a: a.sigmoid(), [(3, 4)])

    def test_relu(self):
        # Shift away from zero so the kink does not spoil the numerical check.
        check_gradients(lambda a: (a + 3.0).relu(), [(3, 4)])

    def test_leaky_relu(self):
        check_gradients(lambda a: (a + 3.0).leaky_relu(0.1), [(3, 4)])

    def test_abs(self):
        check_gradients(lambda a: (a + 5.0).abs(), [(3, 3)])

    def test_clip(self):
        check_gradients(lambda a: a.clip(-10.0, 10.0), [(3, 3)])


class TestMatmulGradients:
    def test_matmul_2d(self):
        check_gradients(lambda a, b: a.matmul(b), [(3, 4), (4, 5)])

    def test_matmul_batched(self):
        check_gradients(lambda a, b: a.matmul(b), [(2, 3, 4), (2, 4, 5)])

    def test_matmul_vector(self):
        check_gradients(lambda a, b: a.matmul(b), [(4,), (4,)])

    def test_matmul_matrix_vector(self):
        check_gradients(lambda a, b: a.matmul(b), [(3, 4), (4,)])


class TestReductionGradients:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [(3, 4)])

    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=1), [(3, 4)])

    def test_sum_axis_keepdims(self):
        check_gradients(lambda a: a.sum(axis=0, keepdims=True), [(3, 4)])

    def test_mean(self):
        check_gradients(lambda a: a.mean(axis=1), [(3, 4)])

    def test_mean_all(self):
        check_gradients(lambda a: a.mean(), [(3, 4)])

    def test_var(self):
        check_gradients(lambda a: a.var(axis=1), [(3, 5)])

    def test_max(self):
        rng = np.random.default_rng(1)
        data = rng.permutation(20).astype(float).reshape(4, 5)
        tensor = Tensor(data, requires_grad=True)
        tensor.max(axis=1).sum().backward()
        expected = np.zeros_like(data)
        expected[np.arange(4), data.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(tensor.grad, expected)


class TestShapeGradients:
    def test_reshape(self):
        check_gradients(lambda a: a.reshape(6, 2), [(3, 4)])

    def test_transpose(self):
        check_gradients(lambda a: a.transpose(1, 0), [(3, 4)])

    def test_transpose_3d(self):
        check_gradients(lambda a: a.transpose(2, 0, 1), [(2, 3, 4)])

    def test_getitem(self):
        check_gradients(lambda a: a[:, 1:3], [(3, 4)])

    def test_pad1d(self):
        check_gradients(lambda a: a.pad1d(2, 3), [(2, 3, 4)])

    def test_concatenate(self):
        check_gradients(lambda a, b: Tensor.concatenate([a, b], axis=1), [(2, 3), (2, 2)])

    def test_stack(self):
        check_gradients(lambda a, b: Tensor.stack([a, b], axis=1), [(2, 3), (2, 3)])


class TestConvolutionGradients:
    def test_conv1d_basic(self):
        check_gradients(lambda x, w: x.conv1d(w), [(2, 3, 8), (4, 3, 3)])

    def test_conv1d_stride2_kernel2(self):
        # The VARADE building block: kernel 2, stride 2.
        check_gradients(lambda x, w: x.conv1d(w, stride=2), [(2, 3, 8), (4, 3, 2)])

    def test_conv1d_with_padding(self):
        check_gradients(lambda x, w: x.conv1d(w, stride=1, padding=2), [(2, 2, 6), (3, 2, 3)])

    def test_conv1d_with_bias(self):
        check_gradients(lambda x, w, b: x.conv1d(w, b, stride=2), [(2, 3, 8), (4, 3, 2), (4,)])

    def test_conv1d_forward_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 6))
        w = rng.normal(size=(3, 2, 2))
        out = Tensor(x).conv1d(Tensor(w), stride=2).numpy()
        expected = np.zeros((1, 3, 3))
        for o in range(3):
            for pos in range(3):
                expected[0, o, pos] = np.sum(x[0, :, 2 * pos:2 * pos + 2] * w[o])
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_conv_transpose1d_basic(self):
        check_gradients(lambda x, w: x.conv_transpose1d(w), [(2, 3, 5), (3, 4, 3)])

    def test_conv_transpose1d_stride2(self):
        check_gradients(lambda x, w: x.conv_transpose1d(w, stride=2), [(2, 3, 4), (3, 2, 4)])

    def test_conv_transpose1d_padding(self):
        check_gradients(
            lambda x, w, b: x.conv_transpose1d(w, b, stride=2, padding=1),
            [(2, 3, 4), (3, 2, 4), (2,)],
        )

    def test_conv_transpose_inverts_conv_shape(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 16)))
        w_down = Tensor(np.random.default_rng(1).normal(size=(8, 4, 2)))
        down = x.conv1d(w_down, stride=2)
        w_up = Tensor(np.random.default_rng(2).normal(size=(8, 4, 2)))
        up = down.conv_transpose1d(w_up, stride=2)
        assert up.shape == x.shape

    def test_conv1d_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 8)))
        w = Tensor(np.zeros((4, 2, 2)))
        with pytest.raises(ValueError):
            x.conv1d(w)

    def test_conv1d_too_short_raises(self):
        x = Tensor(np.zeros((1, 3, 2)))
        w = Tensor(np.zeros((4, 3, 5)))
        with pytest.raises(ValueError):
            x.conv1d(w)


class TestCompositeGradients:
    def test_two_layer_network(self):
        def network(x, w1, b1, w2, b2):
            hidden = (x.matmul(w1) + b1).relu()
            return hidden.matmul(w2) + b2

        check_gradients(network, [(5, 4), (4, 8), (8,), (8, 3), (3,)])

    def test_gaussian_nll_gradients(self):
        check_gradients(
            lambda target, mean, log_var: nn.gaussian_nll(target, mean, log_var),
            [(6, 3), (6, 3), (6, 3)],
        )

    def test_kl_gradients(self):
        check_gradients(
            lambda mean, log_var: nn.kl_standard_normal(mean, log_var),
            [(6, 3), (6, 3)],
        )

    def test_gradient_accumulation_over_shared_input(self):
        data = np.random.default_rng(0).normal(size=(3, 3))
        x = Tensor(data, requires_grad=True)
        y = (x * x) + x.exp() + x
        y.sum().backward()
        expected = 2 * data + np.exp(data) + 1.0
        np.testing.assert_allclose(x.grad, expected, atol=1e-10)


class TestAutogradBehaviour:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_no_grad_disables_tracking(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach()
        z = (y * 3).sum()
        assert not z.requires_grad

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        first = x.grad.copy()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * first)

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_item_and_numpy(self):
        x = Tensor(np.array([2.5]))
        assert x.item() == pytest.approx(2.5)
        assert x.numpy().shape == (1,)

    def test_shape_properties(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.shape == (2, 3, 4)
        assert x.ndim == 3
        assert x.size == 24
        assert len(x) == 2
