"""Tests for the loss functions, including the VARADE variational objective."""

import numpy as np
import pytest

from repro import nn


class TestBasicLosses:
    def test_mse_matches_numpy(self):
        a = np.random.default_rng(0).normal(size=(4, 3))
        b = np.random.default_rng(1).normal(size=(4, 3))
        loss = nn.mse_loss(nn.Tensor(a), nn.Tensor(b))
        assert loss.item() == pytest.approx(np.mean((a - b) ** 2))

    def test_mae_matches_numpy(self):
        a = np.random.default_rng(0).normal(size=(4, 3))
        b = np.random.default_rng(1).normal(size=(4, 3))
        loss = nn.mae_loss(nn.Tensor(a), nn.Tensor(b))
        assert loss.item() == pytest.approx(np.mean(np.abs(a - b)))


class TestGaussianNLL:
    def test_matches_closed_form(self):
        """NLL = 0.5 * (log sigma^2 + (y - mu)^2 / sigma^2), paper Eq. 5."""
        y = np.array([[1.0, 2.0]])
        mu = np.array([[0.5, 2.5]])
        log_var = np.array([[0.0, np.log(4.0)]])
        expected = 0.5 * (log_var + (y - mu) ** 2 / np.exp(log_var))
        loss = nn.gaussian_nll(nn.Tensor(y), nn.Tensor(mu), nn.Tensor(log_var))
        assert loss.item() == pytest.approx(expected.mean())

    def test_perfect_prediction_reduces_to_log_term(self):
        y = np.ones((3, 2))
        log_var = np.full((3, 2), -1.0)
        loss = nn.gaussian_nll(nn.Tensor(y), nn.Tensor(y), nn.Tensor(log_var))
        assert loss.item() == pytest.approx(0.5 * -1.0)

    def test_minimised_when_variance_matches_error(self):
        """For a fixed error, the NLL is minimal at sigma^2 = error^2."""
        y = np.zeros((1, 1))
        mu = np.full((1, 1), 0.5)
        error_sq = 0.25
        candidates = np.linspace(np.log(error_sq) - 2, np.log(error_sq) + 2, 41)
        values = [
            nn.gaussian_nll(nn.Tensor(y), nn.Tensor(mu), nn.Tensor(np.full((1, 1), lv))).item()
            for lv in candidates
        ]
        assert candidates[int(np.argmin(values))] == pytest.approx(np.log(error_sq), abs=0.1)


class TestKLDivergence:
    def test_zero_for_standard_normal(self):
        mean = np.zeros((4, 3))
        log_var = np.zeros((4, 3))
        assert nn.kl_standard_normal(nn.Tensor(mean), nn.Tensor(log_var)).item() \
            == pytest.approx(0.0)

    def test_matches_closed_form(self):
        """KL = -0.5 * (1 + log sigma^2 - mu^2 - sigma^2), paper Eq. 6."""
        mean = np.array([[0.5, -1.0]])
        log_var = np.array([[0.2, -0.3]])
        expected = -0.5 * (1 + log_var - mean ** 2 - np.exp(log_var))
        loss = nn.kl_standard_normal(nn.Tensor(mean), nn.Tensor(log_var))
        assert loss.item() == pytest.approx(expected.mean())

    def test_positive_away_from_prior(self):
        mean = np.full((2, 2), 2.0)
        log_var = np.full((2, 2), 1.5)
        assert nn.kl_standard_normal(nn.Tensor(mean), nn.Tensor(log_var)).item() > 0


class TestELBO:
    def test_is_weighted_sum(self):
        """Loss = L_recon + lambda * D_KL, paper Eq. 7."""
        rng = np.random.default_rng(0)
        y, mu, lv = (rng.normal(size=(3, 4)) for _ in range(3))
        for weight in (0.0, 0.5, 2.0):
            combined = nn.elbo_loss(nn.Tensor(y), nn.Tensor(mu), nn.Tensor(lv),
                                    kl_weight=weight).item()
            expected = nn.gaussian_nll(nn.Tensor(y), nn.Tensor(mu), nn.Tensor(lv)).item() \
                + weight * nn.kl_standard_normal(nn.Tensor(mu), nn.Tensor(lv)).item()
            assert combined == pytest.approx(expected)

    def test_differentiable(self):
        y = nn.Tensor(np.zeros((2, 2)))
        mu = nn.Tensor(np.ones((2, 2)), requires_grad=True)
        lv = nn.Tensor(np.zeros((2, 2)), requires_grad=True)
        nn.elbo_loss(y, mu, lv, kl_weight=0.1).backward()
        assert mu.grad is not None and lv.grad is not None
