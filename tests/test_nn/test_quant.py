"""Unit and property tests for :mod:`repro.nn.quant`.

The hypothesis section pins the quantizer's numeric contract: the
quantize -> dequantize round trip errs by at most half a scale step per
element, and degenerate inputs (all-zero channels, constant channels,
single-element channels) produce finite positive scales instead of nan/inf.
The plan section checks the int8 forward pass against the float fast path
(bounded drift, bit-identical batch invariance) and its guard rails.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn.quant import (
    QMAX,
    QuantizedConv1d,
    QuantizedForwardPlan,
    QuantizedLinear,
    dequantize,
    quantize_values,
    quantize_weight,
)

finite_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                          allow_infinity=False)


@st.composite
def weight_arrays(draw):
    out_channels = draw(st.integers(1, 6))
    in_features = draw(st.integers(1, 12))
    return draw(hnp.arrays(np.float64, (out_channels, in_features),
                           elements=finite_floats))


class TestQuantizeDequantizeProperties:
    @given(weight_arrays())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_error_bounded_by_half_scale(self, weight):
        codes, scales = quantize_weight(weight, channel_axis=0)
        restored = dequantize(codes, scales, channel_axis=0)
        # Per-element error <= scale/2 (plus float slack) for each channel.
        bound = (scales / 2.0)[:, None] * (1.0 + 1e-9) + 1e-12
        assert np.all(np.abs(restored - weight) <= bound)

    @given(weight_arrays())
    @settings(max_examples=60, deadline=None)
    def test_scales_always_finite_and_positive(self, weight):
        codes, scales = quantize_weight(weight, channel_axis=0)
        assert np.all(np.isfinite(scales))
        assert np.all(scales > 0)
        assert codes.dtype == np.int8
        assert np.all(np.abs(codes.astype(np.int64)) <= QMAX)

    @given(st.integers(1, 8), st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_zero_channels_quantize_to_zero_without_nan(self, out_channels, in_features):
        weight = np.zeros((out_channels, in_features))
        codes, scales = quantize_weight(weight)
        assert np.all(scales == 1.0)
        assert np.all(codes == 0)
        np.testing.assert_array_equal(dequantize(codes, scales, channel_axis=0), weight)

    @given(finite_floats, st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_constant_channels_round_trip_exactly(self, value, in_features):
        weight = np.full((1, in_features), value)
        codes, scales = quantize_weight(weight)
        assert np.all(np.isfinite(scales)) and np.all(scales > 0)
        restored = dequantize(codes, scales, channel_axis=0)
        if scales[0] == 1.0 and abs(value) < 1.0:
            # Sub-floor range: the channel is treated as dead (codes 0) so
            # the float32 reciprocal of the scale stays representable; the
            # half-step error bound still holds trivially.
            assert np.all(codes == 0)
            assert np.all(np.abs(restored - weight) <= 0.5)
        else:
            # A constant channel sits exactly on the +-QMAX code of its scale.
            np.testing.assert_allclose(restored, weight, rtol=1e-12, atol=1e-300)

    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                     allow_infinity=False, allow_subnormal=True))
    @settings(max_examples=60, deadline=None)
    def test_single_value_channel(self, value):
        codes, scales = quantize_weight(np.array([[value]]))
        assert np.isfinite(scales).all() and (scales > 0).all()
        # The single value maps to +-QMAX on its own scale (0 for values so
        # small the scale division underflows and the unit scale kicks in).
        assert int(codes[0, 0]) in (0, QMAX, -QMAX)
        error = abs(float(dequantize(codes, scales, channel_axis=0)[0, 0]) - value)
        assert error <= scales[0] / 2.0 + 1e-12

    @given(hnp.arrays(np.float64, (4, 7), elements=finite_floats),
           st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=40, deadline=None)
    def test_values_saturate_at_qmax(self, values, scale):
        codes = quantize_values(values, scale)
        assert np.all(codes.astype(np.int64) <= QMAX)
        assert np.all(codes.astype(np.int64) >= -QMAX)

    def test_non_finite_ranges_are_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize_weight(np.array([[np.nan, 1.0]]))

    def test_near_zero_ranges_keep_float32_reciprocals_finite(self):
        """Regression: scales whose float32 reciprocal overflows are floored.

        A near-dead channel (max-abs ~1e-39) used to yield a scale that
        passed the positivity check but whose cached 1/scale overflowed
        float32 to inf, saturating every staged code (and producing NaN for
        exactly-zero samples).  Such ranges now fall back to the unit scale.
        """
        codes, scales = quantize_weight(np.full((1, 4), 1e-39))
        assert scales[0] == 1.0
        assert np.all(codes == 0)
        assert np.isfinite(np.float32(1.0 / scales[0]))


def _tiny_network(rng, in_channels=3, in_length=8):
    backbone = nn.Sequential(
        nn.Conv1d(in_channels, 6, kernel_size=2, stride=2, rng=rng),
        nn.ReLU(),
        nn.Conv1d(6, 8, kernel_size=2, stride=2, rng=rng),
        nn.ReLU(),
    )
    flat = 8 * (in_length // 4)
    heads = {"a": nn.Linear(flat, 4, rng=rng), "b": nn.Linear(flat, 2, rng=rng)}
    return backbone, heads


class TestQuantizedForwardPlan:
    def setup_method(self):
        self.rng = np.random.default_rng(7)
        self.backbone, self.heads = _tiny_network(self.rng)
        self.calibration = self.rng.normal(size=(32, 3, 8))
        self.plan = QuantizedForwardPlan.from_network(
            self.backbone, self.heads, in_channels=3, in_length=8,
            calibration=self.calibration,
        )
        self.float_plan = nn.FastForwardPlan(self.backbone, self.heads,
                                             in_channels=3, in_length=8)

    def test_outputs_track_the_float_plan(self):
        x = self.rng.normal(size=(16, 3, 8))
        quantized = self.plan.forward(x)
        exact = self.float_plan.forward(x)
        for name in self.heads:
            scale = np.abs(exact[name]).max() + 1e-9
            drift = np.abs(quantized[name] - exact[name]).max() / scale
            assert drift < 0.1, f"head {name}: relative drift {drift:.3f}"

    def test_rows_are_batch_invariant_bit_identical(self):
        x = self.rng.normal(size=(20, 3, 8))
        full = {name: out.copy() for name, out in self.plan.forward(x).items()}
        for index in (0, 7, 19):
            single = self.plan.forward(x[index:index + 1])
            for name in self.heads:
                np.testing.assert_array_equal(single[name][0], full[name][index])

    def test_calibration_saturation_clips_instead_of_overflowing(self):
        # Inputs far outside the calibrated range must still produce finite
        # outputs (codes saturate at +-QMAX).
        wild = 1e3 * self.rng.normal(size=(4, 3, 8))
        outputs = self.plan.forward(wild)
        for out in outputs.values():
            assert np.all(np.isfinite(out))

    def test_near_zero_calibration_data_yields_finite_outputs(self):
        """Regression: a dead calibration stream must not poison the plan."""
        backbone, heads = _tiny_network(np.random.default_rng(3))
        plan = QuantizedForwardPlan.from_network(
            backbone, heads, in_channels=3, in_length=8,
            calibration=np.full((8, 3, 8), 1e-39),
        )
        for x in (np.zeros((2, 3, 8)), self.rng.normal(size=(2, 3, 8))):
            outputs = plan.forward(x)
            for out in outputs.values():
                assert np.all(np.isfinite(out))

    def test_plan_parameter_bytes_are_counted(self):
        float_bytes = sum(p.size for p in
                          list(self.backbone.parameters())
                          + [p for h in self.heads.values() for p in h.parameters()]) * 4
        assert 0 < self.plan.parameter_bytes() < float_bytes

    def test_rejects_unsupported_backbones(self):
        rng = np.random.default_rng(0)
        backbone = nn.Sequential(nn.Conv1d(2, 4, 2, stride=2, rng=rng), nn.Tanh())
        heads = {"h": nn.Linear(8, 2, rng=rng)}
        with pytest.raises(TypeError, match="Conv1d/ReLU"):
            QuantizedForwardPlan.from_network(backbone, heads, 2, 4,
                                              calibration=rng.normal(size=(4, 2, 4)))

    def test_rejects_empty_calibration(self):
        with pytest.raises(ValueError, match="at least one"):
            QuantizedForwardPlan.from_network(self.backbone, self.heads, 3, 8,
                                              calibration=np.empty((0, 3, 8)))

    def test_rejects_mismatched_head_scales(self):
        conv = QuantizedConv1d(np.ones((2, 3, 2), dtype=np.int8), np.ones(2),
                               None, stride=2, padding=0, act_scale=1.0)
        heads = {
            "a": QuantizedLinear(np.ones((1, 8), dtype=np.int8), np.ones(1), None, 1.0),
            "b": QuantizedLinear(np.ones((1, 8), dtype=np.int8), np.ones(1), None, 2.0),
        }
        with pytest.raises(ValueError, match="share"):
            QuantizedForwardPlan([conv], heads, in_channels=3, in_length=8)

    def test_accumulator_depth_guard(self):
        # 2048-wide reduction of int8 products exceeds the exact-float32 range.
        conv = QuantizedConv1d(np.ones((1, 1024, 2), dtype=np.int8), np.ones(1),
                               None, stride=2, padding=0, act_scale=1.0)
        heads = {"h": QuantizedLinear(np.ones((1, 2), dtype=np.int8),
                                      np.ones(1), None, 1.0)}
        with pytest.raises(ValueError, match="accumulator"):
            QuantizedForwardPlan([conv], heads, in_channels=1024, in_length=4)
