"""Tests for the graph-free fast inference path (repro.nn.fastpath)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.fastpath import FastForwardPlan, fast_conv1d


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFastConv1d:
    @pytest.mark.parametrize("kernel,stride,padding", [
        (2, 2, 0),   # VARADE's configuration
        (3, 1, 1),   # same-length convolution
        (3, 2, 1),   # strided with padding
        (1, 1, 0),   # pointwise
    ])
    def test_matches_autograd_conv1d(self, rng, kernel, stride, padding):
        x = rng.normal(size=(4, 3, 16))
        weight = rng.normal(size=(5, 3, kernel))
        bias = rng.normal(size=5)
        fast = fast_conv1d(x, weight, bias, stride=stride, padding=padding)
        reference = nn.Tensor(x).conv1d(nn.Tensor(weight), nn.Tensor(bias),
                                        stride=stride, padding=padding)
        np.testing.assert_allclose(fast, reference.numpy(), rtol=1e-12, atol=1e-14)

    def test_reuses_caller_buffers(self, rng):
        x = rng.normal(size=(2, 3, 8))
        weight = rng.normal(size=(4, 3, 2))
        cols = np.empty((2, 6, 4))
        out = np.empty((2, 4, 4))
        result = fast_conv1d(x, weight, stride=2, cols_buf=cols, out=out)
        assert result is out

    def test_rejects_channel_mismatch(self, rng):
        with pytest.raises(ValueError, match="channel mismatch"):
            fast_conv1d(rng.normal(size=(1, 3, 8)), rng.normal(size=(4, 2, 2)))

    def test_rejects_misshaped_scratch_buffers(self, rng):
        """Regression: np.matmul(out=...) silently writes garbage into a
        wrong buffer, so every bad scratch must be rejected loudly."""
        x = rng.normal(size=(2, 3, 8))
        weight = rng.normal(size=(4, 3, 2))
        with pytest.raises(ValueError, match="cols_buf.*shape"):
            fast_conv1d(x, weight, stride=2, cols_buf=np.empty((2, 6, 3)))
        with pytest.raises(ValueError, match="out.*shape"):
            fast_conv1d(x, weight, stride=2, out=np.empty((2, 4, 5)))

    def test_rejects_wrong_dtype_scratch_buffers(self, rng):
        x = rng.normal(size=(2, 3, 8))
        weight = rng.normal(size=(4, 3, 2))
        with pytest.raises(ValueError, match="float64"):
            fast_conv1d(x, weight, stride=2,
                        cols_buf=np.empty((2, 6, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="float64"):
            fast_conv1d(x, weight, stride=2,
                        out=np.empty((2, 4, 4), dtype=np.float32))

    def test_rejects_non_contiguous_scratch_buffers(self, rng):
        x = rng.normal(size=(2, 3, 8))
        weight = rng.normal(size=(4, 3, 2))
        strided_cols = np.empty((2, 6, 8))[:, :, ::2]   # right shape, strided
        with pytest.raises(ValueError, match="C-contiguous"):
            fast_conv1d(x, weight, stride=2, cols_buf=strided_cols)
        strided_out = np.empty((2, 4, 8))[:, :, ::2]
        with pytest.raises(ValueError, match="C-contiguous"):
            fast_conv1d(x, weight, stride=2, out=strided_out)

    def test_valid_scratch_buffers_produce_exact_results(self, rng):
        x = rng.normal(size=(2, 3, 8))
        weight = rng.normal(size=(4, 3, 2))
        bias = rng.normal(size=4)
        plain = fast_conv1d(x, weight, bias, stride=2)
        buffered = fast_conv1d(x, weight, bias, stride=2,
                               cols_buf=np.empty((2, 6, 4)),
                               out=np.empty((2, 4, 4)))
        np.testing.assert_array_equal(plain, buffered)

    def test_rejects_too_short_input(self, rng):
        with pytest.raises(ValueError, match="output length"):
            fast_conv1d(rng.normal(size=(1, 3, 2)), rng.normal(size=(4, 3, 5)))


class TestFastForwardPlan:
    def _plan(self, rng):
        backbone = nn.Sequential(
            nn.Conv1d(3, 4, kernel_size=2, stride=2, rng=rng),
            nn.ReLU(),
            nn.Conv1d(4, 8, kernel_size=2, stride=2, rng=rng),
            nn.ReLU(),
        )
        head = nn.Linear(8 * 2, 3, rng=rng)
        return backbone, head, FastForwardPlan(backbone, {"out": head},
                                               in_channels=3, in_length=8)

    def test_matches_graph_forward(self, rng):
        backbone, head, plan = self._plan(rng)
        x = rng.normal(size=(5, 3, 8))
        fast = plan.forward(x)["out"]
        with nn.no_grad():
            reference = head(backbone(nn.Tensor(x)).flatten(start_dim=1))
        np.testing.assert_allclose(fast, reference.numpy(), rtol=1e-10, atol=1e-12)

    def test_batch_row_is_bit_identical_to_single(self, rng):
        _, _, plan = self._plan(rng)
        x = rng.normal(size=(7, 3, 8))
        batch = plan.forward(x)["out"].copy()
        for index in range(7):
            single = plan.forward(x[index:index + 1])["out"]
            np.testing.assert_array_equal(batch[index], single[0])

    def test_relu_first_backbone_does_not_mutate_input(self, rng):
        """Regression: a leading ReLU used to clobber the caller's array in
        place when the input was already contiguous."""
        backbone = nn.Sequential(nn.ReLU(), nn.Conv1d(3, 4, kernel_size=2, stride=2, rng=rng))
        head = nn.Linear(4 * 4, 2, rng=rng)
        plan = FastForwardPlan(backbone, {"out": head}, in_channels=3, in_length=8)
        x = rng.normal(size=(2, 3, 8))
        original = x.copy()
        plan.forward(x)
        np.testing.assert_array_equal(x, original)

    def test_rejects_unsupported_layers(self, rng):
        backbone = nn.Sequential(nn.Conv1d(3, 4, kernel_size=2, stride=2, rng=rng), nn.Tanh())
        with pytest.raises(TypeError, match="Conv1d/ReLU"):
            FastForwardPlan(backbone, {"out": nn.Linear(16, 2, rng=rng)},
                            in_channels=3, in_length=8)

    def test_rejects_mismatched_head(self, rng):
        backbone = nn.Sequential(nn.Conv1d(3, 4, kernel_size=2, stride=2, rng=rng))
        with pytest.raises(ValueError, match="head"):
            FastForwardPlan(backbone, {"out": nn.Linear(7, 2, rng=rng)},
                            in_channels=3, in_length=8)

    def test_rejects_wrong_input_shape(self, rng):
        _, _, plan = self._plan(rng)
        with pytest.raises(ValueError):
            plan.forward(rng.normal(size=(2, 3, 16)))

    def test_reads_live_weights(self, rng):
        _, head, plan = self._plan(rng)
        x = rng.normal(size=(2, 3, 8))
        before = plan.forward(x)["out"].copy()
        head.bias.data = head.bias.data + 2.5
        after = plan.forward(x)["out"]
        np.testing.assert_allclose(after, before + 2.5, atol=1e-12)
