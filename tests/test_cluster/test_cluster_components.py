"""Cluster building blocks, each tested in isolation.

Session handoff (export/import round trips), fleet stats and metrics-page
merging, the worker supervisor, and the multi-tenant wire server -- the
end-to-end parity suite (``test_cluster_parity.py``) then proves the
composition.
"""

import asyncio
import os
import signal
import threading

import numpy as np
import pytest

from repro.cluster import (ClusterStats, TenantWireServer, WorkerConfig,
                           WorkerSupervisor, merge_metrics_pages)
from repro.edge import StreamingHistogram
from repro.pipeline import Pipeline
from repro.serialize import artifact_fingerprint
from repro.serve import (AnomalyWireServer, BinaryClient, ServiceConfig,
                         ServiceStats, TCPClient, TCPTransport)

from cluster_helpers import N_CHANNELS, worker_config


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _stats(samples: int, *, delays=(), alarms: int = 0) -> ServiceStats:
    queue_delay = StreamingHistogram.log_spaced(1e-6, 60.0)
    queue_delay.extend(delays)
    occupancy = StreamingHistogram.linear(0.0, 1.0, 10)
    return ServiceStats(
        sessions_opened=1, sessions_closed=1, live_sessions=0,
        samples_pushed=samples, samples_scored=samples, samples_dropped=0,
        flushes=1, scoring_time_s=0.1, alarms_total=alarms,
        queue_delay_histogram=queue_delay, occupancy_histogram=occupancy)


def _snapshot(stats_by_tenant) -> dict:
    return {"services": {tenant: {"fingerprint": None,
                                  "stats": stats.to_dict()}
                         for tenant, stats in stats_by_tenant.items()}}


class WireServerThread:
    """Run any AnomalyWireServer subclass on an ephemeral port."""

    def __init__(self, server_factory):
        self._factory = server_factory
        self.server = None
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = self._factory()
            ready = asyncio.Event()
            task = asyncio.create_task(self.server.serve_forever(ready=ready))
            await ready.wait()
            self.port = self.server.bound_port
            self._ready.set()
            await task

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(60.0), "wire server did not come up"
        return self

    def __exit__(self, *exc_info):
        if self._thread.is_alive():
            try:
                with TCPClient(port=self.port, timeout_s=5.0) as client:
                    client.shutdown()
            except (OSError, RuntimeError):
                self.server.request_stop()
            self._thread.join(30.0)


# --------------------------------------------------------------------------- #
# fleet stats merging
# --------------------------------------------------------------------------- #
class TestClusterStats:
    def test_counters_sum_and_histograms_merge(self):
        snapshots = {
            "w0": _snapshot({"default": _stats(100, delays=[1e-4] * 10,
                                               alarms=3)}),
            "w1": _snapshot({"default": _stats(40, delays=[1e-2] * 10,
                                               alarms=1)}),
        }
        merged = ClusterStats.from_snapshots(snapshots)
        assert merged.workers == 2
        assert merged.total.samples_pushed == 140
        assert merged.total.alarms_total == 4
        assert merged.total.sessions_opened == 2
        # fleet p99 comes from the combined distribution: with half the
        # samples at 1e-2 it must sit in the slow mode, not between modes
        assert merged.total.queue_delay_histogram.count == 20
        assert merged.total.queue_delay_p99_s == pytest.approx(1e-2, rel=0.5)
        assert merged.per_worker["w0"].samples_pushed == 100
        assert merged.per_worker["w1"].samples_pushed == 40

    def test_tenants_aggregate_across_workers(self):
        snapshots = {
            "w0": _snapshot({"alpha": _stats(10), "beta": _stats(20)}),
            "w1": _snapshot({"alpha": _stats(5)}),
        }
        merged = ClusterStats.from_snapshots(snapshots)
        assert merged.tenants["alpha"].samples_pushed == 15
        assert merged.tenants["beta"].samples_pushed == 20
        assert merged.total.samples_pushed == 35

    def test_empty_fleet_reports_zeros(self):
        merged = ClusterStats.from_snapshots({})
        assert merged.workers == 0
        assert merged.total.samples_pushed == 0
        assert merged.total.queue_delay_p99_s == 0.0

    def test_service_stats_dict_round_trip_is_exact(self):
        stats = _stats(17, delays=[1e-3, 2e-3, 5e-1], alarms=2)
        back = ServiceStats.from_dict(stats.to_dict())
        assert back.to_dict() == stats.to_dict()
        assert back.queue_delay_p99_s == stats.queue_delay_p99_s
        assert back.mean_batch_size == stats.mean_batch_size


class TestMergeMetricsPages:
    PAGE_A = (
        "# HELP repro_service_samples_pushed_total Samples pushed.\n"
        "# TYPE repro_service_samples_pushed_total counter\n"
        "repro_service_samples_pushed_total 100\n"
        "# TYPE repro_service_queue_delay_seconds summary\n"
        "repro_service_queue_delay_seconds{quantile=\"0.99\"} 0.5\n"
        "repro_service_queue_delay_seconds_sum 1.5\n"
        "repro_service_queue_delay_seconds_count 10\n"
        "# TYPE repro_service_ops_total counter\n"
        "repro_service_ops_total{op=\"push\"} 7\n"
    )
    PAGE_B = (
        "# HELP repro_service_samples_pushed_total Samples pushed.\n"
        "# TYPE repro_service_samples_pushed_total counter\n"
        "repro_service_samples_pushed_total 40\n"
        "# TYPE repro_service_queue_delay_seconds summary\n"
        "repro_service_queue_delay_seconds{quantile=\"0.99\"} 2.0\n"
        "repro_service_queue_delay_seconds_sum 0.5\n"
        "repro_service_queue_delay_seconds_count 4\n"
        "# TYPE repro_service_ops_total counter\n"
        "repro_service_ops_total{op=\"push\"} 3\n"
        "repro_service_ops_total{op=\"open\"} 2\n"
    )

    def test_counters_sum_per_labelset(self):
        page = merge_metrics_pages([self.PAGE_A, self.PAGE_B])
        assert "repro_service_samples_pushed_total 140\n" in page
        assert 'repro_service_ops_total{op="push"} 10' in page
        assert 'repro_service_ops_total{op="open"} 2' in page

    def test_summary_quantiles_take_the_max_but_sum_count(self):
        """The true fleet quantile is unrecoverable from per-worker
        quantiles; the merged page must report the conservative max while
        still summing the _sum/_count series exactly."""
        page = merge_metrics_pages([self.PAGE_A, self.PAGE_B])
        assert 'repro_service_queue_delay_seconds{quantile="0.99"} 2\n' \
            in page
        assert "repro_service_queue_delay_seconds_sum 2\n" in page
        assert "repro_service_queue_delay_seconds_count 14\n" in page

    def test_headers_emitted_once(self):
        page = merge_metrics_pages([self.PAGE_A, self.PAGE_B])
        assert page.count("# TYPE repro_service_samples_pushed_total") == 1
        assert page.count("# HELP repro_service_samples_pushed_total") == 1

    def test_empty_input(self):
        assert merge_metrics_pages([]) == ""
        assert merge_metrics_pages([""]) == ""


# --------------------------------------------------------------------------- #
# session export / import
# --------------------------------------------------------------------------- #
class TestSessionHandoff:
    def _deploy(self, artifact):
        return Pipeline.load(artifact).deploy_service(
            config=ServiceConfig(max_batch=8, max_delay_ms=1.0))

    @staticmethod
    async def _collector(service, out):
        async for alarm in service.alarms():
            out.append((alarm.index, float(alarm.score)))

    async def _watch(self, service, out):
        task = asyncio.create_task(self._collector(service, out))
        await asyncio.sleep(0.01)       # let the subscription register
        return task

    def test_export_import_continues_bit_identically(self, artifact):
        """A session exported mid-stream and imported into a *different*
        service process must score the remaining samples exactly as an
        uninterrupted session would -- the rebalance correctness core."""
        rng = np.random.default_rng(11)
        data = rng.normal(size=(60, N_CHANNELS))

        async def uninterrupted():
            alarms = []
            async with self._deploy(artifact) as service:
                task = await self._watch(service, alarms)
                await service.open_session("s")
                for row in data:
                    await service.push("s", row)
                session = await service.close_session("s")
                await asyncio.sleep(0.1)
                task.cancel()
            return alarms, session.samples_pushed, session.samples_scored

        async def handed_off():
            alarms = []
            async with self._deploy(artifact) as donor, \
                    self._deploy(artifact) as receiver:
                tasks = [await self._watch(donor, alarms),
                         await self._watch(receiver, alarms)]
                await donor.open_session("s")
                for row in data[:30]:
                    await donor.push("s", row)
                blob = await donor.export_session("s")
                assert isinstance(blob, bytes)
                await receiver.import_session(blob)
                for row in data[30:]:
                    await receiver.push("s", row)
                session = await receiver.close_session("s")
                await asyncio.sleep(0.1)
                for task in tasks:
                    task.cancel()
                assert donor.stats().sessions_exported == 1
                assert receiver.stats().sessions_imported == 1
            return alarms, session.samples_pushed, session.samples_scored

        base_alarms, base_pushed, base_scored = asyncio.run(uninterrupted())
        moved_alarms, moved_pushed, moved_scored = asyncio.run(handed_off())
        assert base_alarms, "seed produced no alarms; the parity check is void"
        assert sorted(moved_alarms) == sorted(base_alarms)
        # the imported session keeps its cumulative per-stream counters
        assert moved_pushed == base_pushed
        assert moved_scored == base_scored

    def test_base_server_refuses_handoff_ops(self, artifact):
        """export/import deserialise pickled session state, so they are
        cluster-internal: a stock server must reject them outright."""
        service = self._deploy(artifact)
        with WireServerThread(lambda: AnomalyWireServer(
                service, TCPTransport("127.0.0.1", 0))) as server:
            with BinaryClient(port=server.port) as client:
                client.open("s")
                with pytest.raises(RuntimeError, match="handoff is disabled"):
                    client.export_session("s")
                with pytest.raises(RuntimeError, match="handoff is disabled"):
                    client.import_session("default", "AAAA")


# --------------------------------------------------------------------------- #
# worker supervisor
# --------------------------------------------------------------------------- #
class TestWorkerSupervisor:
    def test_spawn_handshake_respawn_and_stop(self, artifact):
        with WorkerSupervisor() as supervisor:
            handle = supervisor.spawn(worker_config("w0", artifact))
            assert supervisor.alive("w0")
            port = int(handle.endpoint)
            with BinaryClient(port=port) as client:
                assert client.ping()["ok"]
            os.kill(handle.pid, signal.SIGKILL)
            handle.process.wait(timeout=30)
            assert not supervisor.alive("w0")
            respawned = supervisor.respawn("w0")
            assert respawned.restarts == 1
            assert respawned.pid != handle.pid
            assert supervisor.alive("w0")
            with BinaryClient(port=int(respawned.endpoint)) as client:
                assert client.ping()["ok"]
            supervisor.stop("w0")
            assert not supervisor.alive("w0")

    def test_worker_config_validation(self, artifact):
        with pytest.raises(ValueError):
            WorkerConfig(name="w0", artifacts={})
        with pytest.raises(ValueError):
            WorkerConfig(name="w0", artifacts={"default": artifact},
                         transport="carrier-pigeon")
        with pytest.raises(ValueError):
            WorkerConfig(name="w0",
                         artifacts={"a": artifact, "b": artifact},
                         default_tenant="missing")


# --------------------------------------------------------------------------- #
# multi-tenant wire server
# --------------------------------------------------------------------------- #
class TestTenantWireServer:
    @pytest.fixture()
    def tenant_server(self, artifact, second_artifact):
        def factory():
            services = {
                "alpha": Pipeline.load(artifact).deploy_service(
                    config=ServiceConfig(max_batch=8, max_delay_ms=1.0)),
                "beta": Pipeline.load(second_artifact).deploy_service(
                    config=ServiceConfig(max_batch=8, max_delay_ms=1.0)),
            }
            fingerprints = {"alpha": artifact_fingerprint(artifact),
                            "beta": artifact_fingerprint(second_artifact)}
            return TenantWireServer(services, TCPTransport("127.0.0.1", 0),
                                    fingerprints=fingerprints,
                                    default_tenant="alpha")
        with WireServerThread(factory) as server:
            yield server

    def test_open_resolves_tenant_name_and_fingerprint(
            self, tenant_server, second_artifact):
        rng = np.random.default_rng(2)
        with BinaryClient(port=tenant_server.port) as client:
            assert client.open("a1")["ok"]                  # default tenant
            assert client.open("b1", tenant="beta")["ok"]
            fingerprint = artifact_fingerprint(second_artifact)
            assert client.open("b2", tenant=fingerprint)["ok"]
            for stream in ("a1", "b1", "b2"):
                client.push_stream(stream, rng.normal(size=(12, N_CHANNELS)))
                assert client.close_stream(stream)["samples_pushed"] == 12
            # stats answer with the merge across both hosted tenants
            assert client.stats()["samples_pushed"] == 36
            snapshot = client.snapshot()
            assert set(snapshot["services"]) == {"alpha", "beta"}
            assert snapshot["services"]["beta"]["fingerprint"] == fingerprint

    def test_unknown_tenant_is_a_clean_error(self, tenant_server):
        with BinaryClient(port=tenant_server.port) as client:
            with pytest.raises(RuntimeError, match="alpha"):
                client.open("s", tenant="nope")
            assert client.ping()["ok"], "the connection must survive"
