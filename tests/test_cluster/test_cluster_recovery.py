"""Worker-crash supervision: SIGKILL a shard mid-stream, keep serving.

The router's contract is bounded-loss availability: a killed worker is
respawned, its streams are re-opened from their recorded ``open`` frames,
and every in-flight client push retries until the replacement answers --
the client sees slower acks, never an error.  (Scores inside the crashed
window are lost with the worker's memory; the parity suite covers the
*graceful* leave path, which loses nothing.)
"""

import os
import signal

import numpy as np

from repro.cluster import ClusterHarness, RouterConfig

from cluster_helpers import N_CHANNELS, worker_config


def test_sigkill_mid_stream_respawns_and_serving_continues(artifact):
    rng = np.random.default_rng(5)
    streams = {f"c{i}": rng.normal(size=(60, N_CHANNELS)) for i in range(6)}
    configs = [worker_config(f"w{i}", artifact) for i in range(2)]
    with ClusterHarness(
            configs,
            router_config=RouterConfig(health_interval_s=0.5)) as cluster:
        from repro.serve import BinaryClient

        with BinaryClient(port=cluster.port) as client:
            for sid in streams:
                client.open(sid)
            for sid, data in streams.items():
                client.push_stream(sid, data[:30])
            victim = cluster.worker_pids()["w1"]
            os.kill(victim, signal.SIGKILL)
            # every push below either routes to the healthy worker or
            # blocks inside the router until w1's replacement is up
            for sid, data in streams.items():
                client.push_stream(sid, data[30:])
            summaries = {sid: client.close_stream(sid) for sid in streams}
            snapshot = client.snapshot()
            assert snapshot["cluster"]["worker_restarts"] >= 1
            assert snapshot["cluster"]["workers_live"] == 2
            # streams on the surviving worker scored all 60 samples;
            # streams on the victim lost only the pre-crash half
            assert all(s["samples_pushed"] in (60, 30)
                       for s in summaries.values()), summaries
            assert cluster.worker_pids()["w1"] != victim
