"""Consistent-hash ring: determinism, balance, minimal movement."""

import pytest

from repro.cluster import HashRing

KEYS = [f"stream-{i}" for i in range(1000)]


class TestPlacement:
    def test_placement_ignores_insertion_order(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])
        assert a.assignments(KEYS) == b.assignments(KEYS)

    def test_placement_is_reproducible_across_constructions(self):
        """blake2b points, not salted builtin hash: two independent rings
        (as in two router processes) must agree on every key."""
        first = HashRing(["w0", "w1"]).assignments(KEYS)
        second = HashRing(["w0", "w1"]).assignments(KEYS)
        assert first == second

    def test_load_is_roughly_balanced(self):
        ring = HashRing(["w0", "w1", "w2"])
        owners = ring.assignments(KEYS)
        for node in ring.nodes:
            share = sum(1 for owner in owners.values() if owner == node)
            assert share > len(KEYS) * 0.15, \
                f"{node} owns only {share}/{len(KEYS)} keys"

    def test_adding_a_node_only_moves_keys_onto_it(self):
        old = HashRing(["w0", "w1", "w2"])
        new = HashRing(["w0", "w1", "w2", "w3"])
        moved = old.moved_keys(KEYS, new)
        assert moved, "a new node should take over some arcs"
        assert all(new.owner(key) == "w3" for key in moved)
        # and well under a naive rebalance: ~1/4 of keys, not all of them
        assert len(moved) < len(KEYS) // 2

    def test_removing_a_node_only_moves_its_keys(self):
        old = HashRing(["w0", "w1", "w2"])
        new = HashRing(["w1", "w2"])
        for key in old.moved_keys(KEYS, new):
            assert old.owner(key) == "w0"

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert set(ring.assignments(KEYS).values()) == {"only"}

    def test_virtual_node_count_changes_placement_granularity(self):
        """Different vnode counts give different (but each internally
        deterministic) cuts -- the parity suite leans on this to prove
        scores are placement-independent."""
        coarse = HashRing(["w0", "w1"], virtual_nodes=4)
        fine = HashRing(["w0", "w1"], virtual_nodes=256)
        assert coarse.assignments(KEYS) != fine.assignments(KEYS)


class TestMembership:
    def test_len_and_contains(self):
        ring = HashRing(["w0"])
        assert len(ring) == 1 and "w0" in ring and "w1" not in ring
        ring.add("w1")
        assert len(ring) == 2 and ring.nodes == frozenset({"w0", "w1"})
        ring.remove("w0")
        assert len(ring) == 1 and "w0" not in ring

    def test_duplicate_add_is_rejected(self):
        ring = HashRing(["w0"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add("w0")

    def test_unknown_remove_is_rejected(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(["w0"]).remove("w9")

    def test_empty_node_name_is_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            HashRing([""])

    def test_empty_ring_has_no_owner(self):
        with pytest.raises(LookupError, match="no nodes"):
            HashRing().owner("stream-1")

    def test_bad_virtual_nodes_rejected(self):
        with pytest.raises(ValueError, match="virtual_nodes"):
            HashRing(virtual_nodes=0)
