"""Shard-placement determinism: a cluster must be invisible in the scores.

The contract under test is the ISSUE's acceptance gate: scores, alarms and
close summaries are **bit-identical** between a plain single-process
service and a sharded cluster -- for any worker count, any ring
granularity (placement independence), and across live worker join/leave
rebalances mid-stream.  Everything here drives real worker subprocesses
through the real router; nothing is mocked.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterHarness, RouterConfig
from repro.pipeline import Pipeline
from repro.serve import (AnomalyTCPServer, BinaryClient, ServiceConfig,
                         TCPClient)

from cluster_helpers import N_CHANNELS, worker_config

N_STREAMS = 8
SAMPLES = 50
HALF = SAMPLES // 2


@pytest.fixture(scope="module")
def streams():
    rng = np.random.default_rng(3)
    # float32 is what the binary wire carries; generating float32 up front
    # keeps the JSON leg bit-comparable with the binary legs
    return {f"s{i}": rng.normal(size=(SAMPLES, N_CHANNELS)).astype("float32")
            for i in range(N_STREAMS)}


def _collect(client, streams, alarms):
    """Close every stream, then drain trailing alarm events."""
    summaries = {sid: client.close_stream(sid) for sid in streams}
    time.sleep(0.3)
    client.ping()        # one more round trip flushes buffered events
    for event in client.alarms:
        alarms[event["stream"]].append(
            (event["index"], event["score"], event["threshold"]))
    return summaries


def _run_cluster(artifact, n_workers, *, client_type=BinaryClient,
                 virtual_nodes=None, rebalance=None, streams=None):
    """Push every stream through an n-worker cluster; optionally reshape
    the fleet halfway through."""
    router_config = RouterConfig() if virtual_nodes is None \
        else RouterConfig(virtual_nodes=virtual_nodes)
    configs = [worker_config(f"w{i}", artifact) for i in range(n_workers)]
    alarms = {sid: [] for sid in streams}
    with ClusterHarness(configs, router_config=router_config) as cluster:
        with client_type(port=cluster.port) as client:
            for sid in streams:
                client.open(sid)
            for sid, data in streams.items():
                client.push_stream(sid, data[:HALF])
            if rebalance == "join":
                cluster.add_worker(worker_config(f"w{n_workers}", artifact))
            elif rebalance == "leave":
                cluster.remove_worker("w0")
            for sid, data in streams.items():
                client.push_stream(sid, data[HALF:])
            summaries = _collect(client, streams, alarms)
            snapshot = client.snapshot()
    return alarms, summaries, snapshot


def _run_single(artifact, streams, client_type=BinaryClient):
    """The ground truth: one AnomalyService behind a plain wire server."""
    service = Pipeline.load(artifact).deploy_service(
        config=ServiceConfig(max_batch=8, max_delay_ms=2.0))
    server = AnomalyTCPServer(service, port=0)
    ready = threading.Event()
    result = {}

    def run():
        async def main():
            server_ready = asyncio.Event()
            task = asyncio.create_task(server.serve_forever(ready=server_ready))
            await server_ready.wait()
            result["port"] = server.bound_port
            ready.set()
            await task

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(30.0)
    alarms = {sid: [] for sid in streams}
    try:
        with client_type(port=result["port"]) as client:
            for sid in streams:
                client.open(sid)
            for sid, data in streams.items():
                client.push_stream(sid, data)
            summaries = _collect(client, streams, alarms)
            # request_stop() from this (foreign) thread would not wake the
            # server's event loop; a polite wire-level shutdown does.
            client.shutdown()
    finally:
        thread.join(30.0)
    return alarms, summaries


@pytest.fixture(scope="module")
def single_run(artifact, streams):
    alarms, summaries = _run_single(artifact, streams)
    assert sum(len(a) for a in alarms.values()) > 0, \
        "the reference run raised no alarms; every parity check below " \
        "would pass vacuously"
    return alarms, summaries


def _comparable(summaries):
    """The deterministic slice of a close summary (drops timing fields)."""
    return {sid: {"samples_pushed": s["samples_pushed"],
                  "samples_scored": s["samples_scored"],
                  "samples_dropped": s["samples_dropped"],
                  "alarms": s.get("alarms")}
            for sid, s in summaries.items()}


class TestWorkerCountParity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_cluster_matches_single_service(self, artifact, streams,
                                            single_run, n_workers):
        base_alarms, base_summaries = single_run
        alarms, summaries, snapshot = _run_cluster(artifact, n_workers,
                                                   streams=streams)
        assert alarms == base_alarms
        assert _comparable(summaries) == _comparable(base_summaries)
        assert snapshot["cluster"]["workers_live"] == n_workers

    def test_json_protocol_leg_matches_too(self, artifact, streams,
                                           single_run):
        """The router proxies both wire protocols; the JSON path must be
        just as invisible (float64 repr round-trips through the trunk)."""
        base_alarms, _ = single_run
        alarms, _, _ = _run_cluster(artifact, 2, client_type=TCPClient,
                                    streams=streams)
        assert alarms == base_alarms

    def test_placement_independence_across_ring_granularity(
            self, artifact, streams, single_run):
        """Different virtual-node counts cut the ring differently, so the
        same streams land on different workers -- the scores must not
        care where a stream lives."""
        base_alarms, _ = single_run
        alarms, _, _ = _run_cluster(artifact, 2, virtual_nodes=8,
                                    streams=streams)
        assert alarms == base_alarms


class TestRebalanceParity:
    def test_worker_join_mid_stream_is_bit_identical(self, artifact,
                                                     streams, single_run):
        base_alarms, base_summaries = single_run
        alarms, summaries, snapshot = _run_cluster(
            artifact, 2, rebalance="join", streams=streams)
        assert alarms == base_alarms
        assert _comparable(summaries) == _comparable(base_summaries)
        assert snapshot["cluster"]["workers_live"] == 3
        assert snapshot["cluster"]["rebalances"] == 1
        assert snapshot["cluster"]["sessions_rehomed"] > 0, \
            "a 2->3 ring re-slice should move at least one of 8 streams"

    def test_worker_leave_mid_stream_is_bit_identical(self, artifact,
                                                      streams, single_run):
        base_alarms, base_summaries = single_run
        alarms, summaries, snapshot = _run_cluster(
            artifact, 3, rebalance="leave", streams=streams)
        assert alarms == base_alarms
        assert _comparable(summaries) == _comparable(base_summaries)
        assert snapshot["cluster"]["workers_live"] == 2
        assert "w0" not in snapshot["workers"]
        assert snapshot["cluster"]["sessions_rehomed"] > 0, \
            "w0's streams must have been drained onto the survivors"
