"""Shared fixtures for the sharded-serving suite.

One tiny VARADE artifact is trained and packaged once per session (seconds,
through the real ``fit -> calibrate -> package`` path) and every cluster in
the suite serves it.  A second, differently-seeded artifact backs the
multi-tenant tests.  Spec and builders live in ``cluster_helpers.py`` so
test modules can import them directly.
"""

from pathlib import Path

import pytest

from cluster_helpers import package_tiny, tiny_spec


@pytest.fixture(scope="session")
def artifact(tmp_path_factory) -> Path:
    """A packaged VARADE artifact every cluster in the suite serves."""
    return package_tiny(tiny_spec(seed=0),
                        tmp_path_factory.mktemp("cluster") / "artifact")


@pytest.fixture(scope="session")
def second_artifact(tmp_path_factory) -> Path:
    """A second, differently-seeded artifact for multi-tenant tests."""
    return package_tiny(tiny_spec(seed=7),
                        tmp_path_factory.mktemp("cluster") / "artifact-b")
