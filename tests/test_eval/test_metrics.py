"""Tests for the evaluation metrics (ROC/AUC, PR, F1, point-adjust)."""

import numpy as np
import pytest

from repro.eval import (
    average_precision_score,
    best_f1_score,
    confusion_counts,
    f1_score,
    point_adjust,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)


class TestROC:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc_score(scores, labels) == pytest.approx(1.0)

    def test_perfectly_wrong(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc_score(scores, labels) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(5000)
        labels = rng.integers(0, 2, 5000)
        assert roc_auc_score(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_hand_computed_example(self):
        # scores: 0.9(1) 0.8(0) 0.7(1) 0.3(0) -> AUC = 3/4
        scores = np.array([0.9, 0.8, 0.7, 0.3])
        labels = np.array([1, 0, 1, 0])
        assert roc_auc_score(scores, labels) == pytest.approx(0.75)

    def test_ties_handled(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0, 1, 0, 1])
        assert roc_auc_score(scores, labels) == pytest.approx(0.5)

    def test_curve_starts_at_origin_and_ends_at_one(self):
        rng = np.random.default_rng(1)
        scores = rng.random(100)
        labels = rng.integers(0, 2, 100)
        fpr, tpr, thresholds = roc_curve(scores, labels)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_auc_invariant_to_monotonic_transform(self):
        rng = np.random.default_rng(2)
        scores = rng.random(200)
        labels = rng.integers(0, 2, 200)
        original = roc_auc_score(scores, labels)
        transformed = roc_auc_score(np.exp(5 * scores), labels)
        assert original == pytest.approx(transformed)

    def test_nan_scores_ignored(self):
        scores = np.array([0.1, np.nan, 0.9, 0.8])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc_score(scores, labels) == pytest.approx(1.0)

    def test_errors(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([0.1, 0.2]), np.array([1, 1]))  # single class
        with pytest.raises(ValueError):
            roc_auc_score(np.array([0.1]), np.array([0, 1]))
        with pytest.raises(ValueError):
            roc_auc_score(np.array([0.1, 0.2]), np.array([0, 2]))
        with pytest.raises(ValueError):
            roc_auc_score(np.array([]), np.array([]))


class TestPrecisionRecall:
    def test_perfect_detector_ap_is_one(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert average_precision_score(scores, labels) == pytest.approx(1.0)

    def test_curve_values(self):
        scores = np.array([0.9, 0.8, 0.7])
        labels = np.array([1, 0, 1])
        precision, recall, _ = precision_recall_curve(scores, labels)
        np.testing.assert_allclose(precision, [1.0, 0.5, 2 / 3])
        np.testing.assert_allclose(recall, [0.5, 0.5, 1.0])

    def test_requires_positives(self):
        with pytest.raises(ValueError):
            precision_recall_curve(np.array([0.5, 0.6]), np.array([0, 0]))


class TestF1AndConfusion:
    def test_confusion_counts(self):
        predictions = np.array([1, 1, 0, 0, 1])
        labels = np.array([1, 0, 0, 1, 1])
        tp, fp, tn, fn = confusion_counts(predictions, labels)
        assert (tp, fp, tn, fn) == (2, 1, 1, 1)

    def test_f1_hand_computed(self):
        predictions = np.array([1, 1, 0, 0, 1])
        labels = np.array([1, 0, 0, 1, 1])
        assert f1_score(predictions, labels) == pytest.approx(2 * 2 / (2 * 2 + 1 + 1))

    def test_f1_zero_when_nothing_predicted(self):
        assert f1_score(np.zeros(4), np.array([1, 1, 0, 0])) == 0.0

    def test_best_f1_reaches_one_for_separable_scores(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        best, threshold = best_f1_score(scores, labels)
        assert best == pytest.approx(1.0)
        assert 0.2 <= threshold < 0.9

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.zeros(3), np.zeros(4))


class TestPointAdjust:
    def test_detected_event_fully_credited(self):
        labels = np.array([0, 1, 1, 1, 0, 1, 1])
        predictions = np.array([0, 0, 1, 0, 0, 0, 0])
        adjusted = point_adjust(predictions, labels)
        np.testing.assert_array_equal(adjusted, [0, 1, 1, 1, 0, 0, 0])

    def test_missed_event_stays_missed(self):
        labels = np.array([0, 1, 1, 0])
        predictions = np.array([0, 0, 0, 0])
        np.testing.assert_array_equal(point_adjust(predictions, labels), predictions)

    def test_false_positives_preserved(self):
        labels = np.array([0, 0, 0])
        predictions = np.array([1, 0, 1])
        np.testing.assert_array_equal(point_adjust(predictions, labels), predictions)
