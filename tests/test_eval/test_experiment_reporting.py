"""Tests for the experiment harness, reporting helpers and ablations."""

import pytest

from repro.eval import (
    ExperimentConfig,
    PAPER_AUC,
    PAPER_TABLE2,
    format_comparison,
    format_figure3,
    format_table2,
    paper_scale_costs,
    run_full_experiment,
    run_variational_ablation,
)
from repro.eval.experiment import evaluate_detector
from repro.baselines import DetectorRegistry


class TestPaperScaleCosts:
    def test_all_six_detectors_present(self):
        costs = paper_scale_costs()
        assert set(costs) == {"VARADE", "AR-LSTM", "AE", "GBRF", "kNN", "Isolation Forest"}

    def test_neural_models_cost_more_flops_than_tree_models(self):
        costs = paper_scale_costs()
        assert costs["VARADE"].flops > costs["GBRF"].flops
        assert costs["AE"].flops > costs["Isolation Forest"].flops


class TestEvaluateDetector:
    def test_produces_valid_metrics(self, tiny_dataset):
        registry = DetectorRegistry(n_channels=tiny_dataset.n_channels, window=16,
                                    neural_epochs=1, max_train_windows=80,
                                    varade_epochs=2, varade_warmup_epochs=1)
        detector = registry.build_knn()
        evaluation = evaluate_detector(detector, tiny_dataset)
        assert 0.0 <= evaluation.auc_roc <= 1.0
        assert 0.0 <= evaluation.average_precision <= 1.0
        assert evaluation.samples_scored > 0
        assert evaluation.host_score_hz > 0


class TestFullExperiment:
    @pytest.fixture(scope="class")
    def small_result(self, tiny_dataset):
        config = ExperimentConfig(
            window=16,
            neural_epochs=1,
            max_train_windows=60,
            detectors=("GBRF", "kNN"),
        )
        return run_full_experiment(config, dataset=tiny_dataset)

    def test_contains_requested_detectors(self, small_result):
        assert {e.name for e in small_result.evaluations} == {"GBRF", "kNN"}

    def test_edge_metrics_for_both_boards(self, small_result):
        for evaluation in small_result.evaluations:
            assert set(evaluation.edge) == {"Jetson Xavier NX", "Jetson AGX Orin"}

    def test_table2_rows_include_idle(self, small_result):
        rows = small_result.table2_rows("Jetson Xavier NX")
        assert rows[0]["model"] == "Idle"
        assert len(rows) == 3
        assert all("inference_hz" in row for row in rows)

    def test_figure3_series(self, small_result):
        points = small_result.figure3_series()
        assert len(points) == 4  # 2 detectors x 2 boards
        for point in points:
            assert 0.0 <= point["auc_roc"] <= 1.0
            assert point["inference_hz"] > 0

    def test_by_name_lookup(self, small_result):
        assert small_result.by_name("kNN").name == "kNN"
        with pytest.raises(KeyError):
            small_result.by_name("missing")


class TestReporting:
    def test_paper_reference_values(self):
        assert PAPER_AUC["VARADE"] == pytest.approx(0.844)
        assert PAPER_TABLE2["Jetson AGX Orin"]["GBRF"]["inference_hz"] == pytest.approx(44.128)

    def test_format_table2(self):
        rows = [{
            "board": "Jetson Xavier NX", "model": "VARADE", "cpu_percent": 52.4,
            "gpu_percent": 70.6, "ram_mb": 5488.9, "gpu_ram_mb": 1005.4,
            "power_w": 6.33, "auc_roc": 0.844, "inference_hz": 14.94,
        }]
        text = format_table2(rows, title="Table 2")
        assert "VARADE" in text and "Table 2" in text and "14.94" in text

    def test_format_figure3(self):
        points = [{"model": "VARADE", "board": "Jetson Xavier NX",
                   "inference_hz": 14.9, "auc_roc": 0.84, "power_w": 6.3}]
        text = format_figure3(points, title="Figure 3")
        assert "VARADE" in text and "Figure 3" in text

    def test_format_comparison(self):
        text = format_comparison({"VARADE": 0.8}, {"VARADE": 0.844, "AE": 0.81}, "AUC")
        assert "0.95" in text or "0.9" in text
        assert "---" in text  # AE not measured


class TestAblation:
    def test_variational_ablation_runs(self, tiny_dataset):
        results = run_variational_ablation(tiny_dataset, window=16, feature_maps=4,
                                           epochs=2, max_windows=60)
        assert len(results) == 2
        labels = [r.label for r in results]
        assert any("variational" in label for label in labels)
        assert any("deterministic" in label for label in labels)
        for result in results:
            assert 0.0 <= result.auc_roc <= 1.0
            assert result.parameters > 0
            assert set(result.as_row()) == {"configuration", "auc_roc", "parameters",
                                            "train_time_s"}
