"""Golden-score fixture: seeded stream + frozen per-detector scores.

This module is the single source of truth for the golden regression suite
(``tests/test_serialize/test_golden_scores.py``): it defines the seeded
synthetic stream, the exact (tiny) configuration of every detector in the
study, and the scoring protocol.  The committed fixture
``tests/golden/golden_scores.npz`` holds the expected outputs; the test
retrains the detectors from this module and fails on any unintended numeric
drift in data generation, training, scoring or calibration.

Regenerate the fixture after an *intentional* numeric change with::

    PYTHONPATH=src python tests/golden/golden_harness.py --write

and commit the refreshed ``golden_scores.npz`` together with the change that
motivated it (the diff review is the audit trail for score changes).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

from repro.baselines.ar_lstm import ARLSTMConfig, ARLSTMDetector
from repro.baselines.autoencoder import AutoencoderConfig, AutoencoderDetector
from repro.baselines.gbrf import GBRFConfig, GBRFDetector
from repro.baselines.isolation_forest import (
    IsolationForestConfig,
    IsolationForestDetector,
)
from repro.baselines.knn import KNNConfig, KNNDetector
from repro.core import TrainingConfig, VaradeConfig, VaradeDetector

FIXTURE_PATH = Path(__file__).parent / "golden_scores.npz"

N_CHANNELS = 5
TRAIN_SAMPLES = 360
TEST_SAMPLES = 240
STREAM_SEED = 2026

#: detectors covered by the golden suite, in fixed order.
DETECTOR_NAMES = ("VARADE", "AR-LSTM", "GBRF", "AE", "kNN", "Isolation Forest")


def generate_stream() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic (train, test, test_labels) streams.

    The train half is clean quasi-periodic data; the test half carries three
    labelled additive bursts.  Everything is a pure function of
    ``STREAM_SEED`` (numpy guarantees Generator bit-stream stability), and
    the generated arrays are additionally frozen inside the fixture so a
    drifting generator is caught independently of drifting detectors.

    Deliberately self-contained: this must NOT delegate to
    :func:`repro.data.build_synthetic_anomaly_dataset` or any other library
    helper, because the golden fixture has to stay put when the library's
    generators evolve.
    """
    rng = np.random.default_rng(STREAM_SEED)
    total = TRAIN_SAMPLES + TEST_SAMPLES
    t = np.arange(total) / 40.0
    channels = []
    for channel in range(N_CHANNELS):
        base = np.sin(2.0 * np.pi * (0.5 + 0.11 * channel) * t + 0.8 * channel)
        base += 0.3 * np.cos(2.0 * np.pi * (1.3 + 0.05 * channel) * t)
        base += 0.04 * rng.normal(size=total)
        channels.append(base)
    stream = np.stack(channels, axis=1)

    train = stream[:TRAIN_SAMPLES]
    test = stream[TRAIN_SAMPLES:].copy()
    labels = np.zeros(TEST_SAMPLES, dtype=np.int64)
    for start in (60, 130, 200):
        stop = start + 10
        test[start:stop, :3] += np.array([2.0, -2.0, 1.5])
        labels[start:stop] = 1
    return train, test, labels


def build_detectors() -> Dict[str, object]:
    """Fresh, unfitted detectors in the exact golden configuration."""
    return {
        "VARADE": VaradeDetector(
            VaradeConfig(n_channels=N_CHANNELS, window=16, base_feature_maps=8),
            TrainingConfig(learning_rate=3e-3, epochs=3, mean_warmup_epochs=1,
                           variance_finetune_epochs=2, batch_size=32,
                           max_train_windows=200, seed=0),
        ),
        "AR-LSTM": ARLSTMDetector(
            ARLSTMConfig(n_channels=N_CHANNELS, window=8, hidden_size=8,
                         num_layers=1, fc_size=16, epochs=1,
                         max_train_windows=100, seed=0),
        ),
        "GBRF": GBRFDetector(
            GBRFConfig(n_channels=N_CHANNELS, window=16, n_estimators=10,
                       max_depth=2, context_samples=3, max_train_windows=150,
                       seed=0),
        ),
        "AE": AutoencoderDetector(
            AutoencoderConfig(n_channels=N_CHANNELS, window=16,
                              base_feature_maps=8, n_blocks=2,
                              latent_feature_maps=12, epochs=1,
                              max_train_windows=120, seed=0),
        ),
        "kNN": KNNDetector(
            KNNConfig(n_channels=N_CHANNELS, n_neighbors=5,
                      max_reference_points=300, seed=0),
        ),
        "Isolation Forest": IsolationForestDetector(
            IsolationForestConfig(n_channels=N_CHANNELS, n_estimators=25,
                                  max_samples=64, seed=0),
        ),
    }


def fit_and_calibrate(train: np.ndarray) -> Dict[str, object]:
    """Train every golden detector and attach its quantile threshold."""
    detectors = build_detectors()
    for detector in detectors.values():
        detector.fit(train)
        detector.calibrate_threshold(train, quantile=0.98)
    return detectors


def score_all(detectors: Dict[str, object], test: np.ndarray) -> Dict[str, np.ndarray]:
    """Full-stream scores per detector (NaN prefix included)."""
    return {name: detector.score_stream(test).scores
            for name, detector in detectors.items()}


def build_fixture_payload() -> Dict[str, np.ndarray]:
    """Everything the fixture freezes, keyed the way the npz stores it."""
    train, test, labels = generate_stream()
    detectors = fit_and_calibrate(train)
    payload: Dict[str, np.ndarray] = {
        "stream.train": train,
        "stream.test": test,
        "stream.labels": labels,
    }
    for name, scores in score_all(detectors, test).items():
        payload[f"scores.{name}"] = scores
        payload[f"threshold.{name}"] = np.asarray([detectors[name].threshold.threshold])
    return payload


def load_fixture() -> Dict[str, np.ndarray]:
    with np.load(FIXTURE_PATH, allow_pickle=False) as data:
        return {name: data[name] for name in data.files}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="regenerate and overwrite the committed fixture")
    args = parser.parse_args()
    payload = build_fixture_payload()
    if args.write:
        np.savez(FIXTURE_PATH, **payload)
        print(f"wrote {FIXTURE_PATH} with {len(payload)} arrays")
    else:
        frozen = load_fixture()
        for key, value in payload.items():
            match = np.allclose(frozen[key], value, rtol=1e-6, atol=1e-9, equal_nan=True)
            print(f"{key:30s} {'OK' if match else 'DRIFT'}")


if __name__ == "__main__":
    main()
