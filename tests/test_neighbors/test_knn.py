"""Tests for the brute-force kNN anomaly scorer."""

import numpy as np
import pytest

from repro.neighbors import KNNAnomalyScorer


def brute_force_distances(queries, reference, k):
    distances = np.sqrt(((queries[:, None, :] - reference[None, :, :]) ** 2).sum(axis=2))
    return np.sort(distances, axis=1)[:, :k]


class TestKNNAnomalyScorer:
    def test_neighbor_distances_match_brute_force(self):
        rng = np.random.default_rng(0)
        reference = rng.normal(size=(50, 4))
        queries = rng.normal(size=(7, 4))
        scorer = KNNAnomalyScorer(n_neighbors=3).fit(reference)
        np.testing.assert_allclose(scorer.kneighbors(queries),
                                   brute_force_distances(queries, reference, 3), atol=1e-9)

    def test_max_aggregation_is_kth_distance(self):
        rng = np.random.default_rng(1)
        reference = rng.normal(size=(40, 3))
        queries = rng.normal(size=(5, 3))
        scorer = KNNAnomalyScorer(n_neighbors=4, aggregation="max").fit(reference)
        expected = brute_force_distances(queries, reference, 4)[:, -1]
        np.testing.assert_allclose(scorer.score_samples(queries), expected, atol=1e-9)

    def test_mean_aggregation(self):
        rng = np.random.default_rng(2)
        reference = rng.normal(size=(40, 3))
        queries = rng.normal(size=(5, 3))
        scorer = KNNAnomalyScorer(n_neighbors=4, aggregation="mean").fit(reference)
        expected = brute_force_distances(queries, reference, 4).mean(axis=1)
        np.testing.assert_allclose(scorer.score_samples(queries), expected, atol=1e-9)

    def test_outlier_scores_higher(self):
        rng = np.random.default_rng(3)
        reference = rng.normal(size=(200, 2))
        scorer = KNNAnomalyScorer(n_neighbors=5).fit(reference)
        normal_score = scorer.score_samples(np.zeros((1, 2)))[0]
        outlier_score = scorer.score_samples(np.array([[20.0, 20.0]]))[0]
        assert outlier_score > 5 * normal_score

    def test_training_point_has_zero_nearest_distance(self):
        reference = np.arange(20.0).reshape(10, 2)
        scorer = KNNAnomalyScorer(n_neighbors=2).fit(reference)
        distances = scorer.kneighbors(reference[[3]])
        assert distances[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_reference_subsampling(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(500, 3))
        scorer = KNNAnomalyScorer(n_neighbors=3, max_reference_points=100, rng=rng).fit(data)
        assert scorer.reference_.shape == (100, 3)

    def test_single_query_vector(self):
        scorer = KNNAnomalyScorer(n_neighbors=2).fit(np.random.default_rng(0).normal(size=(30, 4)))
        assert scorer.score_samples(np.zeros(4)).shape == (1,)

    def test_errors(self):
        with pytest.raises(ValueError):
            KNNAnomalyScorer(n_neighbors=0)
        with pytest.raises(ValueError):
            KNNAnomalyScorer(aggregation="median")
        scorer = KNNAnomalyScorer(n_neighbors=5)
        with pytest.raises(RuntimeError):
            scorer.score_samples(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            scorer.fit(np.zeros((3, 2)))  # fewer points than neighbours
        scorer.fit(np.random.default_rng(0).normal(size=(20, 2)))
        with pytest.raises(ValueError):
            scorer.score_samples(np.zeros((1, 5)))
