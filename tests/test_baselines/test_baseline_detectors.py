"""Tests for the five baseline detectors and the registry."""

import numpy as np
import pytest

from repro.baselines import (
    ARLSTMConfig,
    ARLSTMDetector,
    AutoencoderConfig,
    AutoencoderDetector,
    DETECTOR_NAMES,
    DetectorRegistry,
    GBRFConfig,
    GBRFDetector,
    IsolationForestConfig,
    IsolationForestDetector,
    KNNConfig,
    KNNDetector,
)
from repro.eval import roc_auc_score


def synthetic_stream(n_samples=360, n_channels=4, seed=0, anomaly=False):
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / 40.0
    data = np.stack([
        np.sin(2 * np.pi * (0.3 + 0.15 * c) * t + 0.5 * c) + rng.normal(0, 0.05, n_samples)
        for c in range(n_channels)
    ], axis=1)
    labels = np.zeros(n_samples, dtype=np.int64)
    if anomaly:
        start, stop = n_samples // 2, n_samples // 2 + 25
        data[start:stop] += rng.normal(0, 2.0, size=(stop - start, n_channels))
        labels[start:stop] = 1
    return data, labels


TRAIN, _ = synthetic_stream(seed=1)
TEST, LABELS = synthetic_stream(seed=2, anomaly=True)


def check_detector(detector, min_auc=0.6):
    """Common contract: fit, score, alignment, anomaly separation, cost."""
    detector.fit(TRAIN)
    result = detector.score_stream(TEST)
    assert result.scores.shape[0] == TEST.shape[0]
    scores, labels = result.aligned(LABELS)
    assert np.isfinite(scores).all()
    auc = roc_auc_score(scores, labels)
    assert auc > min_auc, f"{detector.name}: AUC {auc:.3f} too low"
    cost = detector.inference_cost()
    assert cost.flops > 0 and cost.parameter_bytes > 0
    return result


class TestARLSTM:
    def test_end_to_end(self):
        config = ARLSTMConfig(n_channels=4, window=8, hidden_size=12, num_layers=1,
                              fc_size=16, epochs=3, max_train_windows=150, seed=0)
        check_detector(ARLSTMDetector(config), min_auc=0.7)

    def test_predict_next_shape(self):
        config = ARLSTMConfig(n_channels=4, window=8, hidden_size=8, num_layers=1,
                              epochs=1, max_train_windows=60)
        detector = ARLSTMDetector(config).fit(TRAIN)
        assert detector.predict_next(TEST[:8]).shape == (1, 4)

    def test_paper_configuration(self):
        config = ARLSTMConfig.paper(86)
        assert config.num_layers == 5 and config.hidden_size == 256
        detector = ARLSTMDetector.paper_configuration(86)
        assert detector.inference_cost().gpu_fraction > 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ARLSTMConfig(n_channels=0)
        with pytest.raises(ValueError):
            ARLSTMConfig(n_channels=4, window=1)
        with pytest.raises(ValueError):
            ARLSTMConfig(n_channels=4, num_layers=0)

    def test_fit_validates_channels(self):
        detector = ARLSTMDetector(ARLSTMConfig(n_channels=4, window=8, epochs=1))
        with pytest.raises(ValueError):
            detector.fit(np.zeros((50, 3)))


class TestAutoencoder:
    def test_end_to_end(self):
        config = AutoencoderConfig(n_channels=4, window=16, base_feature_maps=8,
                                   latent_feature_maps=8, n_blocks=4, epochs=4,
                                   max_train_windows=200, seed=0)
        check_detector(AutoencoderDetector(config), min_auc=0.7)

    def test_reconstruction_shape(self):
        config = AutoencoderConfig(n_channels=4, window=16, base_feature_maps=4,
                                   latent_feature_maps=4, n_blocks=4, epochs=1,
                                   max_train_windows=50)
        detector = AutoencoderDetector(config).fit(TRAIN)
        reconstruction = detector.reconstruct(TEST[:16])
        assert reconstruction.shape == (1, 16, 4)

    def test_window_must_match_downsampling(self):
        with pytest.raises(ValueError):
            AutoencoderConfig(n_channels=4, window=20, n_blocks=6)
        with pytest.raises(ValueError):
            AutoencoderConfig(n_channels=4, window=16, n_blocks=3)

    def test_paper_configuration_has_six_blocks(self):
        assert AutoencoderConfig.paper(86).n_blocks == 6


class TestGBRF:
    def test_end_to_end(self):
        config = GBRFConfig(n_channels=4, window=8, n_estimators=10, context_samples=3,
                            max_train_windows=150, seed=0)
        check_detector(GBRFDetector(config), min_auc=0.7)

    def test_tap_indices_include_most_recent(self):
        config = GBRFConfig(n_channels=4, window=8, context_samples=3)
        detector = GBRFDetector(config)
        assert detector._tap_indices[-1] == 7

    def test_paper_configuration(self):
        assert GBRFConfig.paper(86).n_estimators == 30

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GBRFConfig(n_channels=4, context_samples=0)
        with pytest.raises(ValueError):
            GBRFConfig(n_channels=4, n_estimators=0)


class TestKNNDetector:
    def test_end_to_end(self):
        config = KNNConfig(n_channels=4, n_neighbors=5, max_reference_points=300, seed=0)
        check_detector(KNNDetector(config), min_auc=0.8)

    def test_paper_configuration(self):
        config = KNNConfig.paper(86)
        assert config.n_neighbors == 5 and config.aggregation == "max"
        cost = KNNDetector(config).inference_cost()
        assert cost.gpu_fraction == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            KNNConfig(n_channels=4, n_neighbors=0)
        with pytest.raises(ValueError):
            KNNConfig(n_channels=4, n_neighbors=10, max_reference_points=5)


class TestIsolationForestDetector:
    def test_end_to_end(self):
        config = IsolationForestConfig(n_channels=4, n_estimators=40, seed=0)
        check_detector(IsolationForestDetector(config), min_auc=0.65)

    def test_paper_configuration(self):
        config = IsolationForestConfig.paper(86)
        assert config.n_estimators == 100 and config.contamination == pytest.approx(0.1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IsolationForestConfig(n_channels=0)


class TestRegistry:
    def test_builds_all_six_detectors(self):
        registry = DetectorRegistry(n_channels=4, window=16, neural_epochs=1,
                                    max_train_windows=50, varade_epochs=1)
        detectors = registry.build_all()
        assert set(detectors) == set(DETECTOR_NAMES)

    def test_include_filter(self):
        registry = DetectorRegistry(n_channels=4, window=16)
        specs = registry.specs(["VARADE", "kNN"])
        assert [spec.name for spec in specs] == ["VARADE", "kNN"]

    def test_unknown_detector_raises(self):
        registry = DetectorRegistry(n_channels=4, window=16)
        with pytest.raises(KeyError):
            registry.specs(["nonexistent"])

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorRegistry(n_channels=0)
        with pytest.raises(ValueError):
            DetectorRegistry(n_channels=4, window=1)

    def test_detector_names_constant_is_complete(self):
        assert set(DETECTOR_NAMES) == {"AR-LSTM", "GBRF", "AE", "kNN",
                                       "Isolation Forest", "VARADE"}
