"""The ``python -m repro`` CLI: every subcommand, in process, on the tiny
built-in --fast spec (the same path the CI smoke job exercises)."""

import json

import pytest

from repro.cli import fast_spec, main
from repro.pipeline import DeploymentSpec
from repro.serialize import artifact_fingerprint


@pytest.fixture(scope="module")
def trained_workdir(tmp_path_factory):
    """A workdir that has only seen `train` (no later stages mutate it)."""
    workdir = tmp_path_factory.mktemp("cli-train")
    assert main(["train", "--fast", "--workdir", str(workdir)]) == 0
    return workdir


@pytest.fixture(scope="module")
def quantized_workdir(tmp_path_factory):
    """A separate workdir taken through train + quantize."""
    workdir = tmp_path_factory.mktemp("cli-quantized")
    assert main(["train", "--fast", "--workdir", str(workdir)]) == 0
    assert main(["quantize", "--workdir", str(workdir)]) == 0
    return workdir


@pytest.fixture(scope="module")
def packaged_workdir(quantized_workdir):
    assert main(["package", "--workdir", str(quantized_workdir)]) == 0
    return quantized_workdir


def test_fast_spec_is_valid_and_round_trips():
    spec = fast_spec()
    assert DeploymentSpec.from_json(spec.to_json()) == spec
    assert spec.data is not None


def test_train_writes_spec_and_float_artifact(trained_workdir, capsys):
    assert (trained_workdir / "spec.json").is_file()
    assert (trained_workdir / "detector" / "manifest.json").is_file()
    spec = DeploymentSpec.load(trained_workdir / "spec.json")
    assert spec == fast_spec()
    manifest = json.loads(
        (trained_workdir / "detector" / "manifest.json").read_text())
    assert manifest["deployment_spec"] == spec.to_dict()
    assert manifest["threshold"] is not None


def test_quantize_writes_int8_artifact(quantized_workdir):
    manifest = json.loads(
        (quantized_workdir / "detector-int8" / "manifest.json").read_text())
    assert manifest["detector_class"] == "QuantizedVaradeDetector"
    # The refreshed spec (now with a quantization entry) was re-saved.
    spec = DeploymentSpec.load(quantized_workdir / "spec.json")
    assert spec.quantization is not None


def test_package_prefers_int8_and_records_fingerprint(packaged_workdir):
    package = packaged_workdir / "package"
    manifest = json.loads((package / "manifest.json").read_text())
    assert manifest["detector_class"] == "QuantizedVaradeDetector"
    recorded = (packaged_workdir / "package.fingerprint").read_text().strip()
    assert recorded == artifact_fingerprint(package)


def test_stream_replays_the_spec_dataset(packaged_workdir, capsys):
    assert main(["stream", "--workdir", str(packaged_workdir),
                 "--max-samples", "150"]) == 0
    out = capsys.readouterr().out
    assert "scored 150" in out
    assert "adaptation events" in out


def test_bench_reports_auc_and_edge_estimates(packaged_workdir, capsys):
    assert main(["bench", "--workdir", str(packaged_workdir)]) == 0
    out = capsys.readouterr().out
    assert "AUC-ROC" in out
    assert "Jetson Xavier NX" in out and "Jetson AGX Orin" in out


def test_train_is_deterministic_across_workdirs(tmp_path, trained_workdir):
    """The CI determinism gate, in process: same spec -> same fingerprint."""
    other = tmp_path / "other"
    assert main(["train", "--fast", "--workdir", str(other)]) == 0
    assert artifact_fingerprint(other / "detector") == \
        artifact_fingerprint(trained_workdir / "detector")


def test_train_with_explicit_spec_file_and_seed_override(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    fast_spec().save(spec_path)
    workdir = tmp_path / "run"
    assert main(["train", "--spec", str(spec_path), "--seed", "3",
                 "--workdir", str(workdir)]) == 0
    assert DeploymentSpec.load(workdir / "spec.json").seed == 3


def test_train_without_spec_or_fast_exits_with_usage_error(tmp_path, capsys):
    assert main(["train", "--workdir", str(tmp_path / "x")]) == 2
    assert "error:" in capsys.readouterr().err


def test_train_rejects_fast_and_spec_together(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    fast_spec().save(spec_path)
    with pytest.raises(SystemExit):
        main(["train", "--fast", "--spec", str(spec_path),
              "--workdir", str(tmp_path / "x")])
    assert "not allowed with" in capsys.readouterr().err


def test_stage_commands_without_train_fail_cleanly(tmp_path, capsys):
    assert main(["quantize", "--workdir", str(tmp_path / "empty")]) == 2
    assert "repro train" in capsys.readouterr().err


def test_stream_warns_when_spec_json_diverges_from_artifact(tmp_path, capsys):
    """Replay stages run the shipped spec and flag an edited spec.json."""
    import dataclasses

    workdir = tmp_path / "run"
    assert main(["train", "--fast", "--workdir", str(workdir)]) == 0
    edited = dataclasses.replace(fast_spec(), seed=99)
    edited.save(workdir / "spec.json")
    assert main(["stream", "--workdir", str(workdir),
                 "--max-samples", "60"]) == 0
    captured = capsys.readouterr()
    assert "differs from the spec embedded" in captured.err
    assert "scored 60" in captured.out


def test_package_refuses_float_weights_under_int8_spec(tmp_path, capsys):
    """A spec declaring quantization cannot package float-only weights."""
    import dataclasses

    from repro.pipeline import QuantizationSpec

    spec_path = tmp_path / "spec.json"
    dataclasses.replace(fast_spec(),
                        quantization=QuantizationSpec()).save(spec_path)
    workdir = tmp_path / "run"
    assert main(["train", "--spec", str(spec_path),
                 "--workdir", str(workdir)]) == 0
    assert main(["package", "--workdir", str(workdir)]) == 2
    assert "repro quantize" in capsys.readouterr().err
    # After the quantize stage the same package call succeeds.
    assert main(["quantize", "--workdir", str(workdir)]) == 0
    assert main(["package", "--workdir", str(workdir)]) == 0


def test_quantize_rejects_training_relevant_spec_edits(tmp_path, capsys):
    """Editing seed/detector in spec.json after train must force a retrain."""
    import dataclasses

    workdir = tmp_path / "run"
    assert main(["train", "--fast", "--workdir", str(workdir)]) == 0
    dataclasses.replace(fast_spec(), seed=42).save(workdir / "spec.json")
    assert main(["quantize", "--workdir", str(workdir)]) == 2
    assert "re-run `repro train`" in capsys.readouterr().err


def test_retrain_invalidates_stale_derived_artifacts(tmp_path):
    """A new `train` drops int8/package artifacts built from old weights."""
    workdir = tmp_path / "run"
    assert main(["train", "--fast", "--workdir", str(workdir)]) == 0
    assert main(["quantize", "--workdir", str(workdir)]) == 0
    assert main(["package", "--workdir", str(workdir)]) == 0
    assert (workdir / "detector-int8").is_dir()
    assert (workdir / "package").is_dir()
    assert main(["train", "--fast", "--seed", "1",
                 "--workdir", str(workdir)]) == 0
    assert not (workdir / "detector-int8").exists()
    assert not (workdir / "package").exists()
    assert not (workdir / "package.fingerprint").exists()


def test_quantize_invalidates_stale_package(tmp_path):
    """`quantize` after `package` drops the now-stale float package."""
    workdir = tmp_path / "run"
    assert main(["train", "--fast", "--workdir", str(workdir)]) == 0
    assert main(["package", "--workdir", str(workdir)]) == 0
    assert (workdir / "package").is_dir()
    assert main(["quantize", "--workdir", str(workdir)]) == 0
    assert not (workdir / "package").exists()
    assert not (workdir / "package.fingerprint").exists()


def test_typoed_hyperparameter_reports_spec_error(tmp_path, capsys):
    """A typo'd detector param exits 2 with `error: ...`, not a traceback."""
    spec_path = tmp_path / "spec.json"
    spec = fast_spec().to_dict()
    spec["detector"]["params"]["windwo"] = 16
    spec_path.write_text(json.dumps(spec))
    code = main(["train", "--spec", str(spec_path),
                 "--workdir", str(tmp_path / "run")])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "windwo" in err


def test_broken_spec_file_reports_spec_error(tmp_path, capsys):
    workdir = tmp_path / "broken"
    workdir.mkdir()
    (workdir / "spec.json").write_text('{"detector": {"kind": "varade"}, "oops": 1}')
    spec_path = workdir / "spec.json"
    code = main(["train", "--spec", str(spec_path),
                 "--workdir", str(workdir)])
    assert code == 2
    assert "oops" in capsys.readouterr().err
