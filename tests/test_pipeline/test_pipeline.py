"""The staged Pipeline facade: parity with the legacy APIs, stage guards,
package/load round-trips and runtime deployment."""

import dataclasses

import numpy as np
import pytest

from repro.core import ThresholdCalibrator, TrainingConfig, VaradeConfig, VaradeDetector
from repro.data import StreamReader, build_synthetic_anomaly_dataset
from repro.edge import MultiStreamRuntime, StreamingRuntime
from repro.pipeline import (AdaptationSpec, CalibrationSpec, DeploymentSpec,
                            DetectorSpec, Pipeline, PipelineStageError,
                            QuantizationSpec, RuntimeSpec, SpecError)

VARADE_PARAMS = {"n_channels": 4, "window": 8, "base_feature_maps": 2}
VARADE_TRAINING = {"epochs": 2, "mean_warmup_epochs": 1,
                   "variance_finetune_epochs": 1, "max_train_windows": 80,
                   "learning_rate": 3e-3}


def _varade_spec(**kwargs) -> DeploymentSpec:
    return DeploymentSpec(
        detector=DetectorSpec(kind="varade", params=dict(VARADE_PARAMS),
                              training=dict(VARADE_TRAINING)),
        **kwargs,
    )


@pytest.fixture(scope="module")
def dataset():
    return build_synthetic_anomaly_dataset(n_channels=4, train_samples=300,
                                           test_samples=300, seed=5)


# --------------------------------------------------------------------------- #
# Parity with the legacy hand-wired workflow
# --------------------------------------------------------------------------- #
def test_pipeline_matches_legacy_workflow_bit_identically(dataset):
    """fit + calibrate via Pipeline == the five-call legacy wiring."""
    legacy = VaradeDetector(
        VaradeConfig(**VARADE_PARAMS),
        TrainingConfig(seed=0, **VARADE_TRAINING),
    ).fit(dataset.train)
    legacy_scores = legacy.score_stream(dataset.test)
    legacy_threshold = ThresholdCalibrator(method="quantile", quantile=0.99) \
        .calibrate(legacy.score_stream(dataset.train).valid_scores())

    pipeline = Pipeline.from_spec(_varade_spec()).fit(dataset.train).calibrate()
    pipeline_scores = pipeline.detector.score_stream(dataset.test)

    assert np.array_equal(legacy_scores.scores, pipeline_scores.scores,
                          equal_nan=True)
    assert pipeline.detector.threshold.threshold == legacy_threshold.threshold
    assert pipeline.detector.threshold.method == legacy_threshold.method


def test_one_shot_run_reports_the_same_scores(dataset):
    report = Pipeline.from_spec(_varade_spec()).run(dataset)
    manual = Pipeline.from_spec(_varade_spec()).fit(dataset.train).calibrate()
    manual_scores = manual.detector.score_stream(dataset.test)
    assert np.array_equal(report.float_report.score_result.scores,
                          manual_scores.scores, equal_nan=True)
    assert report.float_report.auc_roc is not None
    assert 0.0 <= report.float_report.auc_roc <= 1.0
    assert report.threshold.threshold == manual.detector.threshold.threshold
    assert report.serving_report is report.float_report


def test_run_with_quantization_serves_the_int8_detector(dataset):
    spec = _varade_spec(quantization=QuantizationSpec())
    report = Pipeline.from_spec(spec).run(dataset)
    assert report.quantized_report is not None
    assert report.serving_report is report.quantized_report
    assert report.quantized_report.name == "VARADE-int8"
    # Quantized threshold is inherited from the float calibration.
    assert report.quantized_report.auc_roc is not None


def test_run_builds_dataset_from_spec_data_entry():
    from repro.pipeline import DataSpec

    spec = _varade_spec(data=DataSpec(source="synthetic",
                                      params={"n_channels": 4,
                                              "train_samples": 200,
                                              "test_samples": 200}))
    report = Pipeline.from_spec(spec).run()
    assert report.float_report.samples_scored > 0


# --------------------------------------------------------------------------- #
# Stage guards
# --------------------------------------------------------------------------- #
def test_stages_guard_their_prerequisites(dataset):
    pipeline = Pipeline.from_spec(_varade_spec(quantization=QuantizationSpec()))
    with pytest.raises(PipelineStageError, match="fit"):
        _ = pipeline.detector
    with pytest.raises(PipelineStageError, match="fit"):
        pipeline.calibrate()
    with pytest.raises(PipelineStageError, match="quantized"):
        _ = pipeline.quantized
    pipeline.fit(dataset.train)
    with pytest.raises(PipelineStageError, match="quantized"):
        _ = pipeline.quantized


def test_quantize_requires_spec_entry(dataset):
    pipeline = Pipeline.from_spec(_varade_spec()).fit(dataset.train)
    with pytest.raises(PipelineStageError, match="quantization"):
        pipeline.quantize()


def test_run_without_dataset_or_data_entry_raises():
    with pytest.raises(PipelineStageError, match="data"):
        Pipeline.from_spec(_varade_spec()).run()


def test_unknown_kind_fails_at_construction():
    """At the spec boundary an unknown kind is a SpecError (the registry's
    own lookups keep raising UnknownDetectorError)."""
    spec = DeploymentSpec(detector=DetectorSpec(kind="nonexistent"))
    with pytest.raises(SpecError, match="nonexistent"):
        Pipeline.from_spec(spec)


def test_pipeline_rejects_non_spec():
    with pytest.raises(SpecError, match="DeploymentSpec"):
        Pipeline({"detector": {"kind": "varade"}})


# --------------------------------------------------------------------------- #
# Package / load round-trip
# --------------------------------------------------------------------------- #
def test_package_embeds_spec_and_load_restores_it(tmp_path, dataset):
    spec = _varade_spec(calibration=CalibrationSpec(quantile=0.97), seed=9)
    pipeline = Pipeline.from_spec(spec).fit(dataset.train).calibrate()
    artifact = pipeline.package(tmp_path / "artifact")

    restored = Pipeline.load(artifact)
    assert restored.spec == spec
    original_scores = pipeline.detector.score_stream(dataset.test)
    restored_scores = restored.detector.score_stream(dataset.test)
    assert np.array_equal(original_scores.scores, restored_scores.scores,
                          equal_nan=True)
    assert restored.detector.threshold.threshold == \
        pipeline.detector.threshold.threshold


def test_package_serves_quantized_artifact_and_load_slots_it(tmp_path, dataset):
    spec = _varade_spec(quantization=QuantizationSpec())
    pipeline = Pipeline.from_spec(spec) \
        .fit(dataset.train).calibrate().quantize()
    artifact = pipeline.package(tmp_path / "int8")
    restored = Pipeline.load(artifact)
    assert restored.serving_detector.name == "VARADE-int8"
    assert restored.spec.quantization is not None
    with pytest.raises(PipelineStageError, match="float"):
        _ = restored.detector   # only the int8 artifact was packaged


def test_load_legacy_artifact_without_spec(tmp_path, dataset):
    """Artifacts saved by bare save_detector still load into a pipeline."""
    from repro.serialize import save_detector

    detector = Pipeline.from_spec(_varade_spec()).fit(dataset.train).detector
    save_detector(detector, tmp_path / "legacy")
    restored = Pipeline.load(tmp_path / "legacy")
    assert restored.spec.detector.kind == "varade"
    assert restored.detector.name == "VARADE"


# --------------------------------------------------------------------------- #
# Deployment
# --------------------------------------------------------------------------- #
def test_deploy_stream_matches_raw_runtime(dataset):
    pipeline = Pipeline.from_spec(
        _varade_spec(runtime=RuntimeSpec(sample_rate_hz=50.0))
    ).fit(dataset.train).calibrate()

    result = pipeline.deploy_stream(dataset.test, labels=dataset.test_labels)
    raw = StreamingRuntime(pipeline.detector).run(
        StreamReader(dataset.test, labels=dataset.test_labels, sample_rate=50.0)
    )
    assert np.array_equal(result.scores, raw.scores, equal_nan=True)
    assert np.array_equal(result.alarms, raw.alarms)
    assert result.samples_scored == raw.samples_scored


def test_deploy_stream_honours_max_samples(dataset):
    spec = _varade_spec(runtime=RuntimeSpec(max_samples=20))
    pipeline = Pipeline.from_spec(spec).fit(dataset.train).calibrate()
    assert pipeline.deploy_stream(dataset.test).samples_scored == 20
    # Explicit argument overrides the spec.
    assert pipeline.deploy_stream(dataset.test,
                                  max_samples=10).samples_scored == 10


def test_deploy_fleet_matches_raw_fleet_runtime(dataset):
    pipeline = Pipeline.from_spec(_varade_spec()).fit(dataset.train).calibrate()
    streams = [dataset.test[:150], dataset.test[50:200]]
    fleet = pipeline.deploy_fleet(streams)
    raw = MultiStreamRuntime(pipeline.detector).run(
        [StreamReader(stream, sample_rate=50.0) for stream in streams]
    )
    for ours, reference in zip(fleet, raw):
        assert np.array_equal(ours.scores, reference.scores, equal_nan=True)
    with pytest.raises(ValueError, match="one to one"):
        pipeline.deploy_fleet(streams, labels=[None])


def test_deploy_service_from_spec_matches_deploy_stream(dataset):
    """deploy_service wires the serving detector + spec.service settings and
    scores bit-identically to the sequential deploy_stream path."""
    import asyncio

    from repro.pipeline import ServiceSpec

    spec = _varade_spec(service=ServiceSpec(max_batch=8, max_delay_ms=2.0,
                                            backpressure="drop_oldest"))
    pipeline = Pipeline.from_spec(spec).fit(dataset.train).calibrate()
    service = pipeline.deploy_service(record_sessions=True)
    assert service.detector is pipeline.serving_detector
    assert service.config.max_batch == 8
    assert service.config.backpressure == "drop_oldest"
    stream = dataset.test[:120]

    async def main():
        async with service:
            for row in stream:
                await service.push("s0", row)
            session = service.session("s0")
            await service.close_session("s0")
            return session

    session = asyncio.run(main())
    reference = pipeline.deploy_stream(stream)
    np.testing.assert_allclose(session.result().scores, reference.scores,
                               rtol=0.0, atol=0.0, equal_nan=True)
    np.testing.assert_array_equal(session.result().alarms, reference.alarms)


def test_deploy_service_without_service_spec_uses_defaults(dataset):
    pipeline = Pipeline.from_spec(_varade_spec()).fit(dataset.train).calibrate()
    service = pipeline.deploy_service()
    assert service.config.max_batch == 32
    assert service.config.backpressure == "block"
    assert service.adaptation is None


def test_deploy_stream_wires_adaptation_from_spec(dataset):
    spec = _varade_spec(adaptation=AdaptationSpec(min_reservoir=50,
                                                  confirm_samples=16))
    pipeline = Pipeline.from_spec(spec).fit(dataset.train).calibrate()
    result = pipeline.deploy_stream(dataset.test)
    # The adaptive path reports a threshold trace (frozen runs have one only
    # when a threshold exists -- it does here -- but adaptation_events is the
    # telling field: present and a list).
    assert isinstance(result.adaptation_events, list)
    assert result.threshold_trace is not None


def test_refit_clears_stale_quantized_state(dataset):
    spec = _varade_spec(quantization=QuantizationSpec())
    pipeline = Pipeline.from_spec(spec).fit(dataset.train).calibrate().quantize()
    assert pipeline._quantized is not None
    pipeline.fit(dataset.train)
    with pytest.raises(PipelineStageError):
        _ = pipeline.quantized


def test_edge_estimates_for_spec_devices(dataset):
    spec = _varade_spec(runtime=RuntimeSpec(
        devices=("Jetson Xavier NX", "Jetson AGX Orin")))
    pipeline = Pipeline.from_spec(spec).fit(dataset.train)
    estimates = pipeline.edge_estimates()
    assert set(estimates) == {"Jetson Xavier NX", "Jetson AGX Orin"}
    for metrics in estimates.values():
        assert metrics.inference_frequency_hz > 0


def test_run_pipeline_shim(dataset):
    from repro.pipeline import run_pipeline

    report = run_pipeline(_varade_spec(), dataset)
    assert report.float_report.samples_scored > 0


def test_spec_replace_keeps_pipeline_usable(dataset):
    """dataclasses.replace on a spec yields an independent, valid pipeline."""
    base = _varade_spec()
    quantizing = dataclasses.replace(base, quantization=QuantizationSpec())
    assert base.quantization is None
    pipeline = Pipeline.from_spec(quantizing).fit(dataset.train).quantize()
    assert pipeline.quantized.name == "VARADE-int8"
