"""Seed plumbing: one master seed -> bit-identical packaged artifacts.

The determinism contract of the deployment pipeline: running the same
DeploymentSpec twice -- fresh detector, fresh training run, fresh packaging
-- produces artifacts with identical content fingerprints
(:func:`repro.serialize.artifact_fingerprint` hashes the manifest minus the
wall-clock training time plus every array bit).  This is what makes a spec
file a reproducible description of a deployment rather than a hint.
"""

import numpy as np
import pytest

from repro.pipeline import (DataSpec, DeploymentSpec, DetectorSpec, Pipeline,
                            QuantizationSpec)
from repro.serialize import artifact_fingerprint

DATA = DataSpec(source="synthetic", params={"n_channels": 4,
                                            "train_samples": 200,
                                            "test_samples": 120})


def _spec(kind: str, seed: int = 0) -> DeploymentSpec:
    params = {
        "varade": {"n_channels": 4, "window": 8, "base_feature_maps": 2},
        "knn": {"n_channels": 4, "max_reference_points": 60},
        "isolation_forest": {"n_channels": 4, "n_estimators": 8,
                             "max_samples": 32},
        "gbrf": {"n_channels": 4, "window": 8, "n_estimators": 3,
                 "context_samples": 2, "max_train_windows": 60},
    }[kind]
    training = {"epochs": 1, "mean_warmup_epochs": 1,
                "variance_finetune_epochs": 1, "max_train_windows": 60} \
        if kind == "varade" else None
    return DeploymentSpec(
        detector=DetectorSpec(kind=kind, params=params, training=training),
        data=DATA,
        quantization=QuantizationSpec() if kind == "varade" else None,
        seed=seed,
    )


def _package(spec: DeploymentSpec, path) -> str:
    pipeline = Pipeline.from_spec(spec)
    report = pipeline.run()
    assert report.threshold is not None
    pipeline.package(path)
    return artifact_fingerprint(path)


@pytest.mark.parametrize("kind", ["varade", "knn", "isolation_forest", "gbrf"])
def test_same_spec_same_artifact_fingerprint(tmp_path, kind):
    """Same spec -> bit-identical packaged artifact, across detector families
    (neural + quantized, neighbour, isolation trees, boosted trees)."""
    spec = _spec(kind)
    first = _package(spec, tmp_path / "first")
    second = _package(DeploymentSpec.from_json(spec.to_json()),
                      tmp_path / "second")
    assert first == second


def test_different_seed_changes_the_artifact(tmp_path):
    base = _package(_spec("varade", seed=0), tmp_path / "seed0")
    other = _package(_spec("varade", seed=1), tmp_path / "seed1")
    assert base != other


def test_master_seed_reaches_detector_and_training_configs():
    """DeploymentSpec.seed lands in every stage's config unless pinned."""
    varade = Pipeline.from_spec(_spec("varade", seed=7)).build_detector()
    assert varade.training.seed == 7
    knn = Pipeline.from_spec(_spec("knn", seed=7)).build_detector()
    assert knn.config.seed == 7
    forest = Pipeline.from_spec(_spec("isolation_forest", seed=7)).build_detector()
    assert forest.config.seed == 7


def test_explicit_seed_in_params_wins_over_master_seed():
    spec = DeploymentSpec(
        detector=DetectorSpec(kind="knn",
                              params={"n_channels": 4, "seed": 3}),
        seed=7,
    )
    assert Pipeline.from_spec(spec).build_detector().config.seed == 3


def test_master_seed_reaches_the_data_builder():
    spec = _spec("knn", seed=11)
    dataset = spec.data.build(spec.seed)
    again = spec.data.build(spec.seed)
    assert dataset.seed == 11
    assert np.array_equal(dataset.train, again.train)
    assert np.array_equal(dataset.test, again.test)


def test_fingerprint_ignores_wall_clock_but_not_weights(tmp_path):
    """Two runs differ only in wall_time_s; the fingerprint must not see it."""
    import json

    spec = _spec("knn")
    _package(spec, tmp_path / "a")
    manifest_path = tmp_path / "a" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    before = artifact_fingerprint(tmp_path / "a")

    manifest["history"]["wall_time_s"] = 123.456
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    assert artifact_fingerprint(tmp_path / "a") == before

    manifest["window"] = 999   # any real manifest field must change the hash
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    assert artifact_fingerprint(tmp_path / "a") != before
