"""The string-keyed, decorator-based detector registry."""

import pytest

from repro.baselines.knn import KNNConfig, KNNDetector
from repro.core.config import VaradeConfig
from repro.core.detector import VaradeDetector
from repro.core.quantized import QuantizedVaradeDetector
from repro.pipeline import DETECTOR_KINDS, DETECTORS, DetectorRegistry
from repro.serialize import UnknownDetectorError


def test_all_seven_kinds_registered():
    assert set(DETECTORS.kinds()) == set(DETECTOR_KINDS) | {"varade_int8"}
    for kind in DETECTOR_KINDS:
        assert kind in DETECTORS


def test_display_names_cover_the_study():
    names = {DETECTORS.get(kind).display_name for kind in DETECTOR_KINDS}
    assert names == {"VARADE", "AR-LSTM", "AE", "GBRF", "kNN",
                     "Isolation Forest"}


def test_build_constructs_the_registered_class():
    detector = DETECTORS.build("knn", {"n_channels": 3})
    assert isinstance(detector, KNNDetector)
    assert isinstance(detector.config, KNNConfig)

    varade = DETECTORS.build("varade", {"n_channels": 3, "window": 8,
                                        "base_feature_maps": 2},
                             {"epochs": 1})
    assert isinstance(varade, VaradeDetector)
    assert varade.training.epochs == 1


def test_unknown_kind_raises_descriptive_error():
    with pytest.raises(UnknownDetectorError, match="no_such_kind"):
        DETECTORS.get("no_such_kind")
    with pytest.raises(UnknownDetectorError, match="registered kinds"):
        DETECTORS.build("no_such_kind", {})


def test_training_config_rejected_for_kinds_without_one():
    with pytest.raises(ValueError, match="training config"):
        DETECTORS.build("knn", {"n_channels": 3}, {"epochs": 5})


def test_int8_kind_is_inference_only():
    entry = DETECTORS.get("varade_int8")
    assert not entry.trainable
    with pytest.raises(UnknownDetectorError, match="inference-only"):
        DETECTORS.build("varade_int8", {})


def test_kind_for_reverse_lookup():
    assert DETECTORS.kind_for(DETECTORS.build("knn", {"n_channels": 2})) == "knn"
    varade = VaradeDetector(VaradeConfig(n_channels=2, window=8,
                                         base_feature_maps=2))
    assert DETECTORS.kind_for(varade) == "varade"
    assert QuantizedVaradeDetector is DETECTORS.get("varade_int8").detector_cls

    class NotRegistered:
        pass

    with pytest.raises(UnknownDetectorError, match="NotRegistered"):
        DETECTORS.kind_for(NotRegistered())


def test_kind_for_display_name():
    assert DETECTORS.kind_for_display_name("VARADE") == "varade"
    assert DETECTORS.kind_for_display_name("Isolation Forest") == "isolation_forest"
    with pytest.raises(UnknownDetectorError, match="Foo"):
        DETECTORS.kind_for_display_name("Foo")


def test_duplicate_registration_rejected():
    registry = DetectorRegistry()

    @registry.register("custom", config_cls=KNNConfig, detector_cls=KNNDetector)
    def _build(params, training):
        return KNNDetector(KNNConfig(**params))

    with pytest.raises(ValueError, match="already registered"):
        registry.register("custom", config_cls=KNNConfig,
                          detector_cls=KNNDetector)(_build)


@pytest.mark.parametrize("bad_kind", ["", "Mixed-Case", "has space", "UPPER"])
def test_malformed_kind_keys_rejected(bad_kind):
    registry = DetectorRegistry()
    with pytest.raises(ValueError, match="lower_snake_case"):
        registry.register(bad_kind, config_cls=KNNConfig,
                          detector_cls=KNNDetector)
