"""DeploymentSpec JSON round-trips: every detector kind, strict parsing."""

import pytest

from repro.pipeline import (AdaptationSpec, CalibrationSpec, DataSpec,
                            DeploymentSpec, DetectorSpec, QuantizationSpec,
                            RuntimeSpec, ServiceSpec, SpecError)

#: representative params per spec-buildable kind (all six study detectors).
KIND_PARAMS = {
    "varade": {"n_channels": 4, "window": 16, "base_feature_maps": 4,
               "kl_weight": 0.2},
    "ar_lstm": {"n_channels": 4, "window": 8, "hidden_size": 8,
                "num_layers": 1, "fc_size": 16},
    "autoencoder": {"n_channels": 4, "window": 16, "base_feature_maps": 4,
                    "n_blocks": 4},
    "gbrf": {"n_channels": 4, "window": 8, "n_estimators": 5,
             "context_samples": 2},
    "knn": {"n_channels": 4, "n_neighbors": 3, "max_reference_points": 50},
    "isolation_forest": {"n_channels": 4, "n_estimators": 10,
                         "max_samples": 32},
}


def _full_spec(kind: str) -> DeploymentSpec:
    training = {"epochs": 2, "learning_rate": 1e-3} if kind == "varade" else None
    return DeploymentSpec(
        detector=DetectorSpec(kind=kind, params=dict(KIND_PARAMS[kind]),
                              training=training),
        data=DataSpec(source="synthetic", params={"n_channels": 4,
                                                  "train_samples": 200}),
        calibration=CalibrationSpec(method="mad", mad_factor=4.0),
        quantization=QuantizationSpec(headroom=3.0),
        adaptation=AdaptationSpec(detector="two_window",
                                  detector_params={"reference_size": 64,
                                                   "current_size": 16},
                                  cooldown=200, reservoir_guard=None),
        service=ServiceSpec(max_batch=16, max_delay_ms=2.5, max_queue=64,
                            backpressure="drop_oldest", port=7100),
        runtime=RuntimeSpec(sample_rate_hz=100.0, max_samples=500,
                            devices=("Jetson Xavier NX",)),
        seed=42,
    )


@pytest.mark.parametrize("kind", sorted(KIND_PARAMS))
def test_round_trip_equality_all_kinds(kind):
    spec = _full_spec(kind)
    restored = DeploymentSpec.from_json(spec.to_json())
    assert restored == spec
    # And a second hop stays stable (canonical form).
    assert DeploymentSpec.from_json(restored.to_json()) == restored


def test_round_trip_preserves_optional_none_entries():
    spec = DeploymentSpec(detector=DetectorSpec(kind="knn",
                                                params={"n_channels": 2}))
    restored = DeploymentSpec.from_json(spec.to_json())
    assert restored == spec
    assert restored.quantization is None
    assert restored.adaptation is None
    assert restored.data is None
    assert restored.detector.training is None


def test_runtime_devices_tuple_survives_json_list():
    spec = _full_spec("varade")
    restored = DeploymentSpec.from_json(spec.to_json())
    assert isinstance(restored.runtime.devices, tuple)
    assert restored.runtime.devices == ("Jetson Xavier NX",)


def test_save_load_file_round_trip(tmp_path):
    spec = _full_spec("gbrf")
    path = tmp_path / "spec.json"
    spec.save(path)
    assert DeploymentSpec.load(path) == spec


# --------------------------------------------------------------------------- #
# Strict parsing
# --------------------------------------------------------------------------- #
def test_unknown_top_level_key_rejected():
    payload = _full_spec("varade").to_dict()
    payload["detector_kind"] = "varade"
    with pytest.raises(SpecError, match="detector_kind"):
        DeploymentSpec.from_dict(payload)


@pytest.mark.parametrize("section", ["detector", "calibration", "quantization",
                                     "adaptation", "service", "runtime",
                                     "data"])
def test_unknown_nested_key_rejected(section):
    payload = _full_spec("varade").to_dict()
    payload[section]["bogus_knob"] = 1
    with pytest.raises(SpecError, match="bogus_knob"):
        DeploymentSpec.from_dict(payload)


def test_missing_detector_rejected():
    with pytest.raises(SpecError, match="detector"):
        DeploymentSpec.from_dict({"seed": 1})


def test_non_integer_seed_rejected():
    payload = _full_spec("varade").to_dict()
    payload["seed"] = "7"
    with pytest.raises(SpecError, match="seed"):
        DeploymentSpec.from_dict(payload)


def test_invalid_json_text_rejected():
    with pytest.raises(SpecError, match="JSON"):
        DeploymentSpec.from_json("{not json")


def test_invalid_sub_config_values_rejected():
    with pytest.raises(SpecError, match="calibration.method"):
        CalibrationSpec(method="percentile")
    with pytest.raises(SpecError, match="headroom"):
        QuantizationSpec(headroom=0.5)
    with pytest.raises(SpecError, match="adaptation.detector"):
        AdaptationSpec(detector="adwin")
    with pytest.raises(SpecError, match="sample_rate"):
        RuntimeSpec(sample_rate_hz=0.0)
    with pytest.raises(SpecError, match="data.source"):
        DataSpec(source="csv")
    with pytest.raises(SpecError, match="kind"):
        DetectorSpec(kind="")
    with pytest.raises(SpecError, match=r"service.*backpressure"):
        ServiceSpec(backpressure="panic")
    with pytest.raises(SpecError, match=r"service.*max_batch"):
        ServiceSpec(max_batch=0)
    with pytest.raises(SpecError, match=r"service.*max_delay_ms"):
        ServiceSpec(max_delay_ms=-1.0)
    with pytest.raises(SpecError, match="service.port"):
        ServiceSpec(port=70000)


def test_service_spec_builds_matching_runtime_config():
    spec = ServiceSpec(max_batch=16, max_delay_ms=2.5, max_queue=64,
                       backpressure="drop_oldest", apply_scaler=False)
    config = spec.config(record_sessions=True)
    assert config.max_batch == 16
    assert config.max_delay_ms == 2.5
    assert config.max_queue == 64
    assert config.backpressure == "drop_oldest"
    assert config.record_sessions is True


def test_detector_params_unknown_hyperparameter_fails_at_build():
    """Unknown keys inside params surface as a SpecError naming the kind."""
    from repro.pipeline import Pipeline

    spec = DeploymentSpec(detector=DetectorSpec(
        kind="knn", params={"n_channels": 2, "bogus": 1}))
    import numpy as np

    with pytest.raises(SpecError, match="'knn'.*bogus"):
        Pipeline.from_spec(spec).fit(np.zeros((50, 2)))


def test_non_mapping_params_rejected_at_parse_time():
    """params/training/detector_params must be mappings, caught eagerly."""
    with pytest.raises(SpecError, match="detector.params"):
        DetectorSpec(kind="knn", params="oops")
    with pytest.raises(SpecError, match="detector.training"):
        DetectorSpec(kind="varade", training=[1, 2])
    with pytest.raises(SpecError, match="data.params"):
        DataSpec(params="oops")
    with pytest.raises(SpecError, match="adaptation.detector_params"):
        AdaptationSpec(detector_params="oops")


def test_typoed_builder_kwargs_surface_as_spec_errors():
    """Typos inside data.params / adaptation.detector_params -> SpecError."""
    with pytest.raises(SpecError, match="train_sample"):
        DataSpec(params={"train_sample": 400}).build(seed=0)
    with pytest.raises(SpecError, match="delta_typo"):
        AdaptationSpec(detector_params={"delta_typo": 0.1})


def test_out_of_range_builder_kwargs_surface_as_spec_errors():
    """Out-of-range values (plain ValueError underneath) -> SpecError."""
    with pytest.raises(SpecError, match="data.params"):
        DataSpec(params={"train_samples": -5}).build(seed=0)
    with pytest.raises(SpecError, match="detector_params"):
        AdaptationSpec(detector_params={"threshold": -1.0})


def test_runtime_devices_validated_at_parse_time():
    """A bare string or unknown device name fails parsing, not `bench`."""
    with pytest.raises(SpecError, match="list of edge device names"):
        RuntimeSpec(devices="Jetson AGX Orin")
    with pytest.raises(SpecError, match="Jetson Nano"):
        RuntimeSpec(devices=("Jetson Nano",))
    spec = RuntimeSpec(devices=["Jetson AGX Orin", "Jetson Xavier NX"])
    assert spec.devices == ("Jetson AGX Orin", "Jetson Xavier NX")


def test_calibration_and_adaptation_ranges_validated_eagerly():
    """Out-of-range numeric fields fail at spec parse, not after training."""
    with pytest.raises(SpecError, match="calibration.quantile"):
        CalibrationSpec(quantile=1.5)
    with pytest.raises(SpecError, match="mad_factor"):
        CalibrationSpec(method="mad", mad_factor=0.0)
    with pytest.raises(SpecError, match="reservoir_size"):
        AdaptationSpec(reservoir_size=8)
    with pytest.raises(SpecError, match="min_reservoir"):
        AdaptationSpec(reservoir_size=64, min_reservoir=128)
    with pytest.raises(SpecError, match="confirm_samples"):
        AdaptationSpec(confirm_samples=2)
    with pytest.raises(SpecError, match="cooldown"):
        AdaptationSpec(cooldown=-1)
    with pytest.raises(SpecError, match="reservoir_guard"):
        AdaptationSpec(reservoir_guard=1.0)
